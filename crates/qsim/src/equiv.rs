//! Circuit-equivalence checks (up to global phase).
//!
//! Two flavours:
//!
//! * [`circuits_equivalent_exact`] builds the full unitaries (≤ 8 qubits in
//!   practice) — the gold standard for verifying individual rewrite rules.
//! * [`circuits_equivalent`] pushes a handful of seeded random states through
//!   both circuits and compares fidelities; a single random state already
//!   detects inequivalence with probability 1 (the equivalent-or-not set has
//!   measure zero), so a few trials give overwhelming confidence at any size
//!   the simulator can hold.

use crate::state::StateVector;
use crate::unitary::circuit_unitary;
use qcir::Circuit;

/// `true` iff `|⟨a|b⟩| ≈ 1`, i.e. the (normalized) states agree up to a
/// global phase.
pub fn states_equal_up_to_phase(a: &StateVector, b: &StateVector, tol: f64) -> bool {
    (a.inner(b).norm() - 1.0).abs() < tol
}

/// Randomized equivalence: simulates `trials` seeded random states through
/// both circuits. Suitable up to ~20 qubits.
pub fn circuits_equivalent(a: &Circuit, b: &Circuit, trials: u32, seed: u64) -> bool {
    let n = a.num_qubits.max(b.num_qubits);
    if a.num_qubits != b.num_qubits {
        // Widths may legitimately differ when one side dropped idle wires;
        // simulate both in the wider register.
    }
    for t in 0..trials {
        let s = StateVector::random(n, seed.wrapping_add(t as u64));
        let mut sa = s.clone();
        let mut sb = s;
        sa.apply_circuit(a);
        sb.apply_circuit(b);
        if !states_equal_up_to_phase(&sa, &sb, 1e-8) {
            return false;
        }
    }
    true
}

/// Exact equivalence via full unitaries; use for ≤ 8-qubit rule checks.
pub fn circuits_equivalent_exact(a: &Circuit, b: &Circuit) -> bool {
    let n = a.num_qubits.max(b.num_qubits);
    let mut a = a.clone();
    let mut b = b.clone();
    a.num_qubits = n;
    b.num_qubits = n;
    circuit_unitary(&a).equals_up_to_phase(&circuit_unitary(&b), 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Angle;

    #[test]
    fn hsh_rule_holds() {
        // H S H = S† H S† up to global phase (Nam et al. Hadamard reduction).
        let mut lhs = Circuit::new(1);
        lhs.h(0).rz(0, Angle::PI_2).h(0);
        let mut rhs = Circuit::new(1);
        rhs.rz(0, -Angle::PI_2).h(0).rz(0, -Angle::PI_2);
        assert!(circuits_equivalent_exact(&lhs, &rhs));
        assert!(circuits_equivalent(&lhs, &rhs, 4, 11));
    }

    #[test]
    fn cnot_pair_cancels() {
        let mut lhs = Circuit::new(2);
        lhs.cnot(0, 1).cnot(0, 1);
        let rhs = Circuit::new(2);
        assert!(circuits_equivalent_exact(&lhs, &rhs));
    }

    #[test]
    fn inequivalent_detected_randomized() {
        let mut a = Circuit::new(3);
        a.h(0).cnot(0, 1).rz(1, Angle::PI_4);
        let mut b = a.clone();
        b.gates.pop();
        assert!(!circuits_equivalent(&a, &b, 3, 5));
    }

    #[test]
    fn rotation_merge_rule_holds() {
        let mut lhs = Circuit::new(1);
        lhs.rz(0, Angle::PI_4).rz(0, Angle::PI_2);
        let mut rhs = Circuit::new(1);
        rhs.rz(0, Angle::pi_frac(3, 4));
        assert!(circuits_equivalent_exact(&lhs, &rhs));
    }

    #[test]
    fn width_mismatch_handled() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(3);
        b.h(0);
        assert!(circuits_equivalent(&a, &b, 2, 3));
    }
}
