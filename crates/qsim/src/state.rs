//! Dense state-vector simulation of the POPQC gate set.

use crate::complex::Complex;
use crate::rng::SplitMix64;
use qcir::{Circuit, Gate, Qubit};
use rayon::prelude::*;

/// Below this amplitude count the gate kernels run sequentially; above it
/// they split into Rayon chunks. 2^13 keeps per-task work well above the
/// fork-join overhead, per the Rayon guidance on granularity.
const PAR_THRESHOLD: usize = 1 << 13;

/// A dense quantum state over `n` qubits: 2ⁿ complex amplitudes, with qubit
/// `q` addressed by bit `q` of the amplitude index (little-endian).
#[derive(Clone, Debug)]
pub struct StateVector {
    n: u32,
    amps: Vec<Complex>,
}

impl StateVector {
    /// The all-zeros basis state `|0…0⟩`.
    pub fn zero(n: u32) -> StateVector {
        assert!(n <= 26, "state vector limited to 26 qubits ({n} requested)");
        let mut amps = vec![Complex::ZERO; 1usize << n];
        amps[0] = Complex::ONE;
        StateVector { n, amps }
    }

    /// The computational basis state `|index⟩`.
    pub fn basis(n: u32, index: usize) -> StateVector {
        let mut s = Self::zero(n);
        s.amps[0] = Complex::ZERO;
        s.amps[index] = Complex::ONE;
        s
    }

    /// A normalized pseudo-random state from the given seed (deterministic
    /// across platforms; used by the randomized equivalence checker).
    pub fn random(n: u32, seed: u64) -> StateVector {
        assert!(n <= 26, "state vector limited to 26 qubits ({n} requested)");
        let mut rng = SplitMix64::new(seed);
        let mut amps: Vec<Complex> = (0..1usize << n)
            .map(|_| Complex::new(rng.next_signed_unit(), rng.next_signed_unit()))
            .collect();
        let norm = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        debug_assert!(norm > 0.0);
        let inv = 1.0 / norm;
        for a in &mut amps {
            *a = a.scale(inv);
        }
        StateVector { n, amps }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> u32 {
        self.n
    }

    /// Immutable view of the amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// `⟨self|other⟩`.
    pub fn inner(&self, other: &StateVector) -> Complex {
        assert_eq!(self.n, other.n);
        self.amps
            .iter()
            .zip(&other.amps)
            .fold(Complex::ZERO, |acc, (a, b)| acc + a.conj() * *b)
    }

    /// `‖self‖₂`.
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Applies one gate in place.
    pub fn apply_gate(&mut self, g: &Gate) {
        match *g {
            Gate::H(q) => self.apply_h(q),
            Gate::X(q) => self.apply_x(q),
            Gate::Rz(q, a) => self.apply_rz(q, a.to_radians()),
            Gate::Cnot(c, t) => self.apply_cnot(c, t),
        }
    }

    /// Applies every gate of `c` left to right.
    pub fn apply_circuit(&mut self, c: &Circuit) {
        assert!(
            c.num_qubits <= self.n,
            "circuit uses {} qubits but state has {}",
            c.num_qubits,
            self.n
        );
        for g in &c.gates {
            self.apply_gate(g);
        }
    }

    /// Runs a single-qubit kernel over all (bit=0, bit=1) amplitude pairs.
    /// Chunks of size `2^(q+1)` keep each pair inside one chunk, so the
    /// parallel split needs no synchronization.
    fn for_pairs<F>(&mut self, q: Qubit, f: F)
    where
        F: Fn(&mut Complex, &mut Complex) + Sync,
    {
        let stride = 1usize << q;
        let chunk = stride << 1;
        let kernel = |block: &mut [Complex]| {
            let (lo, hi) = block.split_at_mut(stride);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                f(a, b);
            }
        };
        if self.amps.len() >= PAR_THRESHOLD {
            self.amps.par_chunks_mut(chunk).for_each(kernel);
        } else {
            self.amps.chunks_mut(chunk).for_each(kernel);
        }
    }

    fn apply_h(&mut self, q: Qubit) {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        self.for_pairs(q, |a, b| {
            let (x, y) = (*a, *b);
            *a = (x + y).scale(s);
            *b = (x - y).scale(s);
        });
    }

    fn apply_x(&mut self, q: Qubit) {
        self.for_pairs(q, std::mem::swap);
    }

    fn apply_rz(&mut self, q: Qubit, theta: f64) {
        // RZ(θ) = diag(e^{-iθ/2}, e^{+iθ/2})
        let m = Complex::cis(-theta / 2.0);
        let p = Complex::cis(theta / 2.0);
        self.for_pairs(q, |a, b| {
            *a = *a * m;
            *b = *b * p;
        });
    }

    fn apply_cnot(&mut self, c: Qubit, t: Qubit) {
        assert_ne!(c, t, "CNOT control equals target");
        let cbit = 1usize << c;
        let tbit = 1usize << t;
        // Chunks of 2^(max(c,t)+1) contain both members of every swapped pair.
        let chunk = 1usize << (c.max(t) + 1);
        let kernel = |(ci, block): (usize, &mut [Complex])| {
            let base = ci * chunk;
            for j in 0..chunk {
                let i = base + j;
                if i & cbit != 0 && i & tbit == 0 {
                    block.swap(j, j | tbit);
                }
            }
        };
        if self.amps.len() >= PAR_THRESHOLD {
            self.amps.par_chunks_mut(chunk).enumerate().for_each(kernel);
        } else {
            self.amps.chunks_mut(chunk).enumerate().for_each(kernel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Angle;

    fn assert_close(a: Complex, b: Complex) {
        assert!((a - b).norm() < 1e-10, "{a:?} != {b:?}");
    }

    #[test]
    fn x_flips_basis() {
        let mut s = StateVector::zero(2);
        s.apply_gate(&Gate::X(0));
        assert_close(s.amplitudes()[0b01], Complex::ONE);
        s.apply_gate(&Gate::X(1));
        assert_close(s.amplitudes()[0b11], Complex::ONE);
    }

    #[test]
    fn h_creates_superposition_and_self_inverts() {
        let mut s = StateVector::zero(1);
        s.apply_gate(&Gate::H(0));
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert_close(s.amplitudes()[0], Complex::new(r, 0.0));
        assert_close(s.amplitudes()[1], Complex::new(r, 0.0));
        s.apply_gate(&Gate::H(0));
        assert_close(s.amplitudes()[0], Complex::ONE);
    }

    #[test]
    fn rz_phases() {
        // On |1⟩, RZ(θ) multiplies by e^{iθ/2}.
        let mut s = StateVector::basis(1, 1);
        s.apply_gate(&Gate::Rz(0, Angle::PI));
        assert_close(s.amplitudes()[1], Complex::I);
        // RZ(π) twice = RZ(2π) = -I on |1⟩... e^{iπ} = -1.
        s.apply_gate(&Gate::Rz(0, Angle::PI));
        assert_close(s.amplitudes()[1], -Complex::ONE);
    }

    #[test]
    fn cnot_truth_table() {
        for (input, expected) in [(0b00, 0b00), (0b01, 0b11), (0b10, 0b10), (0b11, 0b01)] {
            // qubit 0 = control, qubit 1 = target
            let mut s = StateVector::basis(2, input);
            s.apply_gate(&Gate::Cnot(0, 1));
            assert_close(s.amplitudes()[expected], Complex::ONE);
        }
    }

    #[test]
    fn hxh_equals_z() {
        // H X H = Z = RZ(π) up to global phase; check on a random state.
        let mut a = StateVector::random(3, 7);
        let mut b = a.clone();
        for g in [Gate::H(1), Gate::X(1), Gate::H(1)] {
            a.apply_gate(&g);
        }
        b.apply_gate(&Gate::Rz(1, Angle::PI));
        let f = a.inner(&b).norm();
        assert!((f - 1.0).abs() < 1e-10, "fidelity {f}");
    }

    #[test]
    fn norm_preserved_by_all_gates() {
        let mut s = StateVector::random(4, 99);
        let mut c = Circuit::new(4);
        c.h(0).cnot(0, 3).rz(2, Angle::PI_4).x(1).cnot(2, 1).h(3);
        s.apply_circuit(&c);
        assert!((s.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn parallel_kernel_matches_sequential() {
        // 14 qubits crosses PAR_THRESHOLD; compare against 13-qubit embedding
        // by checking norms and a couple of invariants instead: apply the same
        // circuit twice with different qubit orderings and compare fidelity.
        let mut big = StateVector::random(14, 5);
        let clone = big.clone();
        let mut c = Circuit::new(14);
        c.h(13)
            .cnot(13, 0)
            .rz(0, Angle::PI_4)
            .cnot(13, 0)
            .rz(13, Angle::PI_2)
            .h(13);
        big.apply_circuit(&c);
        assert!((big.norm() - 1.0).abs() < 1e-9);
        // The circuit above is not identity; fidelity must have moved.
        let f = big.inner(&clone).norm();
        assert!(
            f < 1.0 - 1e-6,
            "circuit should alter the state, fidelity {f}"
        );
        // Applying the inverse restores the state exactly (up to fp error).
        big.apply_circuit(&c.inverse());
        let f = big.inner(&clone).norm();
        assert!(
            (f - 1.0).abs() < 1e-9,
            "inverse should restore, fidelity {f}"
        );
    }

    #[test]
    fn inner_product_orthogonal_basis() {
        let a = StateVector::basis(3, 2);
        let b = StateVector::basis(3, 5);
        assert!(a.inner(&b).norm() < 1e-12);
        assert_close(a.inner(&a), Complex::ONE);
    }
}
