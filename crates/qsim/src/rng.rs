//! A tiny deterministic RNG (SplitMix64) so the simulator crate stays
//! dependency-free while still supporting seeded random-state equivalence
//! checks that behave identically on every platform.

/// SplitMix64: a small, fast, well-distributed 64-bit PRNG.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[-1, 1)`.
    pub fn next_signed_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            let x = a.next_signed_unit();
            assert_eq!(x, b.next_signed_unit());
            assert!((-1.0..1.0).contains(&x));
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
