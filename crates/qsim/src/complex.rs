//! A minimal complex-number type.
//!
//! The simulator only needs add/mul/conj/modulus, so a 30-line `Copy` struct
//! beats pulling in an external crate.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// 0 + 0i.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// 1 + 0i.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// 0 + 1i.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Builds `re + im·i`.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// `e^{iθ}` on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Complex {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Complex {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}{:+.6}i", self.re, self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert!((a.norm_sqr() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..8 {
            let z = Complex::cis(k as f64 * std::f64::consts::FRAC_PI_4);
            assert!((z.norm() - 1.0).abs() < 1e-12);
        }
        let i = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!((i - Complex::I).norm() < 1e-12);
    }
}
