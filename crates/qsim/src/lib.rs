//! # qsim — state-vector simulation and equivalence checking
//!
//! The paper's correctness story rests on rewrites preserving the circuit
//! unitary (Section 2.2: any subcircuit may be replaced by an equivalent
//! one). This crate provides the machinery the workspace's test suites use to
//! *check* that property on every optimizer, pass, and rewrite rule:
//!
//! * [`Complex`] — a minimal complex-number type (no external deps).
//! * [`StateVector`] — a dense 2ⁿ state vector with gate application for the
//!   POPQC gate set; amplitude sweeps parallelize with Rayon above a size
//!   threshold.
//! * [`unitary`] — full-unitary construction for tiny circuits.
//! * [`equiv`] — equivalence checks up to global phase, both exact (small n)
//!   and randomized (larger n).

pub mod complex;
pub mod equiv;
pub mod rng;
pub mod state;
pub mod unitary;

pub use complex::Complex;
pub use equiv::{circuits_equivalent, circuits_equivalent_exact, states_equal_up_to_phase};
pub use state::StateVector;
