//! Full-unitary construction for tiny circuits.
//!
//! Building the 2ⁿ×2ⁿ matrix is exponential (Section 2.2), so this is only
//! for verifying rewrite rules and small test circuits — exactly the regime
//! where exact equality up to global phase is the right notion.

use crate::complex::Complex;
use crate::state::StateVector;
use qcir::Circuit;

/// A dense 2ⁿ×2ⁿ unitary stored column-major: `cols[j]` is `U|j⟩`.
#[derive(Clone, Debug)]
pub struct Unitary {
    /// Matrix dimension (2ⁿ).
    pub dim: usize,
    /// Columns of the matrix: `cols[j][i] = ⟨i|U|j⟩`.
    pub cols: Vec<Vec<Complex>>,
}

/// Computes the full unitary of `c` by simulating every basis state.
/// Panics above 12 qubits (16 M complex entries) to protect test runs.
pub fn circuit_unitary(c: &Circuit) -> Unitary {
    assert!(
        c.num_qubits <= 12,
        "unitary construction limited to 12 qubits"
    );
    let dim = 1usize << c.num_qubits;
    let cols = (0..dim)
        .map(|j| {
            let mut s = StateVector::basis(c.num_qubits, j);
            s.apply_circuit(c);
            s.amplitudes().to_vec()
        })
        .collect();
    Unitary { dim, cols }
}

impl Unitary {
    /// `true` iff `self = e^{iφ}·other` for some global phase φ.
    pub fn equals_up_to_phase(&self, other: &Unitary, tol: f64) -> bool {
        if self.dim != other.dim {
            return false;
        }
        // Find the largest entry of self to anchor the phase.
        let mut best = (0usize, 0usize, 0.0f64);
        for j in 0..self.dim {
            for i in 0..self.dim {
                let m = self.cols[j][i].norm_sqr();
                if m > best.2 {
                    best = (i, j, m);
                }
            }
        }
        let (i0, j0, m) = best;
        if m < tol {
            // self ≈ 0 is not unitary; fall back to direct comparison.
            return false;
        }
        let a = self.cols[j0][i0];
        let b = other.cols[j0][i0];
        if b.norm() < tol {
            return false;
        }
        // phase = b / a
        let inv = a.conj().scale(1.0 / a.norm_sqr());
        let phase = b * inv;
        for j in 0..self.dim {
            for i in 0..self.dim {
                if (self.cols[j][i] * phase - other.cols[j][i]).norm() > tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Angle;

    #[test]
    fn identity_unitary() {
        let c = Circuit::new(2);
        let u = circuit_unitary(&c);
        for j in 0..4 {
            for i in 0..4 {
                let expect = if i == j { Complex::ONE } else { Complex::ZERO };
                assert!((u.cols[j][i] - expect).norm() < 1e-12);
            }
        }
    }

    #[test]
    fn hh_is_identity_up_to_phase() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        let u = circuit_unitary(&c);
        let id = circuit_unitary(&Circuit::new(1));
        assert!(u.equals_up_to_phase(&id, 1e-10));
    }

    #[test]
    fn z_vs_rz_pi_differ_only_in_phase() {
        // Z = diag(1,-1); RZ(π) = diag(-i, i) = -i · Z.
        let mut rz = Circuit::new(1);
        rz.rz(0, Angle::PI);
        let mut xzx = Circuit::new(1);
        // X RZ(π) X = RZ(-π) = RZ(π) up to phase? RZ(-π) = diag(i,-i) = i·Z.
        xzx.x(0).rz(0, Angle::PI).x(0);
        let u1 = circuit_unitary(&rz);
        let u2 = circuit_unitary(&xzx);
        assert!(u1.equals_up_to_phase(&u2, 1e-10));
    }

    #[test]
    fn distinct_circuits_are_detected() {
        let mut a = Circuit::new(1);
        a.h(0);
        let b = Circuit::new(1);
        let ua = circuit_unitary(&a);
        let ub = circuit_unitary(&b);
        assert!(!ua.equals_up_to_phase(&ub, 1e-10));
    }
}
