//! Property-based tests for the simulator itself: unitarity, inverse
//! round-trips, and agreement between the randomized and exact equivalence
//! checkers. If these fail, every downstream "semantics preserved" claim in
//! the workspace is meaningless — so they get their own suite.

use proptest::prelude::*;
use qcir::{Angle, Circuit, Gate};
use qsim::{circuits_equivalent, circuits_equivalent_exact, StateVector};

fn arb_circuit(n: u32, max_len: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec((0u8..4, 0..n, 0..n, -8i64..8), 0..max_len).prop_map(move |specs| {
        let mut c = Circuit::new(n);
        for (kind, q, r, num) in specs {
            match kind {
                0 => {
                    c.h(q);
                }
                1 => {
                    c.x(q);
                }
                2 => {
                    c.rz(q, Angle::pi_frac(num, 8));
                }
                _ => {
                    let t = if r == q { (r + 1) % n } else { r };
                    c.cnot(q, t);
                }
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gates_preserve_norm(c in arb_circuit(5, 60), seed in 0u64..1000) {
        let mut s = StateVector::random(5, seed);
        s.apply_circuit(&c);
        prop_assert!((s.norm() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn inverse_restores_state(c in arb_circuit(5, 60), seed in 0u64..1000) {
        let s0 = StateVector::random(5, seed);
        let mut s = s0.clone();
        s.apply_circuit(&c);
        s.apply_circuit(&c.inverse());
        prop_assert!((s.inner(&s0).norm() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn circuit_is_equivalent_to_itself_shuffled_by_layers(c in arb_circuit(4, 50)) {
        // Left-justification permutes gates without changing semantics;
        // both checkers must agree it is an equivalence.
        let lj = c.left_justified();
        prop_assert!(circuits_equivalent(&c, &lj, 2, 7));
        prop_assert!(circuits_equivalent_exact(&c, &lj));
    }

    #[test]
    fn dropping_a_nontrivial_gate_is_detected(c in arb_circuit(4, 40)) {
        // Find a non-identity gate to drop; the checkers must notice.
        if let Some(pos) = c.gates.iter().position(|g| !g.is_identity() && !matches!(g, Gate::Rz(_, a) if a.is_pi())) {
            let mut broken = c.clone();
            broken.gates.remove(pos);
            // Removing H/X/CNOT (or a non-π rotation) changes the unitary
            // except in degenerate self-cancelling cases; accept either
            // verdict but demand the checkers AGREE with each other.
            let fast = circuits_equivalent(&c, &broken, 3, 99);
            let exact = circuits_equivalent_exact(&c, &broken);
            prop_assert_eq!(fast, exact);
        }
    }

    #[test]
    fn equivalence_is_invariant_under_global_phase(c in arb_circuit(4, 40)) {
        // Appending RZ(θ) twice on a fresh wire multiplies the state by a
        // phase only when the wire is |0⟩... instead, test the canonical
        // global-phase source: X RZ(θ) X RZ(θ) = e^{iθ}·I? No — simplest
        // exact global phase: RZ(2π) ≡ −I on nothing... our angles are mod
        // 2π so build phase via X·RZ(π)·X·RZ(π) = −I (on one wire):
        let mut phased = c.clone();
        phased.x(0);
        phased.rz(0, Angle::PI);
        phased.x(0);
        phased.rz(0, Angle::PI);
        // X Z X Z = −I exactly: a pure global phase.
        prop_assert!(circuits_equivalent(&c, &phased, 2, 5));
        prop_assert!(circuits_equivalent_exact(&c, &phased));
    }
}
