//! Exhaustive verification of the commutation predicate against the
//! simulator: for every ordered pair of gates over a 3-qubit register,
//! `commutes(a, b)` must imply (and be implied by, up to the predicate's
//! deliberate conservatism) unitary equality of `[a, b]` and `[b, a]`.
//!
//! The cancellation passes rely on `commutes` for soundness, so this is the
//! single most safety-critical table in the optimizer.

use qcir::{Angle, Circuit, Gate};
use qoracle::commutes;
use qsim::circuits_equivalent_exact;

fn gate_universe() -> Vec<Gate> {
    let mut gates = Vec::new();
    for q in 0..3u32 {
        gates.push(Gate::H(q));
        gates.push(Gate::X(q));
        gates.push(Gate::Rz(q, Angle::PI_4));
        gates.push(Gate::Rz(q, Angle::PI));
        for t in 0..3u32 {
            if t != q {
                gates.push(Gate::Cnot(q, t));
            }
        }
    }
    gates
}

#[test]
fn commutes_is_sound() {
    // commutes(a, b) == true must mean the matrices really commute.
    let gates = gate_universe();
    let mut checked = 0;
    for &a in &gates {
        for &b in &gates {
            if !commutes(&a, &b) {
                continue;
            }
            let mut ab = Circuit::new(3);
            ab.gates.extend([a, b]);
            let mut ba = Circuit::new(3);
            ba.gates.extend([b, a]);
            assert!(
                circuits_equivalent_exact(&ab, &ba),
                "predicate claims {a:?} and {b:?} commute, but they do not"
            );
            checked += 1;
        }
    }
    assert!(checked > 100, "universe too small ({checked} pairs)");
}

#[test]
fn commutes_is_reasonably_complete() {
    // The predicate is allowed to be conservative, but it must not miss the
    // structured cases the passes depend on. Count actual-commuting pairs
    // the predicate rejects; only H/RZ-style coincidences may appear.
    let gates = gate_universe();
    let mut missed = Vec::new();
    for &a in &gates {
        for &b in &gates {
            if commutes(&a, &b) {
                continue;
            }
            let mut ab = Circuit::new(3);
            ab.gates.extend([a, b]);
            let mut ba = Circuit::new(3);
            ba.gates.extend([b, a]);
            if circuits_equivalent_exact(&ab, &ba) {
                missed.push((a, b));
            }
        }
    }
    // RZ(π)=Z commutes with Z-like things the predicate doesn't model;
    // everything it misses must involve an RZ(π) (Pauli-Z coincidence).
    for (a, b) in &missed {
        let is_z = |g: &Gate| matches!(g, Gate::Rz(_, t) if t.is_pi());
        assert!(
            is_z(a) || is_z(b),
            "predicate misses a structural commutation: {a:?} / {b:?}"
        );
    }
}

#[test]
fn commutes_is_symmetric() {
    let gates = gate_universe();
    for &a in &gates {
        for &b in &gates {
            assert_eq!(commutes(&a, &b), commutes(&b, &a), "{a:?} vs {b:?}");
        }
    }
}
