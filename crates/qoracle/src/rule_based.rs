//! The VOQC-style rule-based optimizer: a pipeline of Nam-et-al. passes.
//!
//! Two configurations matter for the paper's experiments:
//!
//! * **baseline** ([`RuleBasedOptimizer::voqc_baseline`]) — one bounded pass
//!   sequence over a whole circuit, mirroring how VOQC executes its pass list
//!   once. Section 7.4 explains why POPQC can *beat* its own oracle's
//!   quality: POPQC re-invokes the oracle on overlapping segments until
//!   nothing improves, effectively running the sequence to convergence.
//! * **oracle** ([`RuleBasedOptimizer::oracle`]) — the same sequence iterated
//!   to fixpoint, used on 2Ω-segments inside POPQC and OAC.

use crate::passes::{
    CancelSingleQubit, CancelTwoQubit, HadamardReduction, NotPropagation, Pass, RotationMerge,
    RotationMergeScan,
};
use crate::SegmentOracle;
use qcir::{Circuit, Gate};
use std::time::Instant;

/// A pipeline of rewrite passes with an iteration bound.
pub struct RuleBasedOptimizer {
    passes: Vec<Box<dyn Pass>>,
    max_rounds: usize,
    /// Stable configuration id; doubles as the optimization service's
    /// cache-key oracle id, so distinct behaviours must carry distinct
    /// labels.
    label: &'static str,
}

impl RuleBasedOptimizer {
    /// The Nam-style pass sequence with the *linear* phase-folding rotation
    /// merge — this reproduction's modernized pipeline: NOT propagation,
    /// Hadamard reduction, single-qubit cancellation, two-qubit
    /// cancellation, rotation merging, then a final cancellation sweep to
    /// clean up what merging exposed.
    fn nam_sequence() -> Vec<Box<dyn Pass>> {
        vec![
            Box::new(NotPropagation),
            Box::new(HadamardReduction),
            Box::new(CancelSingleQubit),
            Box::new(CancelTwoQubit),
            Box::new(RotationMerge),
            Box::new(CancelSingleQubit),
            Box::new(CancelTwoQubit),
        ]
    }

    /// The same sequence with VOQC's *quadratic* per-rotation-scan merge
    /// (see [`RotationMergeScan`]) — the faithful baseline profile.
    fn voqc_sequence(deadline: Option<Instant>) -> Vec<Box<dyn Pass>> {
        vec![
            Box::new(NotPropagation),
            Box::new(HadamardReduction),
            Box::new(CancelSingleQubit),
            Box::new(CancelTwoQubit),
            Box::new(RotationMergeScan { deadline }),
            Box::new(CancelSingleQubit),
            Box::new(CancelTwoQubit),
        ]
    }

    /// Whole-circuit baseline (the "VOQC" column of Tables 1 and 2): one
    /// execution of the pass sequence with VOQC's quadratic rotation-merge
    /// algorithm. `deadline` reproduces the paper's baseline timeout
    /// handling (work is cut off cooperatively once the deadline passes).
    pub fn voqc_baseline_with_deadline(deadline: Option<Instant>) -> RuleBasedOptimizer {
        RuleBasedOptimizer {
            passes: Self::voqc_sequence(deadline),
            max_rounds: 1,
            label: "voqc-baseline",
        }
    }

    /// [`Self::voqc_baseline_with_deadline`] without a deadline.
    pub fn voqc_baseline() -> RuleBasedOptimizer {
        Self::voqc_baseline_with_deadline(None)
    }

    /// A whole-circuit baseline using the modernized linear pipeline — an
    /// ablation showing how much of the Table 1/2 gap is VOQC's pass
    /// asymptotics versus locality/parallelism.
    pub fn modern_baseline() -> RuleBasedOptimizer {
        RuleBasedOptimizer {
            passes: Self::nam_sequence(),
            max_rounds: 1,
            label: "rule-single-pass",
        }
    }

    /// Oracle configuration: iterate the modernized sequence to fixpoint
    /// (bounded at 32 rounds, which no realistic 2Ω-segment approaches).
    pub fn oracle() -> RuleBasedOptimizer {
        RuleBasedOptimizer {
            passes: Self::nam_sequence(),
            max_rounds: 32,
            label: "rule-fixpoint",
        }
    }

    /// Custom iteration bound (ablations).
    pub fn with_rounds(max_rounds: usize) -> RuleBasedOptimizer {
        RuleBasedOptimizer {
            passes: Self::nam_sequence(),
            max_rounds: max_rounds.max(1),
            // Ambiguous across bounds by construction; service users should
            // supply an explicit oracle id for custom-bounded pipelines.
            label: "rule-bounded",
        }
    }

    /// Runs the pipeline on a raw gate sequence. The result never has more
    /// gates than the input.
    ///
    /// When the pipeline converges, the *fixpoint* is returned (rather than
    /// an earlier equal-length intermediate): fixpoints are what makes the
    /// oracle approximately *well-behaved* in the paper's sense — every
    /// sub-segment of a pipeline fixpoint is itself a fixpoint for the
    /// local rewrites, which is what Theorem 7's guarantee leans on.
    pub fn run(&self, gates: &[Gate], num_qubits: u32) -> Vec<Gate> {
        let mut best = gates.to_vec();
        let mut cur = gates.to_vec();
        for _ in 0..self.max_rounds {
            let before = cur.clone();
            for p in &self.passes {
                cur = p.run(cur, num_qubits);
            }
            if cur.len() < best.len() {
                best = cur.clone();
            }
            if cur == before {
                // Converged. `best` can only tie `cur` here (never beat it,
                // lengths are monotone within the tracked minimum), so
                // prefer the fixpoint.
                return if cur.len() <= best.len() { cur } else { best };
            }
        }
        best
    }

    /// Convenience wrapper over [`Circuit`].
    pub fn optimize_circuit(&self, c: &Circuit) -> Circuit {
        Circuit {
            num_qubits: c.num_qubits,
            gates: self.run(&c.gates, c.num_qubits),
        }
    }
}

impl SegmentOracle<Gate> for RuleBasedOptimizer {
    fn optimize(&self, units: &[Gate], num_qubits: u32) -> Vec<Gate> {
        self.run(units, num_qubits)
    }

    fn cost(&self, units: &[Gate]) -> u64 {
        units.len() as u64
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::random_circuit;
    use qcir::Angle;

    #[test]
    fn pipeline_reduces_redundant_circuit() {
        let mut c = Circuit::new(3);
        // A classic sandwich: X pair split by CNOT, plus an HH pair, plus
        // mergeable rotations.
        c.x(1)
            .cnot(0, 1)
            .x(1)
            .h(2)
            .h(2)
            .rz(0, Angle::PI_4)
            .cnot(0, 2)
            .rz(0, Angle::PI_4);
        let opt = RuleBasedOptimizer::oracle().optimize_circuit(&c);
        assert!(opt.len() <= 3, "expected <= 3 gates, got {:?}", opt.gates);
        assert!(qsim::circuits_equivalent_exact(&c, &opt));
    }

    #[test]
    fn oracle_mode_never_increases_size() {
        for seed in 0..6 {
            let c = random_circuit(5, 120, seed * 31 + 7);
            let opt = RuleBasedOptimizer::oracle().optimize_circuit(&c);
            assert!(opt.len() <= c.len());
            assert!(
                qsim::circuits_equivalent(&c, &opt, 3, seed),
                "seed {seed}: optimizer changed semantics"
            );
        }
    }

    #[test]
    fn fixpoint_beats_single_pass_sometimes() {
        // Aggregate over seeds: fixpoint must never be worse, and must win
        // at least once on redundancy-dense random circuits.
        let mut strictly_better = 0;
        for seed in 0..12 {
            let c = random_circuit(4, 150, seed * 101 + 13);
            let single = RuleBasedOptimizer::modern_baseline().optimize_circuit(&c);
            let fixed = RuleBasedOptimizer::oracle().optimize_circuit(&c);
            assert!(fixed.len() <= single.len(), "fixpoint worse on seed {seed}");
            if fixed.len() < single.len() {
                strictly_better += 1;
            }
        }
        assert!(
            strictly_better > 0,
            "fixpoint never beat single pass on any seed"
        );
    }

    #[test]
    fn idempotent_at_fixpoint() {
        let c = random_circuit(4, 100, 99);
        let o = RuleBasedOptimizer::oracle();
        let once = o.optimize_circuit(&c);
        let twice = o.optimize_circuit(&once);
        assert_eq!(once, twice, "oracle output should be a fixpoint");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let o = RuleBasedOptimizer::oracle();
        assert!(o.run(&[], 4).is_empty());
        assert_eq!(o.run(&[Gate::H(0)], 1), vec![Gate::H(0)]);
    }
}
