//! The Quartz-style search-based optimizer.
//!
//! Quartz explores sequences of rewrite-rule applications — including
//! cost-neutral ones — looking for a lower-cost circuit under a customizable
//! cost function. This module reproduces that role with bounded best-first
//! search over the verified rules in [`crate::rules`]: slow compared to the
//! rule-based pipeline (by design: that asymmetry is what Section 7.8
//! exercises), but objective-agnostic.

use crate::cost::CostFn;
use crate::rules::neighbors;
use crate::SegmentOracle;
use qcir::{Gate, Layer, LayeredCircuit};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BinaryHeap, HashSet};
use std::hash::{Hash, Hasher};

/// A search frontier entry, ordered as a *min*-heap on
/// `(cost, insertion counter)`; the counter makes pops deterministic.
struct Node {
    key: (u64, u64),
    gates: Vec<Gate>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want smallest key first.
        other.key.cmp(&self.key)
    }
}

/// Bounded best-first search over rewrite rules, minimizing `cost_fn`.
pub struct SearchOptimizer<C: CostFn> {
    /// The objective to minimize.
    pub cost_fn: C,
    /// Maximum number of node expansions per `optimize` call.
    pub node_budget: usize,
}

impl<C: CostFn> SearchOptimizer<C> {
    /// A search optimizer with the given objective and node budget.
    pub fn new(cost_fn: C, node_budget: usize) -> SearchOptimizer<C> {
        SearchOptimizer {
            cost_fn,
            node_budget,
        }
    }

    /// Greedy local descent: swap adjacent overlapping commuting pairs while
    /// the objective strictly drops. Gate count is invariant, so this is a
    /// no-op under [`crate::GateCount`]; under depth-weighted objectives it
    /// compacts the schedule (rotations slide past CNOT controls, etc.).
    pub fn hill_climb(&self, mut gates: Vec<Gate>, num_qubits: u32) -> Vec<Gate> {
        let mut cost = self.cost_fn.cost(&gates, num_qubits);
        loop {
            let mut improved = false;
            for i in 0..gates.len().saturating_sub(1) {
                let (a, b) = (gates[i], gates[i + 1]);
                if !a.independent(&b) && crate::commutes(&a, &b) {
                    gates.swap(i, i + 1);
                    let c2 = self.cost_fn.cost(&gates, num_qubits);
                    if c2 < cost {
                        cost = c2;
                        improved = true;
                    } else {
                        gates.swap(i, i + 1);
                    }
                }
            }
            if !improved {
                return gates;
            }
        }
    }

    /// Best-first search from `gates`; returns the cheapest circuit found
    /// (the input if nothing better turns up within budget), polished by a
    /// final [`Self::hill_climb`] descent.
    pub fn run(&self, gates: &[Gate], num_qubits: u32) -> Vec<Gate> {
        let start_cost = self.cost_fn.cost(gates, num_qubits);
        let mut seen = HashSet::new();
        seen.insert(hash_gates(gates));
        let mut pq = BinaryHeap::new();
        pq.push(Node {
            key: (start_cost, 0),
            gates: gates.to_vec(),
        });
        let mut best = gates.to_vec();
        let mut best_cost = start_cost;
        let mut counter = 1u64;
        let mut expansions = 0usize;
        let mut scratch = Vec::new();

        while let Some(Node { gates: node, .. }) = pq.pop() {
            if expansions >= self.node_budget {
                break;
            }
            expansions += 1;
            neighbors(&node, &mut scratch);
            for nb in scratch.drain(..) {
                let h = hash_gates(&nb);
                if !seen.insert(h) {
                    continue;
                }
                let c = self.cost_fn.cost(&nb, num_qubits);
                if c < best_cost || (c == best_cost && nb.len() < best.len()) {
                    best_cost = c;
                    best = nb.clone();
                }
                pq.push(Node {
                    key: (c, counter),
                    gates: nb,
                });
                counter += 1;
            }
        }
        self.hill_climb(best, num_qubits)
    }
}

fn hash_gates(gates: &[Gate]) -> u64 {
    let mut h = DefaultHasher::new();
    gates.hash(&mut h);
    h.finish()
}

impl<C: CostFn> SegmentOracle<Gate> for SearchOptimizer<C> {
    fn optimize(&self, units: &[Gate], num_qubits: u32) -> Vec<Gate> {
        self.run(units, num_qubits)
    }

    fn cost(&self, units: &[Gate]) -> u64 {
        let n = units.iter().map(|g| g.max_qubit() + 1).max().unwrap_or(1);
        self.cost_fn.cost(units, n)
    }

    fn name(&self) -> &'static str {
        "search"
    }
}

/// A layer-granularity oracle for the depth-aware mode (Section 7.8):
/// flattens a window of layers, presimplifies it with the rule-based
/// pipeline (Quartz, too, folds rule-based simplification into its search),
/// search-optimizes under the wrapped cost function, and re-layers ASAP.
/// Falls back to its input when the result would occupy more layers (the
/// engine substitutes in place, so the unit count must not grow) or fails to
/// improve the cost.
pub struct LayerSearchOracle<C: CostFn> {
    inner: SearchOptimizer<C>,
    presimplify: crate::RuleBasedOptimizer,
    num_qubits: u32,
}

impl<C: CostFn> LayerSearchOracle<C> {
    /// Wraps a search optimizer for layer-granularity use on circuits of
    /// width `num_qubits`.
    pub fn new(cost_fn: C, node_budget: usize, num_qubits: u32) -> LayerSearchOracle<C> {
        LayerSearchOracle {
            inner: SearchOptimizer::new(cost_fn, node_budget),
            presimplify: crate::RuleBasedOptimizer::oracle(),
            num_qubits,
        }
    }

    fn flatten(units: &[Layer]) -> Vec<Gate> {
        units.iter().flat_map(|l| l.0.iter().copied()).collect()
    }
}

impl<C: CostFn> SegmentOracle<Layer> for LayerSearchOracle<C> {
    fn optimize(&self, units: &[Layer], num_qubits: u32) -> Vec<Layer> {
        let flat = Self::flatten(units);
        let simplified = self.presimplify.run(&flat, num_qubits);
        let opt = self.inner.run(&simplified, num_qubits);
        let relayered = LayeredCircuit::from_circuit(&qcir::Circuit {
            num_qubits,
            gates: opt,
        });
        if relayered.layers.len() <= units.len() && self.cost(&relayered.layers) < self.cost(units)
        {
            relayered.layers
        } else {
            units.to_vec()
        }
    }

    fn cost(&self, units: &[Layer]) -> u64 {
        let flat = Self::flatten(units);
        // Depth of a window of well-formed layers is the layer count; cost
        // the flat sequence under the same objective for consistency.
        let gates = flat.len() as u64;
        let _ = gates;
        self.inner.cost_fn.cost_of_layers(units, self.num_qubits)
    }

    fn name(&self) -> &'static str {
        "layer-search"
    }
}

/// Extension trait: cost of an already-layered window.
trait LayerCost {
    fn cost_of_layers(&self, layers: &[Layer], num_qubits: u32) -> u64;
}

impl<C: CostFn> LayerCost for C {
    fn cost_of_layers(&self, layers: &[Layer], num_qubits: u32) -> u64 {
        // Flatten in layer order: ASAP depth of that sequence equals the
        // minimal depth of the window, which is what the objective should
        // see (a window stored as k layers may be re-layerable to fewer).
        let flat: Vec<Gate> = layers.iter().flat_map(|l| l.0.iter().copied()).collect();
        self.cost(&flat, num_qubits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{GateCount, MixedDepthGates};
    use qcir::{Angle, Circuit};

    #[test]
    fn finds_multi_step_reduction() {
        // RZ(π/2) H . H RZ(π/2) — nothing adjacent cancels; a commuting swap
        // is also unavailable. But H S H (positions 1..3 after one step of
        // exploration) rewrites to S† H S†, after which rotations merge:
        // RZ(π/2) [H RZ(π/2) H] -> RZ(π/2) S† H S† -> ... let the search find it.
        let mut c = Circuit::new(1);
        c.rz(0, Angle::PI_2).h(0).rz(0, Angle::PI_2).h(0);
        let s = SearchOptimizer::new(GateCount, 300);
        let out = s.run(&c.gates, 1);
        assert!(out.len() < c.len(), "search failed: {out:?}");
        let oc = Circuit {
            num_qubits: 1,
            gates: out,
        };
        assert!(qsim::circuits_equivalent_exact(&c, &oc));
    }

    #[test]
    fn respects_budget_and_returns_input_when_stuck() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).rz(1, Angle::PI_4);
        let s = SearchOptimizer::new(GateCount, 50);
        assert_eq!(s.run(&c.gates, 2), c.gates);
    }

    #[test]
    fn depth_objective_prefers_shallow_forms() {
        // Two circuits with equal gate count but different depth: the mixed
        // objective must rate the shallow one cheaper.
        let mut deep = Circuit::new(2);
        deep.rz(0, Angle::PI_4).rz(0, Angle::PI_4).h(1);
        let m = MixedDepthGates::default();
        let s = SearchOptimizer::new(m, 200);
        let out = s.run(&deep.gates, 2);
        let out_c = Circuit {
            num_qubits: 2,
            gates: out.clone(),
        };
        // Merging the rotations reduces both gates and depth.
        assert!(out.len() < deep.len());
        assert!(out_c.depth() < deep.depth());
        assert!(qsim::circuits_equivalent_exact(&deep, &out_c));
    }

    #[test]
    fn layer_oracle_round_trips() {
        let mut c = Circuit::new(2);
        c.h(0).h(0).cnot(0, 1).rz(1, Angle::PI_4);
        let layers = c.layered().layers;
        let o = LayerSearchOracle::new(MixedDepthGates::default(), 300, 2);
        let out = o.optimize(&layers, 2);
        assert!(out.len() <= layers.len());
        let flat: Vec<Gate> = out.iter().flat_map(|l| l.0.iter().copied()).collect();
        let oc = Circuit {
            num_qubits: 2,
            gates: flat,
        };
        assert!(qsim::circuits_equivalent_exact(&c, &oc));
        assert!(o.cost(&out) <= o.cost(&layers));
    }

    #[test]
    fn deterministic() {
        let mut c = Circuit::new(2);
        c.h(0).rz(0, Angle::PI_2).h(0).cnot(0, 1).cnot(0, 1).x(1);
        let s = SearchOptimizer::new(GateCount, 200);
        let a = s.run(&c.gates, 2);
        let b = s.run(&c.gates, 2);
        assert_eq!(a, b);
    }
}
