//! A constructive *well-behaved* oracle wrapper.
//!
//! Section 6 of the paper defines an oracle as **well-behaved** when every
//! segment of its output is optimal with respect to the oracle itself; the
//! local-optimality theorem (Theorem 7) is conditional on this property.
//! Real oracles — VOQC, and this crate's [`RuleBasedOptimizer`](crate::RuleBasedOptimizer) — violate it
//! in rare corners: NOT propagation relocates X gates across distances that
//! depend on the window extent, so a fixpoint of a 2Ω-window can still
//! contain an improvable Ω-subwindow (measured at < 1% of windows on random
//! circuits; see EXPERIMENTS.md).
//!
//! [`WellBehavedOracle`] closes the gap by construction: it repeatedly
//! (a) offers the inner oracle the whole segment, and (b) sweeps every
//! `window`-sized subsegment of the *current* segment, splicing in any
//! strict reduction, until neither step fires. Two consequences:
//!
//! * its output (and, on rejection, its untouched input) has **no
//!   improvable `window`-subsegment**, which is exactly the premise
//!   Lemma 6 needs — so POPQC over this oracle satisfies Theorem 7
//!   *unconditionally*, and the test suite checks it exactly;
//! * each non-reducing call costs ~`window` inner calls, so this is the
//!   strict/verification configuration, not the fast path.

use crate::SegmentOracle;
use qcir::Gate;

/// Wraps an oracle so that every `window`-sized subsegment of any output
/// (or unchanged input) is irreducible under the inner oracle.
pub struct WellBehavedOracle<O> {
    inner: O,
    window: usize,
}

impl<O: SegmentOracle<Gate>> WellBehavedOracle<O> {
    /// Wraps `inner`, enforcing irreducibility of `window`-subsegments
    /// (use the engine's Ω).
    pub fn new(inner: O, window: usize) -> WellBehavedOracle<O> {
        assert!(window >= 1);
        WellBehavedOracle { inner, window }
    }

    /// Access to the wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: SegmentOracle<Gate>> SegmentOracle<Gate> for WellBehavedOracle<O> {
    fn optimize(&self, units: &[Gate], num_qubits: u32) -> Vec<Gate> {
        let mut out = units.to_vec();
        'outer: loop {
            // Whole-segment attempt (strict reductions only, so a rejected
            // call leaves the input bit-for-bit unchanged).
            let o = self.inner.optimize(&out, num_qubits);
            if o.len() < out.len() {
                out = o;
                continue 'outer;
            }
            // Subsegment sweep at the engine's granularity.
            if out.len() > self.window {
                for s in 0..=out.len() - self.window {
                    let w = &out[s..s + self.window];
                    let o = self.inner.optimize(w, num_qubits);
                    if o.len() < w.len() {
                        let mut next = Vec::with_capacity(out.len() - (w.len() - o.len()));
                        next.extend_from_slice(&out[..s]);
                        next.extend(o);
                        next.extend_from_slice(&out[s + self.window..]);
                        out = next;
                        continue 'outer;
                    }
                }
            }
            break;
        }
        out
    }

    fn cost(&self, units: &[Gate]) -> u64 {
        units.len() as u64
    }

    fn name(&self) -> &'static str {
        "well-behaved"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::random_circuit;
    use crate::RuleBasedOptimizer;

    #[test]
    fn output_has_no_improvable_subwindow() {
        let omega = 8;
        let wb = WellBehavedOracle::new(RuleBasedOptimizer::oracle(), omega);
        for seed in 0..5 {
            let c = random_circuit(4, 120, seed * 91 + 17);
            let out = wb.optimize(&c.gates, 4);
            assert!(out.len() <= c.gates.len());
            if out.len() >= omega {
                for s in 0..=out.len() - omega {
                    let w = &out[s..s + omega];
                    let o = wb.inner().optimize(w, 4);
                    assert!(
                        o.len() >= w.len(),
                        "seed {seed}: window at {s} reduced {} -> {}",
                        w.len(),
                        o.len()
                    );
                }
            }
        }
    }

    #[test]
    fn rejection_leaves_input_unchanged() {
        // A segment the oracle cannot reduce must come back identical, so
        // the engine's "drop the finger" branch sees the true input.
        let wb = WellBehavedOracle::new(RuleBasedOptimizer::oracle(), 4);
        let gates = vec![Gate::H(0), Gate::Cnot(0, 1), Gate::H(1)];
        assert_eq!(wb.optimize(&gates, 2), gates);
    }

    #[test]
    fn preserves_semantics() {
        let wb = WellBehavedOracle::new(RuleBasedOptimizer::oracle(), 6);
        for seed in 0..4 {
            let c = random_circuit(4, 80, seed * 3 + 1);
            let out = qcir::Circuit {
                num_qubits: 4,
                gates: wb.optimize(&c.gates, 4),
            };
            assert!(qsim::circuits_equivalent(&c, &out, 3, seed));
        }
    }
}
