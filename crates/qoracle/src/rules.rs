//! Local rewrite rules for the search-based optimizer.
//!
//! Each rule maps a positional window of the gate sequence to an equivalent
//! replacement (verified against the simulator in this module's tests). The
//! search layer explores sequences of rule applications, so rules here are
//! deliberately small and composable — including cost-neutral moves (same
//! count, different shape) that unlock reductions several steps later, the
//! essence of the Quartz/Queso search approach.

use crate::commutes;
use qcir::{Gate, Qubit};

/// Generates every circuit reachable from `gates` by one rule application.
/// `out` receives the neighbors; it is cleared first.
pub fn neighbors(gates: &[Gate], out: &mut Vec<Vec<Gate>>) {
    out.clear();
    let n = gates.len();
    for i in 0..n {
        // Unary: drop identity rotations.
        if gates[i].is_identity() {
            out.push(remove(gates, &[i]));
            continue;
        }
        if i + 1 < n {
            let (a, b) = (gates[i], gates[i + 1]);
            // Cancel adjacent inverse pairs.
            if a.is_inverse_of(&b) {
                out.push(remove(gates, &[i, i + 1]));
            }
            // Merge adjacent rotations.
            if let (Gate::Rz(q1, t1), Gate::Rz(q2, t2)) = (a, b) {
                if q1 == q2 {
                    let sum = t1 + t2;
                    if sum.is_zero() {
                        out.push(remove(gates, &[i, i + 1]));
                    } else {
                        out.push(splice(gates, i, 2, &[Gate::Rz(q1, sum)]));
                    }
                }
            }
            // Commuting swap (cost-neutral move; changes what is adjacent).
            // Swapping gates on disjoint wires is pointless (same per-wire
            // order ⇒ same depth), so only swap overlapping commuting pairs.
            if !a.independent(&b) && commutes(&a, &b) {
                out.push(splice(gates, i, 2, &[b, a]));
            }
            // X·RZ(θ) ↔ RZ(−θ)·X.
            if let (Gate::X(q1), Gate::Rz(q2, t)) = (a, b) {
                if q1 == q2 {
                    out.push(splice(gates, i, 2, &[Gate::Rz(q1, -t), Gate::X(q1)]));
                }
            }
            if let (Gate::Rz(q1, t), Gate::X(q2)) = (a, b) {
                if q1 == q2 {
                    out.push(splice(gates, i, 2, &[Gate::X(q1), Gate::Rz(q1, -t)]));
                }
            }
        }
        // H S H → S† H S† and H S† H → S H S (positional window of 3).
        if i + 2 < n {
            if let (Gate::H(q1), Gate::Rz(q2, t), Gate::H(q3)) =
                (gates[i], gates[i + 1], gates[i + 2])
            {
                if q1 == q2 && q2 == q3 {
                    use qcir::Angle;
                    let flip = if t == Angle::PI_2 {
                        Some(Angle::THREE_PI_2)
                    } else if t == Angle::THREE_PI_2 {
                        Some(Angle::PI_2)
                    } else {
                        None
                    };
                    if let Some(f) = flip {
                        out.push(splice(
                            gates,
                            i,
                            3,
                            &[Gate::Rz(q1, f), Gate::H(q1), Gate::Rz(q1, f)],
                        ));
                    }
                }
            }
        }
        // [H(c) H(t)] CNOT [H(c) H(t)] → CNOT reversed (positional window 5,
        // H's in either order on each side).
        if i + 4 < n {
            if let Gate::Cnot(c, t) = gates[i + 2] {
                if is_h_pair(gates[i], gates[i + 1], c, t)
                    && is_h_pair(gates[i + 3], gates[i + 4], c, t)
                {
                    out.push(splice(gates, i, 5, &[Gate::Cnot(t, c)]));
                }
            }
        }
    }
}

fn is_h_pair(a: Gate, b: Gate, c: Qubit, t: Qubit) -> bool {
    matches!((a, b), (Gate::H(x), Gate::H(y)) if (x == c && y == t) || (x == t && y == c))
}

fn remove(gates: &[Gate], idx: &[usize]) -> Vec<Gate> {
    let mut v = Vec::with_capacity(gates.len() - idx.len());
    for (i, g) in gates.iter().enumerate() {
        if !idx.contains(&i) {
            v.push(*g);
        }
    }
    v
}

fn splice(gates: &[Gate], at: usize, len: usize, rep: &[Gate]) -> Vec<Gate> {
    let mut v = Vec::with_capacity(gates.len() - len + rep.len());
    v.extend_from_slice(&gates[..at]);
    v.extend_from_slice(rep);
    v.extend_from_slice(&gates[at + len..]);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::{Angle, Circuit};

    fn all_neighbors(g: &[Gate]) -> Vec<Vec<Gate>> {
        let mut out = Vec::new();
        neighbors(g, &mut out);
        out
    }

    #[test]
    fn every_neighbor_is_equivalent() {
        // Build circuits that trigger each rule at least once and verify all
        // generated neighbors against the simulator.
        let mut cases: Vec<Circuit> = Vec::new();
        let mut c = Circuit::new(2);
        c.h(0)
            .h(0)
            .cnot(0, 1)
            .cnot(0, 1)
            .rz(1, Angle::PI_4)
            .rz(1, Angle::PI_4);
        cases.push(c);
        let mut c = Circuit::new(2);
        c.h(0).rz(0, Angle::PI_2).h(0).x(1).rz(1, Angle::PI_4);
        cases.push(c);
        let mut c = Circuit::new(2);
        c.h(0).h(1).cnot(0, 1).h(0).h(1);
        cases.push(c);
        let mut c = Circuit::new(3);
        c.rz(0, Angle::PI_4)
            .cnot(0, 1)
            .cnot(0, 2)
            .rz(0, Angle::ZERO);
        cases.push(c);

        let mut total = 0;
        for c in &cases {
            for nb in all_neighbors(&c.gates) {
                let oc = Circuit {
                    num_qubits: c.num_qubits,
                    gates: nb,
                };
                assert!(
                    qsim::circuits_equivalent_exact(c, &oc),
                    "neighbor not equivalent for {:?} -> {:?}",
                    c.gates,
                    oc.gates
                );
                total += 1;
            }
        }
        assert!(total >= 10, "expected a rich neighbor set, got {total}");
    }

    #[test]
    fn hh_cancellation_found() {
        let g = vec![Gate::H(0), Gate::H(0)];
        assert!(all_neighbors(&g).iter().any(|n| n.is_empty()));
    }

    #[test]
    fn cnot_reversal_found() {
        let g = vec![
            Gate::H(0),
            Gate::H(1),
            Gate::Cnot(0, 1),
            Gate::H(1),
            Gate::H(0),
        ];
        assert!(all_neighbors(&g)
            .iter()
            .any(|n| n == &vec![Gate::Cnot(1, 0)]));
    }

    #[test]
    fn commuting_swap_is_generated_only_for_overlapping_pairs() {
        let g = vec![Gate::Rz(0, Angle::PI_4), Gate::Cnot(0, 1)];
        let nbs = all_neighbors(&g);
        assert!(nbs.contains(&vec![Gate::Cnot(0, 1), Gate::Rz(0, Angle::PI_4)]));
        // Disjoint pair: no swap generated.
        let g = vec![Gate::H(0), Gate::H(1)];
        assert!(all_neighbors(&g).is_empty());
    }
}
