//! NOT-gate propagation (Nam et al. §4.1).
//!
//! Pauli-X gates are pushed to the end of the (sub)circuit in a single
//! linear sweep, using the exact propagation identities
//!
//! * `X(q)·H(q)      = H(q)·Z(q)` (Z emitted as `RZ(π)`, a global phase away),
//! * `X(q)·RZ(q,θ)   = RZ(q,−θ)·X(q)`,
//! * `X(t)·CNOT(c,t) = CNOT(c,t)·X(t)`,
//! * `X(c)·CNOT(c,t) = CNOT(c,t)·X(c)·X(t)`,
//!
//! maintaining one pending-X bit per wire. Pairs of X gates annihilate on the
//! fly; surviving bits are emitted at the very end, where the cancellation
//! passes frequently remove them against later segments.

use super::Pass;
use qcir::{Angle, Gate};

/// The NOT propagation pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct NotPropagation;

impl Pass for NotPropagation {
    fn name(&self) -> &'static str {
        "not-propagation"
    }

    fn run(&self, gates: Vec<Gate>, num_qubits: u32) -> Vec<Gate> {
        let mut pending = vec![false; num_qubits as usize];
        let mut out = Vec::with_capacity(gates.len());
        for g in gates {
            match g {
                Gate::X(q) => {
                    pending[q as usize] = !pending[q as usize];
                }
                Gate::H(q) => {
                    out.push(Gate::H(q));
                    if pending[q as usize] {
                        // X then H  =  H then Z.
                        out.push(Gate::Rz(q, Angle::PI));
                        pending[q as usize] = false;
                    }
                }
                Gate::Rz(q, a) => {
                    if pending[q as usize] {
                        if !a.is_zero() {
                            out.push(Gate::Rz(q, -a));
                        }
                    } else if !a.is_zero() {
                        out.push(Gate::Rz(q, a));
                    }
                }
                Gate::Cnot(c, t) => {
                    out.push(g);
                    // X on the control copies onto the target; X on the
                    // target commutes through.
                    if pending[c as usize] {
                        pending[t as usize] = !pending[t as usize];
                    }
                }
            }
        }
        for (q, p) in pending.into_iter().enumerate() {
            if p {
                out.push(Gate::X(q as u32));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Circuit;

    fn run(c: &Circuit) -> Vec<Gate> {
        NotPropagation.run(c.gates.clone(), c.num_qubits)
    }

    #[test]
    fn xx_annihilates() {
        let mut c = Circuit::new(1);
        c.x(0).x(0);
        assert!(run(&c).is_empty());
    }

    #[test]
    fn x_through_h_becomes_z() {
        let mut c = Circuit::new(1);
        c.x(0).h(0);
        assert_eq!(run(&c), vec![Gate::H(0), Gate::Rz(0, Angle::PI)]);
    }

    #[test]
    fn x_through_rz_negates_angle() {
        let mut c = Circuit::new(1);
        c.x(0).rz(0, Angle::PI_4).x(0);
        assert_eq!(run(&c), vec![Gate::Rz(0, Angle::SEVEN_PI_4)]);
    }

    #[test]
    fn x_on_control_copies_to_target() {
        let mut c = Circuit::new(2);
        c.x(0).cnot(0, 1);
        let out = run(&c);
        assert_eq!(out[0], Gate::Cnot(0, 1));
        assert_eq!(out.len(), 3);
        assert!(out.contains(&Gate::X(0)));
        assert!(out.contains(&Gate::X(1)));
    }

    #[test]
    fn x_on_target_commutes() {
        let mut c = Circuit::new(2);
        c.x(1).cnot(0, 1);
        assert_eq!(run(&c), vec![Gate::Cnot(0, 1), Gate::X(1)]);
    }

    #[test]
    fn sandwiched_xs_cancel_through_cnots() {
        // X(0) CNOT(0,1) X(0) leaves CNOT(0,1) X(1) after propagation.
        let mut c = Circuit::new(2);
        c.x(0).cnot(0, 1).x(0);
        let out = run(&c);
        assert_eq!(out, vec![Gate::Cnot(0, 1), Gate::X(1)]);
    }

    #[test]
    fn semantics_preserved_on_random_circuits() {
        for seed in 0..10 {
            let c = super::super::testutil::random_circuit(4, 60, seed * 13 + 5);
            let out = Circuit {
                num_qubits: 4,
                gates: run(&c),
            };
            assert!(
                qsim::circuits_equivalent(&c, &out, 3, seed ^ 0x77),
                "seed {seed}: pass changed semantics"
            );
        }
    }
}
