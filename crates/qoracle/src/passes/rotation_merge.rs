//! Phase-polynomial rotation merging (Nam et al. §4.4, via the phase-folding
//! formulation of Amy–Maslov–Mosca).
//!
//! Within `{CNOT, X, RZ}` regions, each wire carries an affine Boolean
//! function of the circuit's *path variables*: the original inputs, plus a
//! fresh variable for every Hadamard (each H introduces a new path-sum
//! variable). An `RZ(θ)` on a wire carrying the function `f ⊕ c` contributes
//! the path-phase `e^{iθ'(−1)^{f}}`-style factor with `θ' = c ? −θ : θ`,
//! which depends only on `f` — not on *where* in the circuit it is applied.
//! Phases on the same linear part therefore merge, regardless of distance.
//!
//! Consequences implemented here, all in one linear sweep:
//!
//! * two rotations whose wires carry the same linear function merge
//!   (`θ₁ + θ₂` at the earlier site), even across CNOTs, X gates, and
//!   rotations on other functions;
//! * a rotation on the *complement* of a seen function merges with negated
//!   angle;
//! * a rotation on a constant function (empty linear part) is a global phase
//!   and is deleted;
//! * merged-to-zero rotations are deleted.
//!
//! This pass never increases the gate count.

use super::Pass;
use qcir::{Angle, Gate};
use std::collections::HashMap;

/// The phase-polynomial rotation merging pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct RotationMerge;

/// Hard cap on tracked linear-function size; wires whose function would
/// exceed it are reset to a fresh opaque variable (sound: it only *loses*
/// merge opportunities, never soundness).
const MAX_TERMS: usize = 128;

/// A wire's value as an affine function: XOR of `vars`, complemented iff
/// `comp`. `vars` is sorted and duplicate-free.
#[derive(Clone, PartialEq, Eq, Hash)]
struct LinFn {
    vars: Vec<u32>,
    comp: bool,
}

impl LinFn {
    fn var(v: u32) -> LinFn {
        LinFn {
            vars: vec![v],
            comp: false,
        }
    }
}

/// XOR (symmetric difference) of two sorted variable sets.
fn xor_sets(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl Pass for RotationMerge {
    fn name(&self) -> &'static str {
        "rotation-merge"
    }

    fn run(&self, gates: Vec<Gate>, num_qubits: u32) -> Vec<Gate> {
        let mut fresh = num_qubits;
        let mut wire: Vec<LinFn> = (0..num_qubits).map(LinFn::var).collect();
        // linear part -> (slot index of the first rotation on it, whether the
        // wire was complemented at that site).
        let mut sites: HashMap<Vec<u32>, (usize, bool)> = HashMap::new();
        let mut out: Vec<Option<Gate>> = Vec::with_capacity(gates.len());

        for g in gates {
            match g {
                Gate::Cnot(c, t) => {
                    let vars = xor_sets(&wire[c as usize].vars, &wire[t as usize].vars);
                    if vars.len() > MAX_TERMS {
                        wire[t as usize] = LinFn::var(fresh);
                        fresh += 1;
                    } else {
                        wire[t as usize] = LinFn {
                            vars,
                            comp: wire[t as usize].comp ^ wire[c as usize].comp,
                        };
                    }
                    out.push(Some(g));
                }
                Gate::X(q) => {
                    wire[q as usize].comp = !wire[q as usize].comp;
                    out.push(Some(g));
                }
                Gate::H(q) => {
                    wire[q as usize] = LinFn::var(fresh);
                    fresh += 1;
                    out.push(Some(g));
                }
                Gate::Rz(q, theta) => {
                    let f = &wire[q as usize];
                    if f.vars.is_empty() {
                        // Phase on a constant: global phase, delete.
                        continue;
                    }
                    match sites.get(&f.vars) {
                        None => {
                            sites.insert(f.vars.clone(), (out.len(), f.comp));
                            out.push(Some(g));
                        }
                        Some(&(k, comp_at_k)) => {
                            let Some(Gate::Rz(q0, prev)) = out[k] else {
                                unreachable!("merge site must hold a rotation");
                            };
                            // Same complement: add; opposite: subtract.
                            let delta = if comp_at_k == f.comp { theta } else { -theta };
                            let sum = prev + delta;
                            out[k] = if sum.is_zero() {
                                // Keep the slot (sites may still point at it)
                                // as an explicit identity; compaction strips it.
                                Some(Gate::Rz(q0, Angle::ZERO))
                            } else {
                                Some(Gate::Rz(q0, sum))
                            };
                        }
                    }
                }
            }
        }
        super::compact(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Circuit;

    fn run(c: &Circuit) -> Vec<Gate> {
        RotationMerge.run(c.gates.clone(), c.num_qubits)
    }

    #[test]
    fn adjacent_rotations_merge() {
        let mut c = Circuit::new(1);
        c.rz(0, Angle::PI_4).rz(0, Angle::PI_2);
        assert_eq!(run(&c), vec![Gate::Rz(0, Angle::pi_frac(3, 4))]);
    }

    #[test]
    fn merge_through_cnot_sandwich() {
        // RZ(1) CNOT(0,1) RZ'(1) CNOT(0,1): wire 1 carries x1, then x0^x1,
        // then x1 again — the outer rotations merge despite the CNOTs.
        let mut c = Circuit::new(2);
        c.rz(1, Angle::PI_4)
            .cnot(0, 1)
            .rz(1, Angle::PI_4) // on x0^x1: independent, stays
            .cnot(0, 1)
            .rz(1, Angle::PI_4); // back on x1: merges with the first
        let out = run(&c);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], Gate::Rz(1, Angle::PI_2));
        let oc = Circuit {
            num_qubits: 2,
            gates: out,
        };
        assert!(qsim::circuits_equivalent_exact(&c, &oc));
    }

    #[test]
    fn complement_merges_with_negation() {
        // X(0) RZ(θ) X(0) RZ(φ) : first rotation acts on ¬x0, second on x0;
        // they merge to RZ(φ−θ) at the first site.
        let mut c = Circuit::new(1);
        c.x(0).rz(0, Angle::PI_4).x(0).rz(0, Angle::PI_2);
        let out = run(&c);
        // Merged: π/4 at site on ¬x0, contribution of π/2 on x0 is −π/2
        // there: π/4 − π/2 = −π/4 = 7π/4.
        assert_eq!(
            out,
            vec![Gate::X(0), Gate::Rz(0, Angle::SEVEN_PI_4), Gate::X(0)]
        );
        let oc = Circuit {
            num_qubits: 1,
            gates: out,
        };
        assert!(qsim::circuits_equivalent_exact(&c, &oc));
    }

    #[test]
    fn rotations_cancelling_to_zero_disappear() {
        let mut c = Circuit::new(2);
        c.rz(0, Angle::PI_4).cnot(0, 1).rz(0, -Angle::PI_4);
        assert_eq!(run(&c), vec![Gate::Cnot(0, 1)]);
    }

    #[test]
    fn h_blocks_merging() {
        let mut c = Circuit::new(1);
        c.rz(0, Angle::PI_4).h(0).rz(0, Angle::PI_4);
        assert_eq!(run(&c).len(), 3);
    }

    #[test]
    fn merges_across_different_wires() {
        // The swap-by-three-CNOTs moves x0 onto wire 1; a rotation on wire 0
        // before the swap and on wire 1 after it act on the same linear
        // function x0 and must merge.
        let mut c = Circuit::new(2);
        c.rz(0, Angle::PI_4)
            .cnot(0, 1)
            .cnot(1, 0)
            .cnot(0, 1)
            .rz(1, Angle::PI_4);
        let out = run(&c);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], Gate::Rz(0, Angle::PI_2));
        let oc = Circuit {
            num_qubits: 2,
            gates: out,
        };
        assert!(qsim::circuits_equivalent_exact(&c, &oc));
    }

    #[test]
    fn never_increases_count_and_preserves_semantics() {
        for seed in 0..10 {
            let c = super::super::testutil::random_circuit(4, 80, seed * 17 + 3);
            let out = Circuit {
                num_qubits: 4,
                gates: run(&c),
            };
            assert!(out.len() <= c.len());
            assert!(
                qsim::circuits_equivalent(&c, &out, 3, seed ^ 0xfeed),
                "seed {seed}: pass changed semantics"
            );
        }
    }

    #[test]
    fn long_distance_merge() {
        // Two rotations on x0 separated by a pile of unrelated activity.
        let mut c = Circuit::new(3);
        c.rz(0, Angle::PI_4);
        for _ in 0..10 {
            c.h(1).cnot(1, 2).x(2);
        }
        c.rz(0, Angle::PI_4);
        let out = run(&c);
        assert_eq!(out.len(), c.len() - 1);
        assert_eq!(out[0], Gate::Rz(0, Angle::PI_2));
    }
}
