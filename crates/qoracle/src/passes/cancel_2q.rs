//! Two-qubit (CNOT) gate cancellation with commutation (Nam et al. §4.2).
//!
//! For each CNOT, walk forward sliding past provably commuting gates
//! (rotations on the control, X/CNOTs sharing the target, CNOTs sharing the
//! control, disjoint gates) and cancel with an identical CNOT.

use super::{compact, Pass};
use crate::commutes;
use qcir::Gate;

/// The CNOT cancellation pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct CancelTwoQubit;

impl Pass for CancelTwoQubit {
    fn name(&self) -> &'static str {
        "cancel-2q"
    }

    fn run(&self, gates: Vec<Gate>, _num_qubits: u32) -> Vec<Gate> {
        let mut slots: Vec<Option<Gate>> = gates.into_iter().map(Some).collect();
        for i in 0..slots.len() {
            let Some(g @ Gate::Cnot(c, t)) = slots[i] else {
                continue;
            };
            for j in i + 1..slots.len() {
                let Some(h) = slots[j] else { continue };
                if !(h.acts_on(c) || h.acts_on(t)) {
                    continue;
                }
                if let Gate::Cnot(c2, t2) = h {
                    if c2 == c && t2 == t {
                        slots[i] = None;
                        slots[j] = None;
                        break;
                    }
                }
                if commutes(&g, &h) {
                    continue;
                }
                break;
            }
        }
        compact(slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::{Angle, Circuit};

    fn run(c: &Circuit) -> Vec<Gate> {
        CancelTwoQubit.run(c.gates.clone(), c.num_qubits)
    }

    #[test]
    fn adjacent_pair_cancels() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1).cnot(0, 1);
        assert!(run(&c).is_empty());
    }

    #[test]
    fn reversed_pair_does_not_cancel() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1).cnot(1, 0);
        assert_eq!(run(&c).len(), 2);
    }

    #[test]
    fn cancels_across_rz_on_control() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1).rz(0, Angle::PI_4).cnot(0, 1);
        let out = run(&c);
        assert_eq!(out, vec![Gate::Rz(0, Angle::PI_4)]);
    }

    #[test]
    fn cancels_across_x_on_target() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1).x(1).cnot(0, 1);
        assert_eq!(run(&c), vec![Gate::X(1)]);
    }

    #[test]
    fn cancels_across_shared_control_cnot() {
        let mut c = Circuit::new(3);
        c.cnot(0, 1).cnot(0, 2).cnot(0, 1);
        let out = run(&c);
        assert_eq!(out, vec![Gate::Cnot(0, 2)]);
    }

    #[test]
    fn cancels_across_shared_target_cnot() {
        let mut c = Circuit::new(3);
        c.cnot(0, 2).cnot(1, 2).cnot(0, 2);
        let out = run(&c);
        assert_eq!(out, vec![Gate::Cnot(1, 2)]);
    }

    #[test]
    fn blocked_by_h_on_target() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1).h(1).cnot(0, 1);
        assert_eq!(run(&c).len(), 3);
    }

    #[test]
    fn blocked_by_rz_on_target() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1).rz(1, Angle::PI_4).cnot(0, 1);
        assert_eq!(run(&c).len(), 3);
    }

    #[test]
    fn semantics_preserved_on_random_circuits() {
        for seed in 0..8 {
            let c = super::super::testutil::random_circuit(4, 60, seed * 7 + 1);
            let out = Circuit {
                num_qubits: 4,
                gates: run(&c),
            };
            assert!(out.len() <= c.len());
            assert!(
                qsim::circuits_equivalent(&c, &out, 3, seed ^ 0x5a5a),
                "seed {seed}: pass changed semantics"
            );
        }
    }
}
