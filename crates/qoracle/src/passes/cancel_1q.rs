//! Single-qubit gate cancellation with commutation (Nam et al. §4.2).
//!
//! For each single-qubit gate, walk forward along its wire, sliding past
//! gates that provably commute with it, and either cancel with an inverse
//! partner (`H·H`, `X·X`, `RZ(a)·RZ(-a)`) or merge rotations
//! (`RZ(a)·RZ(b) → RZ(a+b)`).
//!
//! On a whole circuit the forward walks make this pass superlinear in the
//! worst case — the same asymptotic profile as VOQC's implementation, and
//! one reason whole-circuit oracles lose to POPQC on large inputs.

use super::{compact, Pass};
use crate::commutes;
use qcir::Gate;

/// The single-qubit cancellation/merge pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct CancelSingleQubit;

impl Pass for CancelSingleQubit {
    fn name(&self) -> &'static str {
        "cancel-1q"
    }

    fn run(&self, gates: Vec<Gate>, _num_qubits: u32) -> Vec<Gate> {
        let mut slots: Vec<Option<Gate>> = gates.into_iter().map(Some).collect();
        for i in 0..slots.len() {
            let Some(g) = slots[i] else { continue };
            let q = match g {
                Gate::H(q) | Gate::X(q) | Gate::Rz(q, _) => q,
                Gate::Cnot(..) => continue,
            };
            // Walk forward looking for a partner on wire q.
            for j in i + 1..slots.len() {
                let Some(h) = slots[j] else { continue };
                if !h.acts_on(q) {
                    continue;
                }
                if g.is_inverse_of(&h) {
                    slots[i] = None;
                    slots[j] = None;
                    break;
                }
                if let (Gate::Rz(_, a), Gate::Rz(_, b)) = (g, h) {
                    // Merge into the later site so subsequent merges chain.
                    slots[i] = None;
                    let sum = a + b;
                    slots[j] = if sum.is_zero() {
                        None
                    } else {
                        Some(Gate::Rz(q, sum))
                    };
                    break;
                }
                if commutes(&g, &h) {
                    continue;
                }
                break;
            }
        }
        compact(slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::{Angle, Circuit};

    fn run(c: &Circuit) -> Vec<Gate> {
        CancelSingleQubit.run(c.gates.clone(), c.num_qubits)
    }

    #[test]
    fn adjacent_hh_cancels() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        assert!(run(&c).is_empty());
    }

    #[test]
    fn rz_merges_across_commuting_cnot_control() {
        let mut c = Circuit::new(2);
        c.rz(0, Angle::PI_4).cnot(0, 1).rz(0, Angle::PI_4);
        let out = run(&c);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&Gate::Rz(0, Angle::PI_2)));
        assert!(out.contains(&Gate::Cnot(0, 1)));
    }

    #[test]
    fn rz_blocked_by_cnot_target() {
        let mut c = Circuit::new(2);
        c.rz(1, Angle::PI_4).cnot(0, 1).rz(1, Angle::PI_4);
        assert_eq!(run(&c).len(), 3);
    }

    #[test]
    fn x_slides_past_cnot_target_and_cancels() {
        let mut c = Circuit::new(2);
        c.x(1).cnot(0, 1).x(1);
        let out = run(&c);
        assert_eq!(out, vec![Gate::Cnot(0, 1)]);
    }

    #[test]
    fn h_blocked_by_anything_on_wire() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).h(0);
        assert_eq!(run(&c).len(), 3);
    }

    #[test]
    fn chain_of_rotations_collapses() {
        let mut c = Circuit::new(1);
        for _ in 0..8 {
            c.rz(0, Angle::PI_4);
        }
        // 8 * pi/4 = 2*pi = identity
        assert!(run(&c).is_empty());
    }

    #[test]
    fn disjoint_wires_untouched() {
        let mut c = Circuit::new(3);
        c.h(0).x(1).rz(2, Angle::PI_4);
        assert_eq!(run(&c), c.gates);
    }

    #[test]
    fn semantics_preserved_on_random_circuits() {
        for seed in 0..8 {
            let c = super::super::testutil::random_circuit(4, 60, seed);
            let out = Circuit {
                num_qubits: 4,
                gates: run(&c),
            };
            assert!(out.len() <= c.len());
            assert!(
                qsim::circuits_equivalent(&c, &out, 3, seed ^ 0xabc),
                "seed {seed}: pass changed semantics"
            );
        }
    }
}
