//! The rule-based optimizer's pass framework.
//!
//! Each pass is a pure function `Vec<Gate> → Vec<Gate>` implementing one of
//! the Nam-et-al. optimization families. Passes communicate only through the
//! gate sequence, so the pipeline in [`crate::rule_based`] can run them in
//! any order and to fixpoint.

pub mod cancel_1q;
pub mod cancel_2q;
pub mod hadamard;
pub mod not_prop;
pub mod rotation_merge;
pub mod rotation_merge_scan;

pub use cancel_1q::CancelSingleQubit;
pub use cancel_2q::CancelTwoQubit;
pub use hadamard::HadamardReduction;
pub use not_prop::NotPropagation;
pub use rotation_merge::RotationMerge;
pub use rotation_merge_scan::RotationMergeScan;

use qcir::Gate;

/// One optimization pass over a gate sequence.
pub trait Pass: Sync + Send {
    /// Pass name for tracing and experiment tables.
    fn name(&self) -> &'static str;

    /// Rewrites the gate sequence into an equivalent one (up to global
    /// phase). `num_qubits` is the enclosing circuit width.
    fn run(&self, gates: Vec<Gate>, num_qubits: u32) -> Vec<Gate>;
}

/// Compacts a tombstoned working buffer into a dense gate vector, dropping
/// removed slots and identity rotations (`RZ(0)`).
pub(crate) fn compact(slots: Vec<Option<Gate>>) -> Vec<Gate> {
    slots
        .into_iter()
        .flatten()
        .filter(|g| !g.is_identity())
        .collect()
}

/// Positions of every gate acting on each wire, in circuit order. The
/// pattern-matching passes use this to walk "next gate on this wire" chains
/// without rescanning the whole sequence.
#[allow(dead_code)]
pub(crate) fn wire_positions(gates: &[Gate], num_qubits: u32) -> Vec<Vec<u32>> {
    let mut wp = vec![Vec::new(); num_qubits as usize];
    for (i, g) in gates.iter().enumerate() {
        let (a, b) = g.qubits();
        wp[a as usize].push(i as u32);
        if let Some(b) = b {
            wp[b as usize].push(i as u32);
        }
    }
    wp
}

#[cfg(test)]
pub(crate) mod testutil {
    use qcir::{Angle, Circuit};

    /// Deterministic random circuit over `n` qubits with angles on the
    /// π/8 grid — dense in redundancy so passes have work to do.
    pub fn random_circuit(n: u32, len: usize, seed: u64) -> Circuit {
        // SplitMix64, kept local to avoid a dev-dependency cycle with qsim.
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut c = Circuit::new(n);
        for _ in 0..len {
            let r = next();
            let q = (r % n as u64) as u32;
            match (r >> 8) % 4 {
                0 => {
                    c.h(q);
                }
                1 => {
                    c.x(q);
                }
                2 => {
                    c.rz(q, Angle::pi_frac(((r >> 16) % 16) as i64, 8));
                }
                _ => {
                    let mut t = ((r >> 16) % n as u64) as u32;
                    if t == q {
                        t = (t + 1) % n;
                    }
                    c.cnot(q, t);
                }
            }
        }
        c
    }
}
