//! Hadamard gate reduction (Nam et al. §4.3).
//!
//! Hadamard gates block rotation merging (they end phase-polynomial
//! regions), so reducing their count unlocks the other passes. This pass
//! applies the five Nam patterns (writing `S = RZ(π/2)`, `S† = RZ(3π/2)`):
//!
//! 1. `H·S·H   → S†·H·S†`
//! 2. `H·S†·H  → S·H·S`
//! 3. `[H(c) H(t)]·CNOT(c,t)·[H(c) H(t)] → CNOT(t,c)`
//! 4. `H(t)·S(t)·CNOT(c,t)·S†(t)·H(t)    → S†(t)·CNOT(c,t)·S(t)`
//! 5. `H(t)·S†(t)·CNOT(c,t)·S(t)·H(t)    → S(t)·CNOT(c,t)·S†(t)`
//!
//! Patterns match along per-wire adjacency (gates on other wires may
//! interleave freely). Every application strictly decreases the H count, so
//! sweeping to fixpoint terminates.
//!
//! All five identities are verified against the simulator in this module's
//! tests (up to global phase).

use super::Pass;
use qcir::{Angle, Gate};

/// The Hadamard reduction pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct HadamardReduction;

const S: Angle = Angle::PI_2;
const SDG: Angle = Angle::THREE_PI_2;

impl Pass for HadamardReduction {
    fn name(&self) -> &'static str {
        "hadamard-reduction"
    }

    fn run(&self, gates: Vec<Gate>, num_qubits: u32) -> Vec<Gate> {
        let mut gates = gates;
        // Each sweep applies a maximal set of non-overlapping matches; the H
        // count strictly decreases per match, so this loop terminates.
        loop {
            let (next, changed) = sweep(gates, num_qubits);
            gates = next;
            if !changed {
                return gates;
            }
        }
    }
}

struct WireChains {
    /// `wp[q]` = positions (ascending) of gates acting on wire `q`.
    wp: Vec<Vec<u32>>,
    /// `rank_of[i]` = this gate's index within each of its wires' lists,
    /// `(rank_on_first_wire, rank_on_second_wire)`.
    rank: Vec<(u32, u32)>,
}

impl WireChains {
    fn build(gates: &[Gate], num_qubits: u32) -> WireChains {
        let mut wp = vec![Vec::new(); num_qubits as usize];
        let mut rank = vec![(u32::MAX, u32::MAX); gates.len()];
        for (i, g) in gates.iter().enumerate() {
            let (a, b) = g.qubits();
            rank[i].0 = wp[a as usize].len() as u32;
            wp[a as usize].push(i as u32);
            if let Some(b) = b {
                rank[i].1 = wp[b as usize].len() as u32;
                wp[b as usize].push(i as u32);
            }
        }
        WireChains { wp, rank }
    }

    /// The position `steps` places after `i` on wire `q` (or before, for
    /// negative `steps`).
    fn walk(&self, gates: &[Gate], i: usize, q: u32, steps: i32) -> Option<usize> {
        let (a, _) = gates[i].qubits();
        let r = if a == q {
            self.rank[i].0
        } else {
            self.rank[i].1
        };
        let k = r as i64 + steps as i64;
        if k < 0 {
            return None;
        }
        self.wp[q as usize].get(k as usize).map(|&p| p as usize)
    }
}

fn sweep(gates: Vec<Gate>, num_qubits: u32) -> (Vec<Gate>, bool) {
    let chains = WireChains::build(&gates, num_qubits);
    let mut slots: Vec<Option<Gate>> = gates.iter().copied().map(Some).collect();
    let mut claimed = vec![false; gates.len()];
    let mut changed = false;

    let free = |claimed: &[bool], ps: &[usize]| ps.iter().all(|&p| !claimed[p]);

    for i in 0..gates.len() {
        if claimed[i] {
            continue;
        }
        match gates[i] {
            // Rules 1 & 2, anchored at the leading H.
            Gate::H(q) => {
                let Some(j) = chains.walk(&gates, i, q, 1) else {
                    continue;
                };
                let Some(k) = chains.walk(&gates, i, q, 2) else {
                    continue;
                };
                let (Gate::Rz(_, a), Gate::H(_)) = (gates[j], gates[k]) else {
                    continue;
                };
                let flip = if a == S {
                    SDG
                } else if a == SDG {
                    S
                } else {
                    continue;
                };
                if !free(&claimed, &[i, j, k]) {
                    continue;
                }
                slots[i] = Some(Gate::Rz(q, flip));
                slots[j] = Some(Gate::H(q));
                slots[k] = Some(Gate::Rz(q, flip));
                for p in [i, j, k] {
                    claimed[p] = true;
                }
                changed = true;
            }
            // Rules 3–5, anchored at the CNOT.
            Gate::Cnot(c, t) => {
                // Rule 3: H(c) H(t) CNOT H(c) H(t)  →  CNOT(t, c).
                let pc = chains.walk(&gates, i, c, -1);
                let pt = chains.walk(&gates, i, t, -1);
                let nc = chains.walk(&gates, i, c, 1);
                let nt = chains.walk(&gates, i, t, 1);
                if let (Some(pc), Some(pt), Some(nc), Some(nt)) = (pc, pt, nc, nt) {
                    if gates[pc] == Gate::H(c)
                        && gates[pt] == Gate::H(t)
                        && gates[nc] == Gate::H(c)
                        && gates[nt] == Gate::H(t)
                        && free(&claimed, &[i, pc, pt, nc, nt])
                    {
                        slots[pc] = None;
                        slots[pt] = None;
                        slots[nc] = None;
                        slots[nt] = None;
                        slots[i] = Some(Gate::Cnot(t, c));
                        for p in [i, pc, pt, nc, nt] {
                            claimed[p] = true;
                        }
                        changed = true;
                        continue;
                    }
                }
                // Rules 4 & 5: H S CNOT S† H (on the target wire) and its
                // dagger: swap the inner rotations, drop the H pair.
                let (Some(p1), Some(n1)) = (pt, nt) else {
                    continue;
                };
                let Gate::Rz(rq, a) = gates[p1] else {
                    continue;
                };
                if rq != t {
                    continue;
                }
                let want = if a == S {
                    SDG
                } else if a == SDG {
                    S
                } else {
                    continue;
                };
                if gates[n1] != Gate::Rz(t, want) {
                    continue;
                }
                let Some(p0) = chains.walk(&gates, p1, t, -1) else {
                    continue;
                };
                let Some(n2) = chains.walk(&gates, n1, t, 1) else {
                    continue;
                };
                if gates[p0] != Gate::H(t) || gates[n2] != Gate::H(t) {
                    continue;
                }
                if !free(&claimed, &[i, p0, p1, n1, n2]) {
                    continue;
                }
                slots[p0] = None;
                slots[n2] = None;
                slots[p1] = Some(Gate::Rz(t, want));
                slots[n1] = Some(Gate::Rz(t, a));
                for p in [i, p0, p1, n1, n2] {
                    claimed[p] = true;
                }
                changed = true;
            }
            _ => {}
        }
    }
    (slots.into_iter().flatten().collect(), changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Circuit;

    fn run(c: &Circuit) -> Vec<Gate> {
        HadamardReduction.run(c.gates.clone(), c.num_qubits)
    }

    fn h_count(g: &[Gate]) -> usize {
        g.iter().filter(|g| matches!(g, Gate::H(_))).count()
    }

    #[test]
    fn rule1_hsh() {
        let mut c = Circuit::new(1);
        c.h(0).rz(0, S).h(0);
        let out = run(&c);
        assert_eq!(out, vec![Gate::Rz(0, SDG), Gate::H(0), Gate::Rz(0, SDG)]);
        let oc = Circuit {
            num_qubits: 1,
            gates: out,
        };
        assert!(qsim::circuits_equivalent_exact(&c, &oc));
    }

    #[test]
    fn rule2_hsdgh() {
        let mut c = Circuit::new(1);
        c.h(0).rz(0, SDG).h(0);
        let out = run(&c);
        assert_eq!(h_count(&out), 1);
        let oc = Circuit {
            num_qubits: 1,
            gates: out,
        };
        assert!(qsim::circuits_equivalent_exact(&c, &oc));
    }

    #[test]
    fn rule3_cnot_conjugation() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cnot(0, 1).h(0).h(1);
        let out = run(&c);
        assert_eq!(out, vec![Gate::Cnot(1, 0)]);
        let oc = Circuit {
            num_qubits: 2,
            gates: out,
        };
        assert!(qsim::circuits_equivalent_exact(&c, &oc));
    }

    #[test]
    fn rule4_target_sandwich() {
        let mut c = Circuit::new(2);
        c.h(1).rz(1, S).cnot(0, 1).rz(1, SDG).h(1);
        let out = run(&c);
        assert_eq!(
            out,
            vec![Gate::Rz(1, SDG), Gate::Cnot(0, 1), Gate::Rz(1, S)]
        );
        let oc = Circuit {
            num_qubits: 2,
            gates: out,
        };
        assert!(qsim::circuits_equivalent_exact(&c, &oc));
    }

    #[test]
    fn rule5_target_sandwich_dagger() {
        let mut c = Circuit::new(2);
        c.h(1).rz(1, SDG).cnot(0, 1).rz(1, S).h(1);
        let out = run(&c);
        assert_eq!(h_count(&out), 0);
        let oc = Circuit {
            num_qubits: 2,
            gates: out,
        };
        assert!(qsim::circuits_equivalent_exact(&c, &oc));
    }

    #[test]
    fn patterns_match_across_other_wires() {
        // Interleave an unrelated wire-2 gate inside the H S H pattern.
        let mut c = Circuit::new(3);
        c.h(0).x(2).rz(0, S).cnot(2, 1).h(0);
        let out = run(&c);
        assert_eq!(h_count(&out), 1);
        let oc = Circuit {
            num_qubits: 3,
            gates: out,
        };
        assert!(qsim::circuits_equivalent(&c, &oc, 3, 42));
    }

    #[test]
    fn no_match_leaves_input_untouched() {
        let mut c = Circuit::new(2);
        c.h(0).rz(0, Angle::PI_4).h(0).cnot(0, 1);
        assert_eq!(run(&c), c.gates);
    }

    #[test]
    fn semantics_preserved_on_random_circuits() {
        for seed in 0..10 {
            let c = super::super::testutil::random_circuit(4, 80, seed * 3 + 11);
            let out = Circuit {
                num_qubits: 4,
                gates: run(&c),
            };
            assert!(h_count(&out.gates) <= h_count(&c.gates));
            assert!(
                qsim::circuits_equivalent(&c, &out, 3, seed ^ 0x1234),
                "seed {seed}: pass changed semantics"
            );
        }
    }
}
