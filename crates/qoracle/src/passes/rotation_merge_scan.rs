//! VOQC-faithful rotation merging: per-rotation forward scans.
//!
//! Nam et al. (and the verified VOQC implementation) merge rotations by
//! building, *for each RZ gate*, the `{CNOT, X, RZ}` subcircuit reachable
//! from it and searching it for a mergeable partner — O(n) work per rotation
//! and O(n²) for a pass, which is precisely why whole-circuit VOQC runs blow
//! up on large inputs (the paper's motivating observation, and the source of
//! the "N.A. ≥ 24h" rows in Table 1).
//!
//! This pass reproduces that algorithmic profile faithfully; the
//! reproduction's *modernized* linear alternative is
//! [`super::RotationMerge`] (single-sweep phase folding), used by the POPQC
//! oracle where windows are Ω-bounded anyway. Both find the same merges on
//! small windows; this one simply pays the quadratic price on whole
//! circuits.
//!
//! Because a whole-circuit run can take arbitrarily long, the pass honours a
//! cooperative deadline (checked between scans): on expiry it returns what
//! it has, with the work completed so far preserved — mirroring how the
//! paper's harness cuts baseline runs off at a timeout.

use super::Pass;
use qcir::Gate;
use std::time::Instant;

/// The per-rotation-scan merge pass (quadratic, VOQC-faithful).
#[derive(Clone, Copy, Debug, Default)]
pub struct RotationMergeScan {
    /// Optional cooperative deadline for whole-circuit baseline runs.
    pub deadline: Option<Instant>,
}

/// A wire's affine function during one scan: XOR of variables (wire indices
/// at scan start, or fresh negatives for post-H resets) plus a complement.
#[derive(Clone)]
struct WireFn {
    vars: Vec<i64>,
    comp: bool,
}

fn xor_sets(a: &[i64], b: &[i64]) -> Vec<i64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl Pass for RotationMergeScan {
    fn name(&self) -> &'static str {
        "rotation-merge-scan"
    }

    fn run(&self, gates: Vec<Gate>, num_qubits: u32) -> Vec<Gate> {
        let n = num_qubits as usize;
        let mut slots: Vec<Option<Gate>> = gates.into_iter().map(Some).collect();
        let mut fresh: i64 = -1;

        for i in 0..slots.len() {
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    break;
                }
            }
            let Some(Gate::Rz(q, theta)) = slots[i] else {
                continue;
            };
            // Forward scan with wire functions relative to position i.
            let mut wires: Vec<WireFn> = (0..n)
                .map(|w| WireFn {
                    vars: vec![w as i64],
                    comp: false,
                })
                .collect();
            let anchor = vec![q as i64];
            for j in i + 1..slots.len() {
                let Some(g) = slots[j] else { continue };
                match g {
                    Gate::X(w) => {
                        wires[w as usize].comp = !wires[w as usize].comp;
                    }
                    Gate::H(w) => {
                        wires[w as usize] = WireFn {
                            vars: vec![fresh],
                            comp: false,
                        };
                        fresh -= 1;
                        // H on the anchor wire's *variable* is irrelevant:
                        // the anchor is the function x_q, which lives on in
                        // whatever wire still computes it. H(q) only resets
                        // wire q's function.
                    }
                    Gate::Cnot(c, t) => {
                        let x = xor_sets(&wires[t as usize].vars, &wires[c as usize].vars);
                        wires[t as usize] = WireFn {
                            vars: x,
                            comp: wires[t as usize].comp ^ wires[c as usize].comp,
                        };
                    }
                    Gate::Rz(w, phi) => {
                        if wires[w as usize].vars == anchor {
                            // Same linear function (complement ⇒ negate).
                            let delta = if wires[w as usize].comp {
                                -theta
                            } else {
                                theta
                            };
                            let sum = phi + delta;
                            slots[i] = None;
                            slots[j] = if sum.is_zero() {
                                None
                            } else {
                                Some(Gate::Rz(w, sum))
                            };
                            break;
                        }
                    }
                }
            }
        }
        super::compact(slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::{Angle, Circuit};

    fn run(c: &Circuit) -> Vec<Gate> {
        RotationMergeScan::default().run(c.gates.clone(), c.num_qubits)
    }

    #[test]
    fn merges_adjacent_and_distant_rotations() {
        let mut c = Circuit::new(2);
        c.rz(0, Angle::PI_4).cnot(0, 1).h(1).rz(0, Angle::PI_4);
        let out = run(&c);
        assert_eq!(out.len(), 3);
        assert!(out.contains(&Gate::Rz(0, Angle::PI_2)));
    }

    #[test]
    fn merge_through_cnot_sandwich_matches_fast_pass() {
        use crate::passes::RotationMerge;
        for seed in 0..6 {
            let c = crate::passes::testutil::random_circuit(4, 60, seed * 29 + 3);
            let slow = run(&c);
            let fast = RotationMerge.run(c.gates.clone(), c.num_qubits);
            // Both are sound; the fast pass folds at least as much.
            assert!(fast.len() <= slow.len() || slow.len() <= c.len());
            let slow_c = Circuit {
                num_qubits: 4,
                gates: slow,
            };
            assert!(
                qsim::circuits_equivalent(&c, &slow_c, 3, seed),
                "seed {seed}: scan merge changed semantics"
            );
        }
    }

    #[test]
    fn complement_negation_is_exact() {
        let mut c = Circuit::new(1);
        c.rz(0, Angle::PI_4).x(0).rz(0, Angle::PI_4).x(0);
        // Second rotation acts on ¬x0: contributes −π/4 at the anchor; they
        // cancel to zero and both disappear (X pair remains).
        let out = run(&c);
        assert_eq!(out, vec![Gate::X(0), Gate::X(0)]);
        let oc = Circuit {
            num_qubits: 1,
            gates: out,
        };
        assert!(qsim::circuits_equivalent_exact(&c, &oc));
    }

    #[test]
    fn deadline_short_circuits() {
        let pass = RotationMergeScan {
            deadline: Some(Instant::now()),
        };
        let mut c = Circuit::new(2);
        c.rz(0, Angle::PI_4).rz(0, Angle::PI_4);
        // Expired deadline: pass may bail before merging; output is merely
        // a compaction of the input.
        let out = pass.run(c.gates.clone(), 2);
        assert!(out.len() <= 2);
    }
}
