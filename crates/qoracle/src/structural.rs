//! The structural oracle: a value-blind rewrite pipeline whose decisions
//! depend only on gate *kinds and operand wires*, never on rotation angle
//! values — the honest bearer of the
//! [`SegmentOracle::angle_independent`] capability.
//!
//! Parameterized (VQE/QAOA-style) clients resubmit the same ansatz with
//! fresh angles every iteration. An angle-independent oracle lets the
//! segment cache key those segments by their *angle-abstracted*
//! fingerprint, so every iteration after the first reuses the oracle's
//! rewrite as a template instead of re-deriving it. The full rule
//! pipeline cannot make that promise: rotation merging sums angle values
//! and drops the ones that cancel to zero, and NOT propagation negates
//! them — both are value-dependent rewrites. Even the shared pass plumbing
//! is value-dependent: `passes::compact` silently drops `RZ(0)` identity
//! rotations, so this module carries its own compaction that preserves
//! every rotation verbatim.
//!
//! The one rewrite family that survives the value-blindness requirement is
//! self-inverse pair cancellation (`H·H = X·X = CNOT·CNOT = I`), sliding
//! the left partner past provably commuting gates — [`crate::commutes`]
//! itself only inspects kinds and wires. `RZ` gates are slid past but
//! never sourced, merged, or dropped, so the output carries every input
//! rotation through unchanged (same relative order per wire, same
//! values). That is what makes the template-replay scheme sound:
//! re-running this oracle on the same structure with different angles
//! yields the same gate skeleton with the angles carried through by
//! position.

use crate::passes::Pass;
use crate::{commutes, SegmentOracle};
use qcir::{Circuit, Gate};

/// Value-blind compaction: drops tombstones only. Unlike
/// `passes::compact` it keeps identity rotations (`RZ(0)`) — deleting
/// them would be a decision made by *reading* an angle value.
fn compact_blind(slots: Vec<Option<Gate>>) -> Vec<Gate> {
    slots.into_iter().flatten().collect()
}

/// Cancellation of adjacent-up-to-commutation self-inverse pairs (`H`,
/// `X`, and `CNOT` — every non-rotation gate in the ISA is its own
/// inverse). A pair cancels only when the partner is the *identical*
/// gate; `RZ` is never sourced.
#[derive(Clone, Copy, Debug, Default)]
pub struct CancelSelfInverse;

impl Pass for CancelSelfInverse {
    fn name(&self) -> &'static str {
        "cancel-self-inverse"
    }

    fn run(&self, gates: Vec<Gate>, _num_qubits: u32) -> Vec<Gate> {
        let mut slots: Vec<Option<Gate>> = gates.into_iter().map(Some).collect();
        for i in 0..slots.len() {
            let Some(g) = slots[i] else { continue };
            if matches!(g, Gate::Rz(..)) {
                continue;
            }
            let (a, b) = g.qubits();
            for j in i + 1..slots.len() {
                let Some(h) = slots[j] else { continue };
                if !h.acts_on(a) && !b.is_some_and(|b| h.acts_on(b)) {
                    continue;
                }
                if h == g {
                    slots[i] = None;
                    slots[j] = None;
                    break;
                }
                if commutes(&g, &h) {
                    continue;
                }
                break;
            }
        }
        compact_blind(slots)
    }
}

/// [`CancelSelfInverse`] iterated to fixpoint, as a [`SegmentOracle`]
/// that declares [`angle_independent`](SegmentOracle::angle_independent).
///
/// Weaker than `rule_based` on angle-heavy circuits (it never merges or
/// drops rotations) but every rewrite it performs is decided by structure
/// alone, so a cached rewrite transfers to *every* angle assignment of
/// the same skeleton.
pub struct StructuralOptimizer {
    pass: CancelSelfInverse,
    max_rounds: usize,
}

impl Default for StructuralOptimizer {
    fn default() -> Self {
        StructuralOptimizer::new()
    }
}

impl StructuralOptimizer {
    /// The fixpoint configuration (bounded at 32 rounds, matching the
    /// rule oracle's bound; the pass only deletes gates, so no realistic
    /// 2Ω-segment approaches the bound).
    pub fn new() -> StructuralOptimizer {
        StructuralOptimizer {
            pass: CancelSelfInverse,
            max_rounds: 32,
        }
    }

    /// Runs the pass to fixpoint. Cancellation only ever deletes gates,
    /// so lengths are strictly decreasing until convergence.
    pub fn run(&self, gates: &[Gate], num_qubits: u32) -> Vec<Gate> {
        let mut cur = gates.to_vec();
        for _ in 0..self.max_rounds {
            let before_len = cur.len();
            cur = self.pass.run(cur, num_qubits);
            if cur.len() == before_len {
                break;
            }
        }
        cur
    }

    /// Convenience wrapper over [`Circuit`].
    pub fn optimize_circuit(&self, c: &Circuit) -> Circuit {
        Circuit {
            num_qubits: c.num_qubits,
            gates: self.run(&c.gates, c.num_qubits),
        }
    }
}

impl SegmentOracle<Gate> for StructuralOptimizer {
    fn optimize(&self, units: &[Gate], num_qubits: u32) -> Vec<Gate> {
        self.run(units, num_qubits)
    }

    fn cost(&self, units: &[Gate]) -> u64 {
        units.len() as u64
    }

    fn name(&self) -> &'static str {
        "structural"
    }

    fn angle_independent(&self) -> bool {
        // The capability this oracle exists to carry honestly: the pass
        // never sources an `RZ`, its compaction keeps `RZ(0)`, and
        // `commutes` inspects kinds/wires only.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::random_circuit;
    use qcir::Angle;

    #[test]
    fn cancels_hh_xx_and_cnot_pairs() {
        let mut c = Circuit::new(3);
        c.h(0)
            .h(0)
            .x(1)
            .cnot(0, 2)
            .x(1)
            .cnot(0, 2)
            .rz(2, Angle::PI_4);
        let opt = StructuralOptimizer::new().optimize_circuit(&c);
        assert_eq!(opt.gates, vec![Gate::Rz(2, Angle::PI_4)]);
        assert!(qsim::circuits_equivalent_exact(&c, &opt));
    }

    #[test]
    fn rotations_pass_through_untouched() {
        // Even a zero rotation and a mergeable pair survive: the pipeline
        // must never read (or act on) angle values.
        let mut c = Circuit::new(2);
        c.rz(0, Angle::ZERO).rz(0, Angle::PI_4).rz(0, Angle::PI_4);
        let opt = StructuralOptimizer::new().optimize_circuit(&c);
        assert_eq!(opt.gates, c.gates);
    }

    #[test]
    fn slides_past_commuting_gates_to_cancel() {
        // X(1) commutes with CNOT(0, 1) (target side) and with RZ on a
        // disjoint wire, so the X pair cancels across both.
        let mut c = Circuit::new(2);
        c.x(1).cnot(0, 1).rz(0, Angle::PI_2).x(1);
        let opt = StructuralOptimizer::new().optimize_circuit(&c);
        assert_eq!(opt.gates, vec![Gate::Cnot(0, 1), Gate::Rz(0, Angle::PI_2)]);
        assert!(qsim::circuits_equivalent_exact(&c, &opt));
    }

    #[test]
    fn output_skeleton_is_angle_invariant() {
        // The property the segment cache's template replay leans on: for
        // circuits differing only in rotation values, the output is the
        // same skeleton with angles carried through by position.
        let orc = StructuralOptimizer::new();
        for seed in 0..6u64 {
            let base = random_circuit(4, 80, seed * 13 + 3);
            let mut substituted = base.clone();
            let mut k = 0i64;
            for g in &mut substituted.gates {
                if let Gate::Rz(q, _) = *g {
                    k += 1;
                    *g = Gate::Rz(q, Angle::pi_frac(k, 1 + k * 2));
                }
            }
            let out_a = orc.run(&base.gates, 4);
            let out_b = orc.run(&substituted.gates, 4);
            assert_eq!(out_a.len(), out_b.len(), "seed {seed}: skeletons diverged");
            for (a, b) in out_a.iter().zip(&out_b) {
                match (a, b) {
                    (Gate::Rz(qa, _), Gate::Rz(qb, _)) => assert_eq!(qa, qb),
                    (a, b) => assert_eq!(a, b, "seed {seed}: non-rotation gates diverged"),
                }
            }
        }
    }

    #[test]
    fn semantics_preserved_and_never_grows_on_random_circuits() {
        let orc = StructuralOptimizer::new();
        for seed in 0..8u64 {
            let c = random_circuit(4, 100, seed * 31 + 11);
            let opt = orc.optimize_circuit(&c);
            assert!(opt.len() <= c.len());
            assert!(
                qsim::circuits_equivalent(&c, &opt, 3, seed ^ 0xA11CE),
                "seed {seed}: structural oracle changed semantics"
            );
        }
    }

    #[test]
    fn capability_flags_are_honest_by_default() {
        assert!(StructuralOptimizer::new().angle_independent());
        assert!(!crate::RuleBasedOptimizer::oracle().angle_independent());
        assert!(!crate::SearchOptimizer::new(crate::GateCount, 100).angle_independent());
        assert!(crate::IdentityOracle.angle_independent());
    }
}
