//! Cost functions for oracle acceptance and search guidance.
//!
//! The default objective throughout the paper is gate count; Section 7.8
//! demonstrates flexibility with `cost = 10·depth + gates`. Both live here
//! behind the [`CostFn`] trait so the search optimizer and the layered POPQC
//! engine can swap objectives.

use qcir::{Circuit, Gate};

/// A circuit cost functional over flat gate sequences.
pub trait CostFn: Sync + Send {
    /// Cost of a gate sequence over `num_qubits` wires.
    fn cost(&self, gates: &[Gate], num_qubits: u32) -> u64;

    /// Display name for experiment tables.
    fn name(&self) -> &'static str;
}

/// Plain gate count — the paper's default objective.
#[derive(Clone, Copy, Debug, Default)]
pub struct GateCount;

impl CostFn for GateCount {
    fn cost(&self, gates: &[Gate], _num_qubits: u32) -> u64 {
        gates.len() as u64
    }

    fn name(&self) -> &'static str {
        "gate-count"
    }
}

/// The Section 7.8 mixed objective: `depth_weight·depth + gate_weight·gates`
/// (the paper uses 10 and 1).
#[derive(Clone, Copy, Debug)]
pub struct MixedDepthGates {
    /// Weight on circuit depth (paper: 10).
    pub depth_weight: u64,
    /// Weight on gate count (paper: 1).
    pub gate_weight: u64,
}

impl Default for MixedDepthGates {
    fn default() -> Self {
        MixedDepthGates {
            depth_weight: 10,
            gate_weight: 1,
        }
    }
}

impl CostFn for MixedDepthGates {
    fn cost(&self, gates: &[Gate], num_qubits: u32) -> u64 {
        let c = Circuit {
            num_qubits,
            gates: gates.to_vec(),
        };
        self.depth_weight * c.depth() as u64 + self.gate_weight * gates.len() as u64
    }

    fn name(&self) -> &'static str {
        "mixed-depth-gates"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Angle;

    #[test]
    fn gate_count_is_length() {
        let g = vec![Gate::H(0), Gate::X(1), Gate::Rz(0, Angle::PI_4)];
        assert_eq!(GateCount.cost(&g, 2), 3);
        assert_eq!(GateCount.cost(&[], 2), 0);
    }

    #[test]
    fn mixed_cost_weights_depth() {
        // Two parallel H's: depth 1, gates 2 -> 12. Two serial H's on one
        // wire: depth 2, gates 2 -> 22.
        let par = vec![Gate::H(0), Gate::H(1)];
        let ser = vec![Gate::H(0), Gate::H(0)];
        let m = MixedDepthGates::default();
        assert_eq!(m.cost(&par, 2), 12);
        assert_eq!(m.cost(&ser, 2), 22);
    }
}
