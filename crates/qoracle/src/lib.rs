//! # qoracle — oracle optimizers for POPQC
//!
//! POPQC (Algorithm 2) is parameterized by an *oracle*: a black-box function
//! `gate array → gate array` that optimizes small segments. The paper uses
//! VOQC (rule-based, fast) as the primary oracle and Quartz (search-based,
//! slow but flexible in its cost function) as a secondary one. This crate
//! provides from-scratch Rust equivalents of both:
//!
//! * [`RuleBasedOptimizer`] — a Nam-et-al.-style pass pipeline (NOT
//!   propagation, Hadamard reduction, single-/two-qubit cancellation with
//!   commutation, phase-polynomial rotation merging). Running the pipeline
//!   once over a whole circuit reproduces the "VOQC baseline"; running it to
//!   fixpoint on 2Ω-segments is the POPQC oracle configuration.
//! * [`SearchOptimizer`] — a bounded best-first search over verified rewrite
//!   rules with a pluggable [`CostFn`], reproducing the Quartz role in the
//!   depth-aware experiments (Section 7.8).
//!
//! Every rewrite used by either optimizer is verified against the `qsim`
//! state-vector simulator in this crate's test suite.
//!
//! The [`SegmentOracle`] trait is the interface the POPQC engine consumes; it
//! is generic over the unit type so the same engine can optimize gate
//! sequences (`Gate`) and layered circuits (`Layer`).

pub mod cost;
pub mod passes;
pub mod rule_based;
pub mod rules;
pub mod search;
pub mod structural;
pub mod well_behaved;

pub use cost::{CostFn, GateCount, MixedDepthGates};
pub use rule_based::RuleBasedOptimizer;
pub use search::{LayerSearchOracle, SearchOptimizer};
pub use structural::StructuralOptimizer;
pub use well_behaved::WellBehavedOracle;

use qcir::Gate;

/// An oracle optimizer over segments of units (gates or layers).
///
/// The engine treats this as the paper's black-box `oracle` function; the
/// only behavioural requirements are the ones the paper states:
///
/// * **determinism** — same input, same output;
/// * **monotonicity** — `cost(optimize(s)) ≤ cost(s)` and
///   `optimize(s).len() ≤ s.len()` (needed by the Lemma 2 potential
///   argument; both built-in oracles enforce it by falling back to their
///   input on non-improvement).
pub trait SegmentOracle<U>: Sync {
    /// Optimizes one segment. `num_qubits` is the width of the enclosing
    /// circuit (segments may mention any wire).
    fn optimize(&self, units: &[U], num_qubits: u32) -> Vec<U>;

    /// The cost the acceptance test compares (Algorithm 3 line 6 uses
    /// `|segment|`; Section 7.8 swaps in `10·depth + gates`).
    fn cost(&self, units: &[U]) -> u64;

    /// Display name for logs and experiment tables.
    fn name(&self) -> &'static str {
        "oracle"
    }

    /// Version tag for *persisted* result caches: an on-disk entry written
    /// under a different version than the running code is invalidated
    /// rather than trusted. The default ties the tag to this crate's
    /// package version plus the oracle's [`name`](Self::name), so bumping
    /// `qoracle` (where the built-in rewrite code lives) retires every
    /// persisted entry; oracles whose behaviour can change independently
    /// of a crate release should override this.
    fn version(&self) -> String {
        format!("{}+{}", env!("CARGO_PKG_VERSION"), self.name())
    }

    /// Declares that this oracle's rewrite decisions depend only on the
    /// *structure* of the segment (gate kinds and operand wires), never on
    /// rotation angle values: for any angle substitution over the input,
    /// the output is the same gate skeleton with the input's angles
    /// carried through positionally. The segment cache uses this
    /// capability to key segments by their angle-abstracted fingerprint
    /// and replay one derived rewrite across a whole parameter sweep.
    ///
    /// Honest-by-default `false` — declaring it wrongly would let the
    /// cache serve a rewrite derived under one angle assignment for a
    /// segment whose correct rewrite differs (e.g. the rule pipeline's
    /// rotation merging drops angles that sum to zero, which is a
    /// value-dependent decision). Only override to `true` if every rewrite
    /// is value-blind, as [`StructuralOptimizer`]'s are.
    fn angle_independent(&self) -> bool {
        false
    }
}

/// A trivial oracle that never changes its input. Useful as a control in
/// tests and ablations (POPQC over `IdentityOracle` must terminate after one
/// sweep with zero accepted optimizations).
pub struct IdentityOracle;

impl SegmentOracle<Gate> for IdentityOracle {
    fn optimize(&self, units: &[Gate], _num_qubits: u32) -> Vec<Gate> {
        units.to_vec()
    }

    fn cost(&self, units: &[Gate]) -> u64 {
        units.len() as u64
    }

    fn name(&self) -> &'static str {
        "identity"
    }

    fn angle_independent(&self) -> bool {
        // Returning the input verbatim is trivially value-blind.
        true
    }
}

/// Exact commutation test for the POPQC gate set, used by the cancellation
/// passes to slide gates past each other. Returns `true` only when the two
/// gates commute as matrices:
///
/// * disjoint qubits;
/// * `RZ` with `RZ` on the same wire;
/// * `RZ(c)` with `CNOT(c, ·)` (diagonal on the control);
/// * `X(t)` with `CNOT(·, t)`;
/// * `CNOT`s sharing a control or sharing a target.
pub fn commutes(a: &Gate, b: &Gate) -> bool {
    if a.independent(b) {
        return true;
    }
    match (*a, *b) {
        (Gate::Rz(q1, _), Gate::Rz(q2, _)) => q1 == q2,
        (Gate::Rz(q, _), Gate::Cnot(c, _)) | (Gate::Cnot(c, _), Gate::Rz(q, _)) => q == c,
        (Gate::X(q), Gate::Cnot(_, t)) | (Gate::Cnot(_, t), Gate::X(q)) => q == t,
        (Gate::X(q1), Gate::X(q2)) => q1 == q2,
        (Gate::H(q1), Gate::H(q2)) => q1 == q2,
        (Gate::Cnot(c1, t1), Gate::Cnot(c2, t2)) => {
            // Overlapping CNOTs commute iff no control hits the other's
            // target; sharing a control or sharing a target is fine.
            c1 != t2 && c2 != t1
        }
        _ => false,
    }
}

#[cfg(test)]
mod commute_tests {
    use super::*;
    use qcir::Angle;

    #[test]
    fn commutation_table() {
        let rz0 = Gate::Rz(0, Angle::PI_4);
        assert!(commutes(&rz0, &Gate::Rz(0, Angle::PI_2)));
        assert!(commutes(&rz0, &Gate::Cnot(0, 1)));
        assert!(!commutes(&rz0, &Gate::Cnot(1, 0)));
        assert!(commutes(&Gate::X(1), &Gate::Cnot(0, 1)));
        assert!(!commutes(&Gate::X(0), &Gate::Cnot(0, 1)));
        assert!(!commutes(&Gate::H(0), &Gate::Cnot(0, 1)));
        assert!(commutes(&Gate::H(0), &Gate::H(0)));
        assert!(!commutes(&Gate::H(0), &Gate::X(0)));
        // CNOTs sharing control / target.
        assert!(commutes(&Gate::Cnot(0, 1), &Gate::Cnot(0, 2)));
        assert!(commutes(&Gate::Cnot(0, 2), &Gate::Cnot(1, 2)));
        assert!(!commutes(&Gate::Cnot(0, 1), &Gate::Cnot(1, 2)));
        assert!(!commutes(&Gate::Cnot(0, 1), &Gate::Cnot(1, 0)));
        assert!(commutes(&Gate::Cnot(0, 1), &Gate::Cnot(2, 3)));
    }
}
