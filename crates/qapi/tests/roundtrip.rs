//! Serde round-trip tests for every v1 DTO: `to_json` → text → parse →
//! `from_json` must reproduce the value exactly, for both the fully
//! populated and the fully defaulted shape of each document.

use qapi::{
    ApiError, BatchCircuit, BatchRequest, BatchResponse, CacheClearResponse, CacheReport,
    CacheTierReport, ExecutorReport, FrontendReport, JobReport, JobStatus, OptimizeRequest,
    OracleInfo, OracleList, SegmentCacheReport, ServiceReport, StatsReport, TraceIndex,
    TraceReport, TraceSpan, TraceSummary, VersionInfo,
};
use serde_json::{json, Value};

fn reserialize(v: &Value) -> Value {
    let text = serde_json::to_string(v).expect("serialize");
    serde_json::from_str(&text).expect("reparse")
}

/// One fully populated job report.
pub fn full_job_report() -> JobReport {
    JobReport {
        label: Some("vqe-12".into()),
        fingerprint: "0123456789abcdef0123456789abcdef".into(),
        oracle: "rule_based".into(),
        omega: 200,
        input_gates: 2799,
        output_gates: 1615,
        reduction: 0.423,
        rounds: 15,
        oracle_calls: 59,
        cache_hit: false,
        coalesced: false,
        error: None,
        queue_seconds: 0.000125,
        run_seconds: 0.25,
        qasm: Some("OPENQASM 2.0;\nqreg q[2];\nh q[0];\n".into()),
    }
}

#[test]
fn job_report_round_trips() {
    for report in [
        full_job_report(),
        JobReport {
            label: None,
            qasm: None,
            error: Some("oracle_failure: optimization panicked: boom".into()),
            cache_hit: true,
            coalesced: true,
            ..full_job_report()
        },
    ] {
        let back = JobReport::from_json(&reserialize(&report.to_json())).unwrap();
        assert_eq!(back, report);
    }
}

#[test]
fn job_status_round_trips() {
    for status in [
        JobStatus {
            job_id: 7,
            label: Some("bg".into()),
            done: true,
            rounds_completed: 15,
            result: Some(full_job_report()),
        },
        JobStatus {
            job_id: 8,
            label: None,
            done: false,
            rounds_completed: 3,
            result: None,
        },
    ] {
        let back = JobStatus::from_json(&reserialize(&status.to_json())).unwrap();
        assert_eq!(back, status);
    }
}

#[test]
fn optimize_request_round_trips() {
    for req in [
        OptimizeRequest {
            qasm: "OPENQASM 2.0;\nqreg q[1];\nh q[0];\n".into(),
            oracle: Some("search".into()),
            omega: Some(64),
            label: Some("probe".into()),
            wait: false,
        },
        OptimizeRequest::new("OPENQASM 2.0;\nqreg q[1];\n"),
    ] {
        let back = OptimizeRequest::from_json(&reserialize(&req.to_json())).unwrap();
        assert_eq!(back, req);
    }
}

#[test]
fn batch_request_round_trips_and_accepts_string_shorthand() {
    let req = BatchRequest {
        circuits: vec![
            BatchCircuit {
                label: Some("a".into()),
                qasm: "OPENQASM 2.0;\nqreg q[1];\n".into(),
                oracle: Some("rule_based".into()),
                omega: Some(32),
            },
            BatchCircuit::new("OPENQASM 2.0;\nqreg q[2];\n"),
        ],
        omega: Some(100),
        oracle: Some("search".into()),
    };
    let back = BatchRequest::from_json(&reserialize(&req.to_json())).unwrap();
    assert_eq!(back, req);

    // A bare string member is shorthand for a defaulted entry.
    let shorthand =
        serde_json::from_str(r#"{"circuits":["OPENQASM 2.0;\nqreg q[1];\n"]}"#).unwrap();
    let parsed = BatchRequest::from_json(&shorthand).unwrap();
    assert_eq!(
        parsed.circuits,
        vec![BatchCircuit::new("OPENQASM 2.0;\nqreg q[1];\n")]
    );
}

#[test]
fn batch_request_rejects_malformed_shapes_as_invalid_config() {
    for (text, needle) in [
        (r#"{"omega": 3}"#, "circuits"),
        (r#"{"circuits": []}"#, "empty"),
        (r#"{"circuits": [{"label": "x"}]}"#, "qasm"),
        (r#"{"circuits": [42]}"#, "circuits[0]"),
        (r#"{"circuits": ["ok"], "omega": -1}"#, "omega"),
        (r#"{"circuits": ["ok"], "oracle": 9}"#, "oracle"),
        (
            r#"{"circuits": ["ok"], "api_version": "v0"}"#,
            "api_version",
        ),
    ] {
        let doc = serde_json::from_str(text).unwrap();
        let err = BatchRequest::from_json(&doc).expect_err(text);
        assert!(
            matches!(err, ApiError::InvalidConfig(_)),
            "{text}: got {err:?}"
        );
        assert!(err.message().contains(needle), "{text}: got {err}");
    }
}

#[test]
fn batch_response_round_trips() {
    let resp = BatchResponse {
        pass: 2,
        jobs: vec![full_job_report()],
        job_count: 1,
        cache_hits: 1,
        oracle_calls_issued: 0,
        gates_in: 2799,
        gates_out: 1615,
        wall_seconds: 0.125,
        jobs_per_sec: 8.0,
    };
    let back = BatchResponse::from_json(&reserialize(&resp.to_json())).unwrap();
    assert_eq!(back, resp);
}

#[test]
fn stats_and_service_report_round_trip() {
    let stats = StatsReport {
        workers: 4,
        threads_per_job: 2,
        uptime_seconds: 12.5,
        version: VersionInfo {
            build_version: "0.2.0".to_string(),
        },
        submitted: 10,
        completed: 10,
        cache_hits: 6,
        coalesced: 2,
        failed: 1,
        oracle_calls_issued: 321,
        cache_entries: 4,
        cache_evictions: 0,
        cache_backend: "tiered".into(),
        cache_tiers: vec![
            CacheTierReport {
                tier: "memory".into(),
                entries: 4,
                hits: 5,
                misses: 5,
                evictions: 0,
                bytes: 4096,
                errors: 0,
            },
            CacheTierReport {
                tier: "disk".into(),
                entries: 4,
                hits: 1,
                misses: 4,
                evictions: 0,
                bytes: 65536,
                errors: 0,
            },
        ],
        segment_cache: SegmentCacheReport {
            enabled: true,
            capacity: 4096,
            entries: 87,
            hits: 240,
            misses: 81,
            evictions: 3,
        },
        executor: ExecutorReport {
            workers: 4,
            grain: 128,
            parallel_ops: 45,
            tasks_executed: 1440,
            splits: 1395,
            steals: 612,
        },
        jobs_tracked: Some(3),
        frontend: Some(FrontendReport {
            frontend: "evented".into(),
            connections_open: 12,
            connections_accepted: 340,
            requests_shed: 7,
            rate_limited: 2,
            deadline_closes: 5,
            write_stalls: 1,
        }),
    };
    let back = StatsReport::from_json(&reserialize(&stats.to_json())).unwrap();
    assert_eq!(back, stats);

    // The CLI shape omits `jobs_tracked` and `frontend` entirely.
    let cli = StatsReport {
        jobs_tracked: None,
        frontend: None,
        ..stats.clone()
    };
    assert!(cli.to_json().get("jobs_tracked").is_none());
    assert!(cli.to_json().get("frontend").is_none());
    assert_eq!(
        StatsReport::from_json(&reserialize(&cli.to_json())).unwrap(),
        cli
    );

    let report = ServiceReport {
        passes: vec![BatchResponse {
            pass: 1,
            jobs: vec![full_job_report()],
            job_count: 1,
            cache_hits: 0,
            oracle_calls_issued: 59,
            gates_in: 2799,
            gates_out: 1615,
            wall_seconds: 0.25,
            jobs_per_sec: 4.0,
        }],
        service: cli,
    };
    let back = ServiceReport::from_json(&reserialize(&report.to_json())).unwrap();
    assert_eq!(back, report);
}

#[test]
fn cache_report_round_trips() {
    for report in [
        // Tiered shape: two tiers, aggregates distinct from either.
        CacheReport {
            backend: "tiered".into(),
            entries: 12,
            hits: 40,
            misses: 9,
            evictions: 3,
            bytes: 70_000,
            tiers: vec![
                CacheTierReport {
                    tier: "memory".into(),
                    entries: 8,
                    hits: 33,
                    misses: 16,
                    evictions: 3,
                    bytes: 4_464,
                    errors: 0,
                },
                // A remote back tier that degraded twice while its
                // server was unreachable.
                CacheTierReport {
                    tier: "remote".into(),
                    entries: 12,
                    hits: 7,
                    misses: 9,
                    evictions: 0,
                    bytes: 65_536,
                    errors: 2,
                },
            ],
        },
        // Degenerate shape: a fresh single-tier store.
        CacheReport {
            backend: "memory".into(),
            tiers: vec![CacheTierReport {
                tier: "memory".into(),
                ..CacheTierReport::default()
            }],
            ..CacheReport::default()
        },
    ] {
        let back = CacheReport::from_json(&reserialize(&report.to_json())).unwrap();
        assert_eq!(back, report);
    }
}

#[test]
fn cache_clear_response_round_trips() {
    for resp in [
        CacheClearResponse {
            cleared: true,
            entries_removed: 12,
        },
        CacheClearResponse::default(),
    ] {
        let back = CacheClearResponse::from_json(&reserialize(&resp.to_json())).unwrap();
        assert_eq!(back, resp);
    }
}

#[test]
fn version_and_oracle_list_round_trip() {
    let version = VersionInfo::current();
    assert_eq!(
        VersionInfo::from_json(&reserialize(&version.to_json())).unwrap(),
        version
    );

    let list = OracleList {
        oracles: vec![
            OracleInfo {
                id: "rule_based".into(),
                description: "rule pipeline to fixpoint".into(),
                default: true,
            },
            OracleInfo {
                id: "search".into(),
                description: "bounded best-first search".into(),
                default: false,
            },
        ],
    };
    assert_eq!(
        OracleList::from_json(&reserialize(&list.to_json())).unwrap(),
        list
    );
}

#[test]
fn trace_index_and_report_round_trip() {
    let report = TraceReport {
        trace_id: "00051234deadbeef".into(),
        status: 503,
        sampled_because: "shed".into(),
        start_unix_nanos: 1_754_000_000_000_000_000,
        duration_nanos: 2_500_000,
        dropped_spans: 3,
        queue_nanos: 40_000,
        engine_nanos: 2_100_000,
        oracle_nanos: 1_900_000,
        store_nanos: 60_000,
        spans: vec![
            TraceSpan {
                id: 1,
                parent: 0,
                name: "request".into(),
                start_nanos: 0,
                duration_nanos: 2_500_000,
                attrs: vec![
                    ("aborted".to_string(), json!(false)),
                    ("method".to_string(), json!("POST")),
                    // u64, not the default i32: the parser reads
                    // non-negative integers as unsigned, so only the
                    // unsigned shape round-trips exactly (the HTTP
                    // layer renders either the same).
                    ("omega".to_string(), json!(200u64)),
                    ("reduction".to_string(), json!(0.423)),
                ],
            },
            // A span with an empty attribute bag must survive too.
            TraceSpan {
                id: 2,
                parent: 1,
                name: "engine".into(),
                start_nanos: 120_000,
                duration_nanos: 2_100_000,
                attrs: vec![],
            },
        ],
    };
    let back = TraceReport::from_json(&reserialize(&report.to_json())).unwrap();
    assert_eq!(back, report);

    let index = TraceIndex {
        traces: vec![
            TraceSummary {
                trace_id: report.trace_id.clone(),
                status: report.status,
                sampled_because: report.sampled_because.clone(),
                start_unix_nanos: report.start_unix_nanos,
                duration_nanos: report.duration_nanos,
                span_count: report.spans.len() as u64,
            },
            TraceSummary {
                trace_id: "ffffffffffffffff".into(),
                status: 0,
                sampled_because: "aborted".into(),
                start_unix_nanos: 0,
                duration_nanos: 0,
                span_count: 1,
            },
        ],
    };
    assert_eq!(
        TraceIndex::from_json(&reserialize(&index.to_json())).unwrap(),
        index
    );
    // Empty index (fresh server, nothing kept yet).
    let empty = TraceIndex { traces: vec![] };
    assert_eq!(
        TraceIndex::from_json(&reserialize(&empty.to_json())).unwrap(),
        empty
    );
}

#[test]
fn trace_report_rejects_out_of_range_status() {
    let mut doc = TraceReport {
        trace_id: "00051234deadbeef".into(),
        status: 200,
        sampled_because: "slow".into(),
        start_unix_nanos: 0,
        duration_nanos: 1,
        dropped_spans: 0,
        queue_nanos: 0,
        engine_nanos: 0,
        oracle_nanos: 0,
        store_nanos: 0,
        spans: vec![],
    }
    .to_json();
    if let Value::Object(fields) = &mut doc {
        for (k, v) in fields.iter_mut() {
            if k == "status" {
                *v = json!(70000);
            }
        }
    }
    assert!(TraceReport::from_json(&reserialize(&doc)).is_err());
}

#[test]
fn api_error_round_trips_every_variant() {
    for err in ApiError::exemplars() {
        let doc = reserialize(&err.to_json());
        assert_eq!(
            doc.get("api_version").unwrap().as_str(),
            Some(qapi::API_VERSION)
        );
        assert_eq!(ApiError::from_json(&doc).unwrap(), err);
    }
    // Transport kinds decode as Internal without losing the message.
    let transport = qapi::transport_error_json("not_found", "no such job 9");
    assert_eq!(
        ApiError::from_json(&reserialize(&transport)).unwrap(),
        ApiError::Internal("no such job 9".into())
    );
}
