//! Wire-format snapshot tests: one exemplar of every v1 DTO is serialized
//! (pretty, deterministic field order) and diffed against the committed
//! files under `tests/snapshots/`. An accidental wire-format change —
//! renamed field, reordered object, altered number formatting — fails
//! here before it can break a deployed client.
//!
//! To bless an *intentional* format change:
//!
//! ```sh
//! POPQC_BLESS=1 cargo test -p popqc-api --test snapshots
//! ```
//!
//! and commit the rewritten snapshot files with the API change.

use qapi::{
    ApiError, BatchCircuit, BatchRequest, BatchResponse, CacheClearResponse, CacheReport,
    CacheTierReport, ExecutorReport, FrontendReport, JobReport, JobStatus, OptimizeRequest,
    OracleInfo, OracleList, SegmentCacheReport, ServiceReport, StatsReport, TraceIndex,
    TraceReport, TraceSpan, TraceSummary, VersionInfo,
};
use serde_json::json;
use serde_json::Value;
use std::path::PathBuf;

fn snapshot_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("snapshots")
}

fn check(name: &str, doc: &Value) {
    let path = snapshot_dir().join(format!("{name}.json"));
    let mut rendered = serde_json::to_string_pretty(doc).expect("serialize snapshot");
    rendered.push('\n');
    if std::env::var_os("POPQC_BLESS").is_some() {
        std::fs::create_dir_all(snapshot_dir()).expect("create snapshot dir");
        std::fs::write(&path, &rendered)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read snapshot {} ({e}); run with POPQC_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered, expected,
        "wire format of `{name}` changed; if intentional, re-bless with \
         POPQC_BLESS=1 cargo test -p popqc-api --test snapshots"
    );
}

fn exemplar_report(label: Option<&str>, qasm: bool) -> JobReport {
    JobReport {
        label: label.map(str::to_string),
        fingerprint: "0123456789abcdef0123456789abcdef".into(),
        oracle: "rule_based".into(),
        omega: 200,
        input_gates: 2799,
        output_gates: 1615,
        reduction: 0.423,
        rounds: 15,
        oracle_calls: 59,
        cache_hit: false,
        coalesced: false,
        error: None,
        queue_seconds: 0.000125,
        run_seconds: 0.25,
        qasm: qasm.then(|| "OPENQASM 2.0;\nqreg q[2];\nh q[0];\n".into()),
    }
}

#[test]
fn optimize_request_snapshot() {
    check(
        "optimize_request",
        &OptimizeRequest {
            qasm: "OPENQASM 2.0;\nqreg q[2];\nh q[0];\nh q[0];\n".into(),
            oracle: Some("search".into()),
            omega: Some(64),
            label: Some("probe".into()),
            wait: false,
        }
        .to_json(),
    );
}

#[test]
fn job_status_snapshot() {
    check(
        "job_status",
        &JobStatus {
            job_id: 1,
            label: Some("vqe-12".into()),
            done: true,
            rounds_completed: 15,
            result: Some(exemplar_report(None, true)),
        }
        .to_json(),
    );
}

#[test]
fn batch_request_snapshot() {
    check(
        "batch_request",
        &BatchRequest {
            circuits: vec![
                BatchCircuit {
                    label: Some("a".into()),
                    qasm: "OPENQASM 2.0;\nqreg q[1];\n".into(),
                    oracle: Some("search".into()),
                    omega: Some(32),
                },
                BatchCircuit::new("OPENQASM 2.0;\nqreg q[2];\n"),
            ],
            omega: Some(100),
            oracle: Some("rule_based".into()),
        }
        .to_json(),
    );
}

#[test]
fn batch_response_snapshot() {
    check(
        "batch_response",
        &BatchResponse {
            pass: 1,
            jobs: vec![exemplar_report(Some("vqe-12"), true)],
            job_count: 1,
            cache_hits: 0,
            oracle_calls_issued: 59,
            gates_in: 2799,
            gates_out: 1615,
            wall_seconds: 0.25,
            jobs_per_sec: 4.0,
        }
        .to_json(),
    );
}

/// The executor exemplar embedded in the stats snapshot.
fn exemplar_executor() -> ExecutorReport {
    ExecutorReport {
        workers: 4,
        grain: 0,
        parallel_ops: 45,
        tasks_executed: 1440,
        splits: 1395,
        steals: 612,
    }
}

/// The two-tier exemplar shared by the stats and cache snapshots.
fn exemplar_tiers() -> Vec<CacheTierReport> {
    vec![
        CacheTierReport {
            tier: "memory".into(),
            entries: 4,
            hits: 5,
            misses: 5,
            evictions: 0,
            bytes: 4464,
            errors: 0,
        },
        CacheTierReport {
            tier: "remote".into(),
            entries: 4,
            hits: 1,
            misses: 4,
            evictions: 0,
            bytes: 65536,
            errors: 2,
        },
    ]
}

#[test]
fn stats_report_snapshot() {
    check(
        "stats_report",
        &StatsReport {
            workers: 4,
            threads_per_job: 2,
            uptime_seconds: 12.5,
            version: VersionInfo {
                build_version: "0.2.0".to_string(),
            },
            submitted: 10,
            completed: 10,
            cache_hits: 6,
            coalesced: 2,
            failed: 1,
            oracle_calls_issued: 321,
            cache_entries: 4,
            cache_evictions: 0,
            cache_backend: "tiered".into(),
            cache_tiers: exemplar_tiers(),
            segment_cache: SegmentCacheReport {
                enabled: true,
                capacity: 4096,
                entries: 87,
                hits: 240,
                misses: 81,
                evictions: 0,
            },
            executor: exemplar_executor(),
            jobs_tracked: Some(3),
            frontend: Some(FrontendReport {
                frontend: "evented".into(),
                connections_open: 12,
                connections_accepted: 340,
                requests_shed: 7,
                rate_limited: 2,
                deadline_closes: 5,
                write_stalls: 1,
            }),
        }
        .to_json(),
    );
}

#[test]
fn cache_report_snapshot() {
    check(
        "cache_report",
        &CacheReport {
            backend: "tiered".into(),
            entries: 4,
            hits: 6,
            misses: 4,
            evictions: 0,
            bytes: 70000,
            tiers: exemplar_tiers(),
        }
        .to_json(),
    );
}

#[test]
fn cache_clear_snapshot() {
    check(
        "cache_clear",
        &CacheClearResponse {
            cleared: true,
            entries_removed: 4,
        }
        .to_json(),
    );
}

#[test]
fn service_report_snapshot() {
    check(
        "service_report",
        &ServiceReport {
            passes: vec![BatchResponse {
                pass: 1,
                jobs: vec![exemplar_report(Some("vqe-12"), false)],
                job_count: 1,
                cache_hits: 0,
                oracle_calls_issued: 59,
                gates_in: 2799,
                gates_out: 1615,
                wall_seconds: 0.25,
                jobs_per_sec: 4.0,
            }],
            service: StatsReport {
                workers: 2,
                threads_per_job: 1,
                uptime_seconds: 3.25,
                version: VersionInfo {
                    build_version: "0.2.0".to_string(),
                },
                submitted: 1,
                completed: 1,
                oracle_calls_issued: 59,
                cache_entries: 1,
                cache_backend: "memory".into(),
                cache_tiers: vec![CacheTierReport {
                    tier: "memory".into(),
                    entries: 1,
                    hits: 0,
                    misses: 1,
                    evictions: 0,
                    bytes: 1116,
                    errors: 0,
                }],
                ..StatsReport::default()
            },
        }
        .to_json(),
    );
}

#[test]
fn version_snapshot() {
    check(
        "version",
        &VersionInfo {
            build_version: "0.2.0".into(),
        }
        .to_json(),
    );
}

#[test]
fn oracle_list_snapshot() {
    check(
        "oracle_list",
        &OracleList {
            oracles: vec![
                OracleInfo {
                    id: "rule_based".into(),
                    description: "rule pipeline to fixpoint".into(),
                    default: true,
                },
                OracleInfo {
                    id: "search".into(),
                    description: "bounded best-first search".into(),
                    default: false,
                },
            ],
        }
        .to_json(),
    );
}

/// The trace exemplar shared by the index and report snapshots: a
/// forced, cache-missing optimize with one round and one oracle call.
fn exemplar_trace() -> TraceReport {
    TraceReport {
        trace_id: "00051234deadbeef".into(),
        status: 200,
        sampled_because: "forced".into(),
        start_unix_nanos: 1_754_000_000_000_000_000,
        duration_nanos: 2_500_000,
        dropped_spans: 0,
        queue_nanos: 40_000,
        engine_nanos: 2_100_000,
        oracle_nanos: 1_900_000,
        store_nanos: 60_000,
        spans: vec![
            TraceSpan {
                id: 1,
                parent: 0,
                name: "request".into(),
                start_nanos: 0,
                duration_nanos: 2_500_000,
                attrs: vec![
                    ("method".to_string(), json!("POST")),
                    ("path".to_string(), json!("/v1/optimize")),
                    ("request_id".to_string(), json!("77-abc-1")),
                ],
            },
            TraceSpan {
                id: 2,
                parent: 1,
                name: "dispatch_wait".into(),
                start_nanos: 5_000,
                duration_nanos: 35_000,
                attrs: vec![],
            },
            TraceSpan {
                id: 3,
                parent: 1,
                name: "engine".into(),
                start_nanos: 120_000,
                duration_nanos: 2_100_000,
                attrs: vec![
                    ("oracle".to_string(), json!("rule_based")),
                    ("width".to_string(), json!(4)),
                ],
            },
            TraceSpan {
                id: 4,
                parent: 3,
                name: "oracle_call".into(),
                start_nanos: 180_000,
                duration_nanos: 1_900_000,
                attrs: vec![
                    ("gates_in".to_string(), json!(2799)),
                    ("gates_out".to_string(), json!(1615)),
                ],
            },
        ],
    }
}

#[test]
fn trace_index_snapshot() {
    let t = exemplar_trace();
    check(
        "trace_index",
        &TraceIndex {
            traces: vec![TraceSummary {
                trace_id: t.trace_id.clone(),
                status: t.status,
                sampled_because: t.sampled_because.clone(),
                start_unix_nanos: t.start_unix_nanos,
                duration_nanos: t.duration_nanos,
                span_count: t.spans.len() as u64,
            }],
        }
        .to_json(),
    );
}

#[test]
fn trace_report_snapshot() {
    check("trace_report", &exemplar_trace().to_json());
}

/// The Chrome `trace_event` export is a wire format too — a drifting
/// field breaks chrome://tracing imports just like a v1 change breaks
/// API clients.
#[test]
fn trace_report_chrome_snapshot() {
    check("trace_report_chrome", &exemplar_trace().to_chrome_json());
}

#[test]
fn api_error_snapshots() {
    for err in ApiError::exemplars() {
        check(&format!("error_{}", err.kind()), &err.to_json());
    }
}
