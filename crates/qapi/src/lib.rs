//! # popqc-api — the versioned public API surface
//!
//! One crate is the single source of truth for everything that crosses the
//! process boundary: the v1 request/response DTOs, the structured
//! [`ApiError`] taxonomy with its canonical HTTP-status mapping, and their
//! JSON wire format. The batch service (`popqc-svc`), the HTTP frontend
//! (`popqc-http`), and the `popqc` CLI all parse and emit **these** types,
//! so the three surfaces cannot drift apart.
//!
//! Design rules:
//!
//! * **Versioned** — every top-level document carries
//!   `"api_version": "v1"` ([`API_VERSION`]); decoders reject documents
//!   from a different version instead of misreading them.
//! * **Closed error taxonomy** — [`ApiError`] has exactly six variants,
//!   each with one documented HTTP status
//!   ([`ApiError::http_status`]). Transport-level conditions outside the
//!   API taxonomy (unknown route, wrong method, oversized payload) share
//!   the same wire shape via [`transport_error_json`].
//! * **Explicit wire format** — (de)serialization is hand-written over the
//!   workspace's `serde_json` [`Value`] tree; every DTO round-trips
//!   (`to_json` → text → `from_json`) and the exact field layout is pinned
//!   by snapshot tests in `tests/snapshots/`.
//!
//! This crate deliberately depends only on `serde_json`: circuits travel
//! as QASM text and fingerprints as hex strings, so clients can speak the
//! API without linking the whole workspace.

#![deny(missing_docs)]

use serde_json::{json, Value};

/// The wire-format version every v1 document carries and decoders require.
pub const API_VERSION: &str = "v1";

/// The build version reported by `GET /v1/version` (the workspace package
/// version of the binary serving the API).
pub const BUILD_VERSION: &str = env!("CARGO_PKG_VERSION");

// ---------------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------------

/// The closed v1 error taxonomy. Every failure a client can cause or
/// observe maps to exactly one variant, and every variant maps to one
/// documented HTTP status — see [`http_status`](ApiError::http_status).
///
/// | variant | kind | HTTP | meaning |
/// |---------|------|------|---------|
/// | [`InvalidConfig`](ApiError::InvalidConfig) | `invalid_config` | 400 | malformed request: bad JSON, bad query/body parameters, out-of-range numbers |
/// | [`UnknownOracle`](ApiError::UnknownOracle) | `unknown_oracle` | 404 | the requested oracle id is not in the registry |
/// | [`InvalidQasm`](ApiError::InvalidQasm) | `invalid_qasm` | 422 | the request was well-formed but the circuit text does not parse |
/// | [`Overloaded`](ApiError::Overloaded) | `overloaded` | 503 | the service refused new work (e.g. the polling registry is full of pending jobs, or the edge shed the request before enqueueing) |
/// | [`RateLimited`](ApiError::RateLimited) | `rate_limited` | 429 | this client exceeded the per-peer request rate; retry after the advertised delay |
/// | [`OracleFailure`](ApiError::OracleFailure) | `oracle_failure` | 500 | the oracle crashed while optimizing; the job failed, resubmitting retries |
/// | [`Internal`](ApiError::Internal) | `internal` | 500 | a bug in the server itself |
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApiError {
    /// Well-formed transport, invalid QASM program text.
    InvalidQasm(String),
    /// The requested oracle id is not registered.
    UnknownOracle(String),
    /// Malformed request: bad JSON, bad parameters, out-of-range values.
    InvalidConfig(String),
    /// The service is refusing new work right now; retry later.
    Overloaded(String),
    /// This client exceeded the per-peer request rate; slow down.
    RateLimited(String),
    /// The oracle failed (panicked) while optimizing the circuit.
    OracleFailure(String),
    /// A server-side bug; nothing the client sent explains it.
    Internal(String),
}

impl ApiError {
    /// Every variant's wire kind, in canonical order (for table-driven
    /// tests over the full taxonomy).
    pub const KINDS: [&'static str; 7] = [
        "invalid_qasm",
        "unknown_oracle",
        "invalid_config",
        "overloaded",
        "rate_limited",
        "oracle_failure",
        "internal",
    ];

    /// One exemplar per variant, in [`KINDS`](Self::KINDS) order (for
    /// table-driven tests over the full taxonomy).
    pub fn exemplars() -> Vec<ApiError> {
        vec![
            ApiError::InvalidQasm("exemplar".into()),
            ApiError::UnknownOracle("exemplar".into()),
            ApiError::InvalidConfig("exemplar".into()),
            ApiError::Overloaded("exemplar".into()),
            ApiError::RateLimited("exemplar".into()),
            ApiError::OracleFailure("exemplar".into()),
            ApiError::Internal("exemplar".into()),
        ]
    }

    /// The stable wire identifier of this variant.
    pub fn kind(&self) -> &'static str {
        match self {
            ApiError::InvalidQasm(_) => "invalid_qasm",
            ApiError::UnknownOracle(_) => "unknown_oracle",
            ApiError::InvalidConfig(_) => "invalid_config",
            ApiError::Overloaded(_) => "overloaded",
            ApiError::RateLimited(_) => "rate_limited",
            ApiError::OracleFailure(_) => "oracle_failure",
            ApiError::Internal(_) => "internal",
        }
    }

    /// The human-readable detail message.
    pub fn message(&self) -> &str {
        match self {
            ApiError::InvalidQasm(m)
            | ApiError::UnknownOracle(m)
            | ApiError::InvalidConfig(m)
            | ApiError::Overloaded(m)
            | ApiError::RateLimited(m)
            | ApiError::OracleFailure(m)
            | ApiError::Internal(m) => m,
        }
    }

    /// The canonical HTTP status for this variant. This mapping is part of
    /// the v1 contract: 400 / 404 / 422 / 429 / 503 / 500.
    pub fn http_status(&self) -> u16 {
        match self {
            ApiError::InvalidConfig(_) => 400,
            ApiError::UnknownOracle(_) => 404,
            ApiError::InvalidQasm(_) => 422,
            ApiError::RateLimited(_) => 429,
            ApiError::Overloaded(_) => 503,
            ApiError::OracleFailure(_) | ApiError::Internal(_) => 500,
        }
    }

    /// The v1 error document:
    /// `{"api_version":"v1","error":{"kind":…,"message":…}}`.
    pub fn to_json(&self) -> Value {
        transport_error_json(self.kind(), self.message())
    }

    /// Decodes an error document produced by [`to_json`](Self::to_json).
    /// Transport-level kinds (which are outside the closed taxonomy)
    /// decode as [`ApiError::Internal`] so clients never lose the message.
    pub fn from_json(v: &Value) -> Result<ApiError, ApiError> {
        de::check_version(v)?;
        let err = v
            .get("error")
            .ok_or_else(|| de::malformed("error document: missing `error` object"))?;
        let kind = de::req_str(err, "kind")?;
        let message = de::req_str(err, "message")?;
        Ok(match kind.as_str() {
            "invalid_qasm" => ApiError::InvalidQasm(message),
            "unknown_oracle" => ApiError::UnknownOracle(message),
            "invalid_config" => ApiError::InvalidConfig(message),
            "overloaded" => ApiError::Overloaded(message),
            "rate_limited" => ApiError::RateLimited(message),
            "oracle_failure" => ApiError::OracleFailure(message),
            _ => ApiError::Internal(message),
        })
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

impl std::error::Error for ApiError {}

/// Builds an error document in the v1 wire shape for a *transport-level*
/// condition outside the [`ApiError`] taxonomy (e.g. `not_found`,
/// `method_not_allowed`, `bad_request`, `payload_too_large`). API-level
/// failures must use [`ApiError::to_json`] instead so the kind stays
/// within the closed taxonomy.
pub fn transport_error_json(kind: &str, message: &str) -> Value {
    json!({
        "api_version": API_VERSION,
        "error": { "kind": kind, "message": message },
    })
}

// ---------------------------------------------------------------------------
// Version / oracle discovery
// ---------------------------------------------------------------------------

/// `GET /v1/version`: the served API version plus the server build.
/// Also embedded as a fragment in [`StatsReport`], so a stats scrape
/// identifies the build that produced it.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct VersionInfo {
    /// The package version of the serving binary.
    pub build_version: String,
}

impl VersionInfo {
    /// The version document for this build.
    pub fn current() -> VersionInfo {
        VersionInfo {
            build_version: BUILD_VERSION.to_string(),
        }
    }

    /// Serializes to the v1 wire shape.
    pub fn to_json(&self) -> Value {
        json!({
            "api_version": API_VERSION,
            "build_version": self.build_version.as_str(),
        })
    }

    /// Decodes a document produced by [`to_json`](Self::to_json).
    pub fn from_json(v: &Value) -> Result<VersionInfo, ApiError> {
        de::check_version(v)?;
        Ok(VersionInfo {
            build_version: de::req_str(v, "build_version")?,
        })
    }

    /// Serializes as a nested fragment (no `api_version` — the enclosing
    /// document carries it).
    pub fn to_json_fragment(&self) -> Value {
        json!({ "build_version": self.build_version.as_str() })
    }

    /// Decodes a fragment produced by
    /// [`to_json_fragment`](Self::to_json_fragment).
    pub fn from_json_fragment(v: &Value) -> Result<VersionInfo, ApiError> {
        Ok(VersionInfo {
            build_version: de::req_str(v, "build_version")?,
        })
    }
}

/// One registered oracle, as listed by `GET /v1/oracles`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleInfo {
    /// Stable oracle id — the value requests pass as `oracle`.
    pub id: String,
    /// Human-readable description of the oracle's strategy.
    pub description: String,
    /// Whether this oracle is used when a request names none.
    pub default: bool,
}

/// `GET /v1/oracles`: the oracle registry contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleList {
    /// All registered oracles, in registration order.
    pub oracles: Vec<OracleInfo>,
}

impl OracleList {
    /// Serializes to the v1 wire shape.
    pub fn to_json(&self) -> Value {
        json!({
            "api_version": API_VERSION,
            "oracles": self
                .oracles
                .iter()
                .map(|o| {
                    json!({
                        "id": o.id.as_str(),
                        "description": o.description.as_str(),
                        "default": o.default,
                    })
                })
                .collect::<Vec<Value>>(),
        })
    }

    /// Decodes a document produced by [`to_json`](Self::to_json).
    pub fn from_json(v: &Value) -> Result<OracleList, ApiError> {
        de::check_version(v)?;
        let raw = de::req_array(v, "oracles")?;
        let mut oracles = Vec::with_capacity(raw.len());
        for o in raw {
            oracles.push(OracleInfo {
                id: de::req_str(o, "id")?,
                description: de::req_str(o, "description")?,
                default: de::req_bool(o, "default")?,
            });
        }
        Ok(OracleList { oracles })
    }
}

// ---------------------------------------------------------------------------
// Optimize (single job)
// ---------------------------------------------------------------------------

/// `POST /v1/optimize` options. Over HTTP the QASM may be the raw request
/// body with these options as query parameters, or the whole request may
/// be this DTO as a JSON body (`{"qasm": …, "oracle": …, …}`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OptimizeRequest {
    /// The circuit to optimize, as QASM program text.
    pub qasm: String,
    /// Oracle id from the registry; `None` selects the server default.
    pub oracle: Option<String>,
    /// Engine window Ω; `None` selects the server default.
    pub omega: Option<u64>,
    /// Client label echoed back in the job document.
    pub label: Option<String>,
    /// `false` submits and returns immediately for `/v1/jobs/{id}`
    /// polling; `true` (the default) blocks until the result is ready.
    pub wait: bool,
}

impl OptimizeRequest {
    /// A blocking request for `qasm` with every option defaulted.
    pub fn new(qasm: impl Into<String>) -> OptimizeRequest {
        OptimizeRequest {
            qasm: qasm.into(),
            oracle: None,
            omega: None,
            label: None,
            wait: true,
        }
    }

    /// Serializes to the v1 wire shape.
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![("qasm".to_string(), json!(self.qasm.as_str()))];
        de::push_opt_str(&mut pairs, "oracle", &self.oracle);
        if let Some(omega) = self.omega {
            pairs.push(("omega".to_string(), json!(omega)));
        }
        de::push_opt_str(&mut pairs, "label", &self.label);
        pairs.push(("wait".to_string(), json!(self.wait)));
        Value::Object(pairs)
    }

    /// Decodes a JSON-body optimize request; failures are
    /// [`ApiError::InvalidConfig`].
    pub fn from_json(v: &Value) -> Result<OptimizeRequest, ApiError> {
        de::request_shape(v)?;
        let qasm = de::req_str(v, "qasm")
            .map_err(|_| ApiError::InvalidConfig("missing `qasm` string".into()))?;
        let omega = de::opt_u64(v, "omega")?;
        let wait = match v.get("wait") {
            None => true,
            Some(w) => w.as_bool().ok_or_else(|| {
                ApiError::InvalidConfig("bad `wait` (need true|false)".to_string())
            })?,
        };
        Ok(OptimizeRequest {
            qasm,
            oracle: de::opt_str(v, "oracle")?,
            omega,
            label: de::opt_str(v, "label")?,
            wait,
        })
    }
}

/// The per-job statistics fragment embedded in [`JobStatus::result`] and
/// in [`BatchResponse::jobs`]. Not a top-level document, so it carries no
/// `api_version` of its own.
#[derive(Clone, Debug, PartialEq)]
pub struct JobReport {
    /// Client label (batch context only; `None` omits the field).
    pub label: Option<String>,
    /// Structural fingerprint of the *input* circuit, as 32 hex digits.
    pub fingerprint: String,
    /// The oracle id the job ran (and is cached) under.
    pub oracle: String,
    /// The engine window Ω the job ran with.
    pub omega: u64,
    /// Gate count before optimization.
    pub input_gates: u64,
    /// Gate count after optimization.
    pub output_gates: u64,
    /// `1 - output/input` gate reduction in `[0, 1]`.
    pub reduction: f64,
    /// Engine rounds the computation took.
    pub rounds: u64,
    /// Oracle calls the computation issued.
    pub oracle_calls: u64,
    /// Whether the result was served from the cache.
    pub cache_hit: bool,
    /// Whether the job attached to an identical in-flight computation.
    pub coalesced: bool,
    /// `Some` when the job failed (the oracle crashed); always emitted,
    /// `null` on success.
    pub error: Option<String>,
    /// Seconds from submission to a worker picking the job up.
    pub queue_seconds: f64,
    /// Seconds the worker spent producing the result.
    pub run_seconds: f64,
    /// The optimized circuit as QASM; omitted for failed jobs and for
    /// contexts that deliver circuits out of band (`None` omits the
    /// field).
    pub qasm: Option<String>,
}

impl JobReport {
    /// Serializes to the v1 wire shape.
    pub fn to_json(&self) -> Value {
        let mut pairs = Vec::with_capacity(15);
        de::push_opt_str(&mut pairs, "label", &self.label);
        pairs.push(("fingerprint".to_string(), json!(self.fingerprint.as_str())));
        pairs.push(("oracle".to_string(), json!(self.oracle.as_str())));
        pairs.push(("omega".to_string(), json!(self.omega)));
        pairs.push(("input_gates".to_string(), json!(self.input_gates)));
        pairs.push(("output_gates".to_string(), json!(self.output_gates)));
        pairs.push(("reduction".to_string(), json!(self.reduction)));
        pairs.push(("rounds".to_string(), json!(self.rounds)));
        pairs.push(("oracle_calls".to_string(), json!(self.oracle_calls)));
        pairs.push(("cache_hit".to_string(), json!(self.cache_hit)));
        pairs.push(("coalesced".to_string(), json!(self.coalesced)));
        pairs.push((
            "error".to_string(),
            self.error.as_deref().map_or(Value::Null, |e| json!(e)),
        ));
        pairs.push(("queue_seconds".to_string(), json!(self.queue_seconds)));
        pairs.push(("run_seconds".to_string(), json!(self.run_seconds)));
        de::push_opt_str(&mut pairs, "qasm", &self.qasm);
        Value::Object(pairs)
    }

    /// Decodes a fragment produced by [`to_json`](Self::to_json).
    pub fn from_json(v: &Value) -> Result<JobReport, ApiError> {
        Ok(JobReport {
            label: de::opt_str(v, "label")?,
            fingerprint: de::req_str(v, "fingerprint")?,
            oracle: de::req_str(v, "oracle")?,
            omega: de::req_u64(v, "omega")?,
            input_gates: de::req_u64(v, "input_gates")?,
            output_gates: de::req_u64(v, "output_gates")?,
            reduction: de::req_f64(v, "reduction")?,
            rounds: de::req_u64(v, "rounds")?,
            oracle_calls: de::req_u64(v, "oracle_calls")?,
            cache_hit: de::req_bool(v, "cache_hit")?,
            coalesced: de::req_bool(v, "coalesced")?,
            error: de::opt_str(v, "error")?,
            queue_seconds: de::req_f64(v, "queue_seconds")?,
            run_seconds: de::req_f64(v, "run_seconds")?,
            qasm: de::opt_str(v, "qasm")?,
        })
    }
}

/// The job document: `POST /v1/optimize` responses, `GET /v1/jobs/{id}`
/// polling, and the `popqc optimize --json` CLI output are all exactly
/// this DTO, built by one shared adapter, so the three can never diverge.
#[derive(Clone, Debug, PartialEq)]
pub struct JobStatus {
    /// Server-assigned job id (`/v1/jobs/{id}`).
    pub job_id: u64,
    /// Client label echoed back; always emitted, `null` when absent.
    pub label: Option<String>,
    /// Whether the result is available.
    pub done: bool,
    /// Engine rounds completed so far (live progress for pending jobs).
    pub rounds_completed: u64,
    /// The result once done; the field is omitted while pending.
    pub result: Option<JobReport>,
}

/// `POST /v1/optimize` answers with the same job document the polling
/// endpoint serves.
pub type OptimizeResponse = JobStatus;

impl JobStatus {
    /// Serializes to the v1 wire shape.
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("api_version".to_string(), json!(API_VERSION)),
            ("job_id".to_string(), json!(self.job_id)),
            (
                "label".to_string(),
                self.label.as_deref().map_or(Value::Null, |l| json!(l)),
            ),
            ("done".to_string(), json!(self.done)),
            ("rounds_completed".to_string(), json!(self.rounds_completed)),
        ];
        if let Some(r) = &self.result {
            pairs.push(("result".to_string(), r.to_json()));
        }
        Value::Object(pairs)
    }

    /// Decodes a document produced by [`to_json`](Self::to_json).
    pub fn from_json(v: &Value) -> Result<JobStatus, ApiError> {
        de::check_version(v)?;
        Ok(JobStatus {
            job_id: de::req_u64(v, "job_id")?,
            label: de::opt_str(v, "label")?,
            done: de::req_bool(v, "done")?,
            rounds_completed: de::req_u64(v, "rounds_completed")?,
            result: match v.get("result") {
                None | Some(Value::Null) => None,
                Some(r) => Some(JobReport::from_json(r)?),
            },
        })
    }
}

// ---------------------------------------------------------------------------
// Batch
// ---------------------------------------------------------------------------

/// One circuit inside a [`BatchRequest`], with optional per-job overrides
/// — this is what makes mixed-oracle batches expressible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchCircuit {
    /// Client label echoed back per job; defaults to `job-{index}`.
    pub label: Option<String>,
    /// The circuit as QASM program text.
    pub qasm: String,
    /// Per-job oracle id; `None` inherits the batch (then server) default.
    pub oracle: Option<String>,
    /// Per-job Ω; `None` inherits the batch (then server) default.
    pub omega: Option<u64>,
}

impl BatchCircuit {
    /// A batch member with every override defaulted.
    pub fn new(qasm: impl Into<String>) -> BatchCircuit {
        BatchCircuit {
            label: None,
            qasm: qasm.into(),
            oracle: None,
            omega: None,
        }
    }
}

/// `POST /v1/batch`: a set of circuits optimized as one batch, with
/// batch-level defaults and per-circuit overrides.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchRequest {
    /// The circuits to optimize, in submission order.
    pub circuits: Vec<BatchCircuit>,
    /// Batch-default Ω; `None` uses the server default.
    pub omega: Option<u64>,
    /// Batch-default oracle id; `None` uses the server default.
    pub oracle: Option<String>,
}

impl BatchRequest {
    /// Serializes to the v1 wire shape.
    pub fn to_json(&self) -> Value {
        let circuits: Vec<Value> = self
            .circuits
            .iter()
            .map(|c| {
                let mut pairs = Vec::new();
                de::push_opt_str(&mut pairs, "label", &c.label);
                pairs.push(("qasm".to_string(), json!(c.qasm.as_str())));
                de::push_opt_str(&mut pairs, "oracle", &c.oracle);
                if let Some(omega) = c.omega {
                    pairs.push(("omega".to_string(), json!(omega)));
                }
                Value::Object(pairs)
            })
            .collect();
        let mut pairs = vec![("circuits".to_string(), Value::Array(circuits))];
        if let Some(omega) = self.omega {
            pairs.push(("omega".to_string(), json!(omega)));
        }
        de::push_opt_str(&mut pairs, "oracle", &self.oracle);
        Value::Object(pairs)
    }

    /// Decodes a batch request; failures are [`ApiError::InvalidConfig`].
    /// A member may be a bare QASM string (shorthand for an entry with
    /// every override defaulted) or a full [`BatchCircuit`] object.
    pub fn from_json(v: &Value) -> Result<BatchRequest, ApiError> {
        de::request_shape(v)?;
        let entries = match v.get("circuits") {
            Some(Value::Array(a)) => a,
            _ => return Err(ApiError::InvalidConfig("missing `circuits` array".into())),
        };
        if entries.is_empty() {
            return Err(ApiError::InvalidConfig("`circuits` is empty".into()));
        }
        let mut circuits = Vec::with_capacity(entries.len());
        for (i, entry) in entries.iter().enumerate() {
            circuits.push(match entry {
                Value::String(s) => BatchCircuit::new(s.as_str()),
                Value::Object(_) => BatchCircuit {
                    label: de::opt_str(entry, "label")?,
                    qasm: de::req_str(entry, "qasm").map_err(|_| {
                        ApiError::InvalidConfig(format!("circuits[{i}]: missing `qasm` string"))
                    })?,
                    oracle: de::opt_str(entry, "oracle")?,
                    omega: de::opt_u64(entry, "omega")?,
                },
                _ => {
                    return Err(ApiError::InvalidConfig(format!(
                        "circuits[{i}]: expected a QASM string or an object"
                    )))
                }
            });
        }
        Ok(BatchRequest {
            circuits,
            omega: de::opt_u64(v, "omega")?,
            oracle: de::opt_str(v, "oracle")?,
        })
    }
}

/// `POST /v1/batch` response, and one pass of the CLI report: per-job
/// documents plus batch aggregates.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchResponse {
    /// 1-based pass number (the CLI's `--repeat` resubmits the batch).
    pub pass: u64,
    /// One report per job, in submission order.
    pub jobs: Vec<JobReport>,
    /// Jobs in the batch.
    pub job_count: u64,
    /// Jobs answered from the cache (including coalesced waiters).
    pub cache_hits: u64,
    /// Oracle calls actually issued by this batch (cache hits are free).
    pub oracle_calls_issued: u64,
    /// Total input gates across the batch.
    pub gates_in: u64,
    /// Total output gates across the batch.
    pub gates_out: u64,
    /// Submission-to-last-completion wall time.
    pub wall_seconds: f64,
    /// Completed jobs per second of batch wall time.
    pub jobs_per_sec: f64,
}

impl BatchResponse {
    /// Serializes to the v1 wire shape.
    pub fn to_json(&self) -> Value {
        json!({
            "api_version": API_VERSION,
            "pass": self.pass,
            "jobs": self.jobs.iter().map(JobReport::to_json).collect::<Vec<Value>>(),
            "job_count": self.job_count,
            "cache_hits": self.cache_hits,
            "oracle_calls_issued": self.oracle_calls_issued,
            "gates_in": self.gates_in,
            "gates_out": self.gates_out,
            "wall_seconds": self.wall_seconds,
            "jobs_per_sec": self.jobs_per_sec,
        })
    }

    /// Decodes a document produced by [`to_json`](Self::to_json).
    pub fn from_json(v: &Value) -> Result<BatchResponse, ApiError> {
        de::check_version(v)?;
        let jobs = de::req_array(v, "jobs")?
            .iter()
            .map(JobReport::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BatchResponse {
            pass: de::req_u64(v, "pass")?,
            jobs,
            job_count: de::req_u64(v, "job_count")?,
            cache_hits: de::req_u64(v, "cache_hits")?,
            oracle_calls_issued: de::req_u64(v, "oracle_calls_issued")?,
            gates_in: de::req_u64(v, "gates_in")?,
            gates_out: de::req_u64(v, "gates_out")?,
            wall_seconds: de::req_f64(v, "wall_seconds")?,
            jobs_per_sec: de::req_f64(v, "jobs_per_sec")?,
        })
    }
}

// ---------------------------------------------------------------------------
// Cache admin (`/v1/cache`)
// ---------------------------------------------------------------------------

/// One tier of the result store, as embedded in [`CacheReport`] and
/// [`StatsReport`]. Not a top-level document, so it carries no
/// `api_version` of its own.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CacheTierReport {
    /// Tier name (`memory`, `disk`, `remote`, `null`).
    pub tier: String,
    /// Entries currently resident in this tier.
    pub entries: u64,
    /// Lookups this tier answered.
    pub hits: u64,
    /// Lookups this tier could not answer.
    pub misses: u64,
    /// Entries this tier evicted or invalidated.
    pub evictions: u64,
    /// Resident bytes (exact file bytes for the disk tier, an
    /// approximation for memory tiers).
    pub bytes: u64,
    /// Operations this tier degraded instead of completing — the remote
    /// tier's unreachable-server count; always zero for local tiers.
    pub errors: u64,
}

impl CacheTierReport {
    /// Serializes to the v1 wire shape.
    pub fn to_json(&self) -> Value {
        json!({
            "tier": self.tier.as_str(),
            "entries": self.entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bytes": self.bytes,
            "errors": self.errors,
        })
    }

    /// Decodes a fragment produced by [`to_json`](Self::to_json).
    pub fn from_json(v: &Value) -> Result<CacheTierReport, ApiError> {
        Ok(CacheTierReport {
            tier: de::req_str(v, "tier")?,
            entries: de::req_u64(v, "entries")?,
            hits: de::req_u64(v, "hits")?,
            misses: de::req_u64(v, "misses")?,
            evictions: de::req_u64(v, "evictions")?,
            bytes: de::req_u64(v, "bytes")?,
            errors: de::req_u64(v, "errors")?,
        })
    }
}

/// `GET /v1/cache`: the result store's backend, aggregate counters, and
/// per-tier breakdown (front tier first).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CacheReport {
    /// Backend name (`memory`, `disk`, `tiered`, `null`).
    pub backend: String,
    /// Entries in the authoritative tier.
    pub entries: u64,
    /// Logical hits (a lookup any tier answered).
    pub hits: u64,
    /// Logical misses (lookups no tier answered).
    pub misses: u64,
    /// Evictions/invalidations summed across tiers.
    pub evictions: u64,
    /// Resident bytes summed across tiers.
    pub bytes: u64,
    /// Per-tier counters, front tier first.
    pub tiers: Vec<CacheTierReport>,
}

impl CacheReport {
    /// Serializes to the v1 wire shape.
    pub fn to_json(&self) -> Value {
        json!({
            "api_version": API_VERSION,
            "backend": self.backend.as_str(),
            "entries": self.entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bytes": self.bytes,
            "tiers": self.tiers.iter().map(CacheTierReport::to_json).collect::<Vec<Value>>(),
        })
    }

    /// Decodes a document produced by [`to_json`](Self::to_json).
    pub fn from_json(v: &Value) -> Result<CacheReport, ApiError> {
        de::check_version(v)?;
        let tiers = de::req_array(v, "tiers")?
            .iter()
            .map(CacheTierReport::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CacheReport {
            backend: de::req_str(v, "backend")?,
            entries: de::req_u64(v, "entries")?,
            hits: de::req_u64(v, "hits")?,
            misses: de::req_u64(v, "misses")?,
            evictions: de::req_u64(v, "evictions")?,
            bytes: de::req_u64(v, "bytes")?,
            tiers,
        })
    }
}

/// `DELETE /v1/cache` (and `popqc cache clear`): the result of dropping
/// every stored entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CacheClearResponse {
    /// Whether the clear ran (always `true` in v1; reserved for future
    /// partial-failure reporting).
    pub cleared: bool,
    /// Distinct entries removed from the authoritative tier.
    pub entries_removed: u64,
}

impl CacheClearResponse {
    /// Serializes to the v1 wire shape.
    pub fn to_json(&self) -> Value {
        json!({
            "api_version": API_VERSION,
            "cleared": self.cleared,
            "entries_removed": self.entries_removed,
        })
    }

    /// Decodes a document produced by [`to_json`](Self::to_json).
    pub fn from_json(v: &Value) -> Result<CacheClearResponse, ApiError> {
        de::check_version(v)?;
        Ok(CacheClearResponse {
            cleared: de::req_bool(v, "cleared")?,
            entries_removed: de::req_u64(v, "entries_removed")?,
        })
    }
}

/// The engine-level segment cache's counters, as embedded in
/// [`StatsReport::segment_cache`]. Not a top-level document, so it
/// carries no `api_version` of its own.
///
/// Counts *logical* lookups from the engine hot path: each hit replaced
/// exactly one oracle call, so `hits / (hits + misses)` is the fraction
/// of segment work the cache absorbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct SegmentCacheReport {
    /// Whether the segment cache is active (`false` when configured with
    /// capacity 0; all counters stay 0).
    pub enabled: bool,
    /// Configured entry capacity (0 = disabled).
    pub capacity: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Engine segment lookups answered from the cache (each one an
    /// oracle call not issued).
    pub hits: u64,
    /// Engine segment lookups that fell through to the oracle.
    pub misses: u64,
    /// Entries evicted to make room (LRU, per shard).
    pub evictions: u64,
}

impl SegmentCacheReport {
    /// Serializes to the v1 wire shape.
    pub fn to_json(&self) -> Value {
        json!({
            "enabled": self.enabled,
            "capacity": self.capacity,
            "entries": self.entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        })
    }

    /// Decodes a fragment produced by [`to_json`](Self::to_json).
    pub fn from_json(v: &Value) -> Result<SegmentCacheReport, ApiError> {
        Ok(SegmentCacheReport {
            enabled: de::req_bool(v, "enabled")?,
            capacity: de::req_u64(v, "capacity")?,
            entries: de::req_u64(v, "entries")?,
            hits: de::req_u64(v, "hits")?,
            misses: de::req_u64(v, "misses")?,
            evictions: de::req_u64(v, "evictions")?,
        })
    }
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

/// The work-stealing executor's counters, as embedded in
/// [`StatsReport::executor`]. Not a top-level document, so it carries no
/// `api_version` of its own.
///
/// All counters are monotonic over the server process lifetime (the
/// executor pool is process-wide and persistent); rates come from
/// differencing two reports.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ExecutorReport {
    /// Executor worker threads spawned so far (0 until the first parallel
    /// operation; the pool grows toward the widest parallelism requested).
    pub workers: u64,
    /// Configured leaf grain size (`0` = adaptive splitting).
    pub grain: u64,
    /// Parallel map operations that actually went parallel.
    pub parallel_ops: u64,
    /// Forked (stealable) tasks executed.
    pub tasks_executed: u64,
    /// Fork points that made a task half stealable.
    pub splits: u64,
    /// Tasks taken from another worker's deque.
    pub steals: u64,
}

impl ExecutorReport {
    /// Serializes to the v1 wire shape.
    pub fn to_json(&self) -> Value {
        json!({
            "workers": self.workers,
            "grain": self.grain,
            "parallel_ops": self.parallel_ops,
            "tasks_executed": self.tasks_executed,
            "splits": self.splits,
            "steals": self.steals,
        })
    }

    /// Decodes a fragment produced by [`to_json`](Self::to_json).
    pub fn from_json(v: &Value) -> Result<ExecutorReport, ApiError> {
        Ok(ExecutorReport {
            workers: de::req_u64(v, "workers")?,
            grain: de::req_u64(v, "grain")?,
            parallel_ops: de::req_u64(v, "parallel_ops")?,
            tasks_executed: de::req_u64(v, "tasks_executed")?,
            splits: de::req_u64(v, "splits")?,
            steals: de::req_u64(v, "steals")?,
        })
    }
}

// ---------------------------------------------------------------------------
// Stats / full service report
// ---------------------------------------------------------------------------

/// Connection-frontend counters for the serving edge (`popqc serve`):
/// which frontend is answering and what its admission-control machinery
/// has done so far. Optional in [`StatsReport`] because only the HTTP
/// service has a frontend (CLI batch runs report `None`).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FrontendReport {
    /// Frontend flavor: `"threads"` (thread-per-connection) or
    /// `"evented"` (readiness-driven loop).
    pub frontend: String,
    /// Connections currently open.
    pub connections_open: u64,
    /// Connections accepted since start (monotonic).
    pub connections_accepted: u64,
    /// Requests refused with 503 by queue-depth load shedding.
    pub requests_shed: u64,
    /// Requests refused with 429 by the per-peer rate limiter.
    pub rate_limited: u64,
    /// Connections closed for blowing the idle/slowloris read deadline.
    pub deadline_closes: u64,
    /// Write stalls absorbed by per-connection output buffering.
    pub write_stalls: u64,
}

impl FrontendReport {
    /// Serializes to the v1 wire shape (the `frontend` object inside
    /// [`StatsReport`]).
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("frontend".to_string(), json!(self.frontend.as_str())),
            ("connections_open".to_string(), json!(self.connections_open)),
            (
                "connections_accepted".to_string(),
                json!(self.connections_accepted),
            ),
            ("requests_shed".to_string(), json!(self.requests_shed)),
            ("rate_limited".to_string(), json!(self.rate_limited)),
            ("deadline_closes".to_string(), json!(self.deadline_closes)),
            ("write_stalls".to_string(), json!(self.write_stalls)),
        ])
    }

    /// Decodes a document produced by [`to_json`](Self::to_json).
    pub fn from_json(v: &Value) -> Result<FrontendReport, ApiError> {
        Ok(FrontendReport {
            frontend: de::req_str(v, "frontend")?,
            connections_open: de::req_u64(v, "connections_open")?,
            connections_accepted: de::req_u64(v, "connections_accepted")?,
            requests_shed: de::req_u64(v, "requests_shed")?,
            rate_limited: de::req_u64(v, "rate_limited")?,
            deadline_closes: de::req_u64(v, "deadline_closes")?,
            write_stalls: de::req_u64(v, "write_stalls")?,
        })
    }
}

/// `GET /v1/stats`, the CLI report's `service` section, and the bench
/// report all derive from this one DTO, so their counters cannot drift.
///
/// The `executor` counters are **process-global and monotonic** (the
/// work-stealing pool is one per process, shared by every job): two
/// jobs in, the report holds their cumulative totals. Interval figures
/// come from differencing two reports (`qexec::ExecStats::delta_since`
/// server-side, or plain field subtraction on the wire shape).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct StatsReport {
    /// Worker threads (concurrent jobs).
    pub workers: u64,
    /// Engine threads each job runs with.
    pub threads_per_job: u64,
    /// Seconds the service has been up.
    pub uptime_seconds: f64,
    /// The build serving this report.
    pub version: VersionInfo,
    /// Jobs accepted.
    pub submitted: u64,
    /// Jobs completed (including cache hits and failures).
    pub completed: u64,
    /// Jobs answered from the cache or by coalescing.
    pub cache_hits: u64,
    /// Jobs that attached to an identical in-flight computation
    /// (a subset of `cache_hits`).
    pub coalesced: u64,
    /// Jobs that completed with an error (a subset of `completed`).
    pub failed: u64,
    /// Oracle calls issued by cache-missing jobs.
    pub oracle_calls_issued: u64,
    /// Live result-cache entries.
    pub cache_entries: u64,
    /// Result-cache LRU evictions.
    pub cache_evictions: u64,
    /// Result-store backend name (`memory`, `disk`, `tiered`, `null`).
    pub cache_backend: String,
    /// Per-tier store counters, front tier first (one entry for
    /// single-tier backends).
    pub cache_tiers: Vec<CacheTierReport>,
    /// Engine-level segment-cache counters (all-zero with `enabled:
    /// false` when the cache is configured off).
    pub segment_cache: SegmentCacheReport,
    /// Work-stealing executor counters (the process-wide pool every
    /// parallel engine round runs on).
    pub executor: ExecutorReport,
    /// Jobs retained for `/v1/jobs/{id}` polling (HTTP frontend only;
    /// `None` omits the field).
    pub jobs_tracked: Option<u64>,
    /// Connection-frontend counters (HTTP service only; `None` omits
    /// the field).
    pub frontend: Option<FrontendReport>,
}

impl StatsReport {
    /// Serializes to the v1 wire shape.
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("api_version".to_string(), json!(API_VERSION)),
            ("workers".to_string(), json!(self.workers)),
            ("threads_per_job".to_string(), json!(self.threads_per_job)),
            ("uptime_seconds".to_string(), json!(self.uptime_seconds)),
            ("version".to_string(), self.version.to_json_fragment()),
            ("submitted".to_string(), json!(self.submitted)),
            ("completed".to_string(), json!(self.completed)),
            ("cache_hits".to_string(), json!(self.cache_hits)),
            ("coalesced".to_string(), json!(self.coalesced)),
            ("failed".to_string(), json!(self.failed)),
            (
                "oracle_calls_issued".to_string(),
                json!(self.oracle_calls_issued),
            ),
            ("cache_entries".to_string(), json!(self.cache_entries)),
            ("cache_evictions".to_string(), json!(self.cache_evictions)),
            (
                "cache_backend".to_string(),
                json!(self.cache_backend.as_str()),
            ),
            (
                "cache_tiers".to_string(),
                Value::Array(
                    self.cache_tiers
                        .iter()
                        .map(CacheTierReport::to_json)
                        .collect(),
                ),
            ),
            ("segment_cache".to_string(), self.segment_cache.to_json()),
            ("executor".to_string(), self.executor.to_json()),
        ];
        if let Some(tracked) = self.jobs_tracked {
            pairs.push(("jobs_tracked".to_string(), json!(tracked)));
        }
        if let Some(frontend) = &self.frontend {
            pairs.push(("frontend".to_string(), frontend.to_json()));
        }
        Value::Object(pairs)
    }

    /// Decodes a document produced by [`to_json`](Self::to_json).
    pub fn from_json(v: &Value) -> Result<StatsReport, ApiError> {
        de::check_version(v)?;
        Ok(StatsReport {
            workers: de::req_u64(v, "workers")?,
            threads_per_job: de::req_u64(v, "threads_per_job")?,
            uptime_seconds: de::req_f64(v, "uptime_seconds")?,
            version: VersionInfo::from_json_fragment(
                v.get("version")
                    .ok_or_else(|| de::malformed("missing `version` object"))?,
            )?,
            submitted: de::req_u64(v, "submitted")?,
            completed: de::req_u64(v, "completed")?,
            cache_hits: de::req_u64(v, "cache_hits")?,
            coalesced: de::req_u64(v, "coalesced")?,
            failed: de::req_u64(v, "failed")?,
            oracle_calls_issued: de::req_u64(v, "oracle_calls_issued")?,
            cache_entries: de::req_u64(v, "cache_entries")?,
            cache_evictions: de::req_u64(v, "cache_evictions")?,
            cache_backend: de::req_str(v, "cache_backend")?,
            cache_tiers: de::req_array(v, "cache_tiers")?
                .iter()
                .map(CacheTierReport::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            segment_cache: SegmentCacheReport::from_json(
                v.get("segment_cache")
                    .ok_or_else(|| de::malformed("missing `segment_cache` object"))?,
            )?,
            executor: ExecutorReport::from_json(
                v.get("executor")
                    .ok_or_else(|| de::malformed("missing `executor` object"))?,
            )?,
            jobs_tracked: de::opt_u64(v, "jobs_tracked")?,
            frontend: match v.get("frontend") {
                Some(f) => Some(FrontendReport::from_json(f)?),
                None => None,
            },
        })
    }
}

/// The full CLI report: every pass plus the service's cumulative counters.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceReport {
    /// One [`BatchResponse`] per `--repeat` pass, in order.
    pub passes: Vec<BatchResponse>,
    /// Cumulative service counters after the last pass.
    pub service: StatsReport,
}

impl ServiceReport {
    /// Serializes to the v1 wire shape.
    pub fn to_json(&self) -> Value {
        json!({
            "api_version": API_VERSION,
            "passes": self.passes.iter().map(BatchResponse::to_json).collect::<Vec<Value>>(),
            "service": self.service.to_json(),
        })
    }

    /// Decodes a document produced by [`to_json`](Self::to_json).
    pub fn from_json(v: &Value) -> Result<ServiceReport, ApiError> {
        de::check_version(v)?;
        let passes = de::req_array(v, "passes")?
            .iter()
            .map(BatchResponse::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let service = StatsReport::from_json(
            v.get("service")
                .ok_or_else(|| de::malformed("missing `service` object"))?,
        )?;
        Ok(ServiceReport { passes, service })
    }
}

// ---------------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------------

/// One span inside a [`TraceReport`]. Not a top-level document, so it
/// carries no `api_version` of its own.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSpan {
    /// Span id, unique within the trace (the root span is id 1).
    pub id: u64,
    /// Parent span id; 0 for the root span.
    pub parent: u64,
    /// Operation name from the span inventory (`request`, `engine`,
    /// `oracle_call`, …).
    pub name: String,
    /// Start offset from the trace start, in nanoseconds (monotonic).
    pub start_nanos: u64,
    /// Span duration in nanoseconds.
    pub duration_nanos: u64,
    /// Typed attribute bag, sorted by key.
    pub attrs: Vec<(String, Value)>,
}

impl TraceSpan {
    /// Serializes to the v1 wire shape.
    pub fn to_json(&self) -> Value {
        json!({
            "id": self.id,
            "parent": self.parent,
            "name": self.name.as_str(),
            "start_nanos": self.start_nanos,
            "duration_nanos": self.duration_nanos,
            "attrs": Value::Object(self.attrs.clone()),
        })
    }

    /// Decodes a fragment produced by [`to_json`](Self::to_json).
    pub fn from_json(v: &Value) -> Result<TraceSpan, ApiError> {
        let attrs = match v.get("attrs") {
            None | Some(Value::Null) => Vec::new(),
            Some(Value::Object(pairs)) => pairs.clone(),
            Some(_) => return Err(de::malformed("bad `attrs` (need an object)")),
        };
        Ok(TraceSpan {
            id: de::req_u64(v, "id")?,
            parent: de::req_u64(v, "parent")?,
            name: de::req_str(v, "name")?,
            start_nanos: de::req_u64(v, "start_nanos")?,
            duration_nanos: de::req_u64(v, "duration_nanos")?,
            attrs,
        })
    }
}

/// One row of the `GET /v1/traces` index. Not a top-level document.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSummary {
    /// Canonical 16-hex-digit trace id (`/v1/traces/{id}`).
    pub trace_id: String,
    /// Final HTTP status of the traced request (0 if aborted).
    pub status: u16,
    /// Which tail-sampling rule kept this trace (`forced`, `error`,
    /// `shed`, `slow`, `probabilistic`, `aborted`).
    pub sampled_because: String,
    /// Wall-clock start, nanoseconds since the Unix epoch.
    pub start_unix_nanos: u64,
    /// Total trace duration in nanoseconds.
    pub duration_nanos: u64,
    /// Spans recorded (including the root span).
    pub span_count: u64,
}

impl TraceSummary {
    /// Serializes to the v1 wire shape.
    pub fn to_json(&self) -> Value {
        json!({
            "trace_id": self.trace_id.as_str(),
            "status": self.status,
            "sampled_because": self.sampled_because.as_str(),
            "start_unix_nanos": self.start_unix_nanos,
            "duration_nanos": self.duration_nanos,
            "span_count": self.span_count,
        })
    }

    /// Decodes a fragment produced by [`to_json`](Self::to_json).
    pub fn from_json(v: &Value) -> Result<TraceSummary, ApiError> {
        Ok(TraceSummary {
            trace_id: de::req_str(v, "trace_id")?,
            status: de::req_status(v)?,
            sampled_because: de::req_str(v, "sampled_because")?,
            start_unix_nanos: de::req_u64(v, "start_unix_nanos")?,
            duration_nanos: de::req_u64(v, "duration_nanos")?,
            span_count: de::req_u64(v, "span_count")?,
        })
    }
}

/// `GET /v1/traces`: the recent kept traces, newest first.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct TraceIndex {
    /// Recent kept traces, newest first.
    pub traces: Vec<TraceSummary>,
}

impl TraceIndex {
    /// Serializes to the v1 wire shape.
    pub fn to_json(&self) -> Value {
        json!({
            "api_version": API_VERSION,
            "traces": self.traces.iter().map(TraceSummary::to_json).collect::<Vec<Value>>(),
        })
    }

    /// Decodes a document produced by [`to_json`](Self::to_json).
    pub fn from_json(v: &Value) -> Result<TraceIndex, ApiError> {
        de::check_version(v)?;
        let traces = de::req_array(v, "traces")?
            .iter()
            .map(TraceSummary::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TraceIndex { traces })
    }
}

/// `GET /v1/traces/{id}`: one kept trace as a causally-linked span tree
/// plus its per-category time split.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceReport {
    /// Canonical 16-hex-digit trace id.
    pub trace_id: String,
    /// Final HTTP status of the traced request (0 if aborted).
    pub status: u16,
    /// Which tail-sampling rule kept this trace.
    pub sampled_because: String,
    /// Wall-clock start, nanoseconds since the Unix epoch.
    pub start_unix_nanos: u64,
    /// Total trace duration in nanoseconds.
    pub duration_nanos: u64,
    /// Spans recorded past the per-trace cap and therefore not stored.
    pub dropped_spans: u64,
    /// Nanoseconds attributed to queueing (dispatch + job queue wait).
    pub queue_nanos: u64,
    /// Nanoseconds attributed to the optimizer engine.
    pub engine_nanos: u64,
    /// Nanoseconds attributed to oracle calls (can exceed the engine
    /// span's duration when calls run in parallel).
    pub oracle_nanos: u64,
    /// Nanoseconds attributed to result-store and remote-cache I/O.
    pub store_nanos: u64,
    /// All spans, root (id 1) first.
    pub spans: Vec<TraceSpan>,
}

impl TraceReport {
    /// Serializes to the v1 wire shape.
    pub fn to_json(&self) -> Value {
        json!({
            "api_version": API_VERSION,
            "trace_id": self.trace_id.as_str(),
            "status": self.status,
            "sampled_because": self.sampled_because.as_str(),
            "start_unix_nanos": self.start_unix_nanos,
            "duration_nanos": self.duration_nanos,
            "dropped_spans": self.dropped_spans,
            "queue_nanos": self.queue_nanos,
            "engine_nanos": self.engine_nanos,
            "oracle_nanos": self.oracle_nanos,
            "store_nanos": self.store_nanos,
            "spans": self.spans.iter().map(TraceSpan::to_json).collect::<Vec<Value>>(),
        })
    }

    /// Decodes a document produced by [`to_json`](Self::to_json).
    pub fn from_json(v: &Value) -> Result<TraceReport, ApiError> {
        de::check_version(v)?;
        let spans = de::req_array(v, "spans")?
            .iter()
            .map(TraceSpan::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TraceReport {
            trace_id: de::req_str(v, "trace_id")?,
            status: de::req_status(v)?,
            sampled_because: de::req_str(v, "sampled_because")?,
            start_unix_nanos: de::req_u64(v, "start_unix_nanos")?,
            duration_nanos: de::req_u64(v, "duration_nanos")?,
            dropped_spans: de::req_u64(v, "dropped_spans")?,
            queue_nanos: de::req_u64(v, "queue_nanos")?,
            engine_nanos: de::req_u64(v, "engine_nanos")?,
            oracle_nanos: de::req_u64(v, "oracle_nanos")?,
            store_nanos: de::req_u64(v, "store_nanos")?,
            spans,
        })
    }

    /// Renders the trace in Chrome `trace_event` JSON (the
    /// `chrome://tracing` / Perfetto import format): one complete (`X`)
    /// event per span, microsecond timestamps, span ids and attributes
    /// in `args`.
    pub fn to_chrome_json(&self) -> Value {
        let events: Vec<Value> = self
            .spans
            .iter()
            .map(|s| {
                let mut args = vec![
                    ("span_id".to_string(), json!(s.id)),
                    ("parent_id".to_string(), json!(s.parent)),
                ];
                args.extend(s.attrs.clone());
                json!({
                    "name": s.name.as_str(),
                    "cat": "popqc",
                    "ph": "X",
                    "ts": s.start_nanos as f64 / 1e3,
                    "dur": (s.duration_nanos as f64 / 1e3).max(0.001),
                    "pid": 1,
                    "tid": 1,
                    "args": Value::Object(args),
                })
            })
            .collect();
        json!({
            "displayTimeUnit": "ms",
            "otherData": {
                "trace_id": self.trace_id.as_str(),
                "status": self.status,
                "sampled_because": self.sampled_because.as_str(),
            },
            "traceEvents": events,
        })
    }
}

// ---------------------------------------------------------------------------
// Decode helpers
// ---------------------------------------------------------------------------

mod de {
    use super::{ApiError, API_VERSION};
    use serde_json::{json, Value};

    pub(super) fn malformed(msg: impl Into<String>) -> ApiError {
        ApiError::Internal(format!("malformed v1 document: {}", msg.into()))
    }

    /// Top-level response documents must be objects carrying the exact
    /// `api_version` this crate speaks.
    pub(super) fn check_version(v: &Value) -> Result<(), ApiError> {
        if !matches!(v, Value::Object(_)) {
            return Err(malformed("expected a JSON object"));
        }
        match v.get("api_version").and_then(Value::as_str) {
            Some(API_VERSION) => Ok(()),
            Some(other) => Err(malformed(format!(
                "api_version `{other}` (this client speaks `{API_VERSION}`)"
            ))),
            None => Err(malformed("missing `api_version`")),
        }
    }

    /// Request documents must be objects; `api_version` is optional but
    /// must match when present.
    pub(super) fn request_shape(v: &Value) -> Result<(), ApiError> {
        if !matches!(v, Value::Object(_)) {
            return Err(ApiError::InvalidConfig(
                "request body must be a JSON object".into(),
            ));
        }
        match v.get("api_version").and_then(Value::as_str) {
            None | Some(API_VERSION) => Ok(()),
            Some(other) => Err(ApiError::InvalidConfig(format!(
                "api_version `{other}` is not supported (use `{API_VERSION}`)"
            ))),
        }
    }

    pub(super) fn req_str(v: &Value, key: &str) -> Result<String, ApiError> {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| malformed(format!("missing string `{key}`")))
    }

    pub(super) fn opt_str(v: &Value, key: &str) -> Result<Option<String>, ApiError> {
        match v.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(Value::String(s)) => Ok(Some(s.clone())),
            Some(_) => Err(ApiError::InvalidConfig(format!(
                "bad `{key}` (need a string)"
            ))),
        }
    }

    pub(super) fn req_u64(v: &Value, key: &str) -> Result<u64, ApiError> {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| malformed(format!("missing integer `{key}`")))
    }

    pub(super) fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, ApiError> {
        match v.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(n) => n.as_u64().map(Some).ok_or_else(|| {
                ApiError::InvalidConfig(format!("bad `{key}` (need a non-negative integer)"))
            }),
        }
    }

    /// An HTTP status field: a `u64` on the wire, range-checked into
    /// `u16`.
    pub(super) fn req_status(v: &Value) -> Result<u16, ApiError> {
        u16::try_from(req_u64(v, "status")?).map_err(|_| malformed("bad `status` (need a u16)"))
    }

    pub(super) fn req_f64(v: &Value, key: &str) -> Result<f64, ApiError> {
        v.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| malformed(format!("missing number `{key}`")))
    }

    pub(super) fn req_bool(v: &Value, key: &str) -> Result<bool, ApiError> {
        v.get(key)
            .and_then(Value::as_bool)
            .ok_or_else(|| malformed(format!("missing boolean `{key}`")))
    }

    pub(super) fn req_array<'v>(v: &'v Value, key: &str) -> Result<&'v Vec<Value>, ApiError> {
        v.get(key)
            .and_then(Value::as_array)
            .ok_or_else(|| malformed(format!("missing array `{key}`")))
    }

    /// Pushes `key` only when the value is present — the wire format omits
    /// optional string fields instead of emitting `null` for them.
    pub(super) fn push_opt_str(
        pairs: &mut Vec<(String, Value)>,
        key: &str,
        value: &Option<String>,
    ) {
        if let Some(s) = value {
            pairs.push((key.to_string(), json!(s.as_str())));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_status_mapping_is_canonical() {
        let expected = [422, 404, 400, 503, 429, 500, 500];
        for (e, (kind, status)) in ApiError::exemplars()
            .iter()
            .zip(ApiError::KINDS.iter().zip(expected))
        {
            assert_eq!(e.kind(), *kind);
            assert_eq!(e.http_status(), status, "{kind}");
        }
    }

    #[test]
    fn version_check_rejects_foreign_documents() {
        let v2 = serde_json::from_str(r#"{"api_version":"v2","build_version":"9.9.9"}"#).unwrap();
        assert!(VersionInfo::from_json(&v2).is_err());
        let none = serde_json::from_str(r#"{"build_version":"9.9.9"}"#).unwrap();
        assert!(VersionInfo::from_json(&none).is_err());
        assert!(VersionInfo::from_json(&VersionInfo::current().to_json()).is_ok());
    }
}
