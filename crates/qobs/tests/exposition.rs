//! Parser-based validation of the Prometheus text exposition emitted by
//! [`qobs::render`]: instead of grepping for substrings, these tests run
//! a small strict parser over the full output and check the structural
//! invariants a real scraper relies on — `# TYPE` before any sample of
//! its family, cumulative monotone histogram buckets ending in `+Inf`,
//! and label-value escaping that round-trips.
//!
//! The registry is process-global, so everything lives in one test
//! function (the other integration tests get their own binaries).

use std::collections::BTreeMap;

/// One parsed sample line: metric name (with `_bucket`/`_sum`/`_count`
/// suffix intact), sorted labels, value.
#[derive(Debug)]
struct Sample {
    name: String,
    labels: BTreeMap<String, String>,
    value: f64,
}

/// Strict-enough parser for the text format 0.0.4 subset `render` emits.
/// Panics (failing the test) on any line it cannot account for.
fn parse(text: &str) -> (BTreeMap<String, String>, Vec<Sample>) {
    let mut types = BTreeMap::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE line has a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE `{kind}`"
            );
            assert!(
                types.insert(name.to_string(), kind.to_string()).is_none(),
                "duplicate TYPE for {name}"
            );
            continue;
        }
        if line.starts_with("# HELP ") {
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment line: {line}");
        samples.push(parse_sample(line));
    }
    (types, samples)
}

fn parse_sample(line: &str) -> Sample {
    let (series, value) = line.rsplit_once(' ').expect("sample has a value");
    let value: f64 = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse().unwrap_or_else(|e| panic!("bad value `{v}`: {e}")),
    };
    let (name, labels) = match series.split_once('{') {
        None => (series.to_string(), BTreeMap::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').expect("closing brace");
            (name.to_string(), parse_labels(body))
        }
    };
    for ch in name.chars() {
        assert!(
            ch.is_ascii_alphanumeric() || ch == '_' || ch == ':',
            "bad metric name char `{ch}` in {name}"
        );
    }
    Sample {
        name,
        labels,
        value,
    }
}

/// Parses `k="v",k2="v2"`, undoing the `\\`, `\"`, `\n` escapes.
fn parse_labels(body: &str) -> BTreeMap<String, String> {
    let mut labels = BTreeMap::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        assert!(!key.is_empty(), "empty label key in `{body}`");
        assert_eq!(chars.next(), Some('"'), "label value must be quoted");
        let mut value = String::new();
        loop {
            match chars.next().expect("unterminated label value") {
                '"' => break,
                '\\' => match chars.next().expect("dangling escape") {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    other => panic!("unknown escape \\{other}"),
                },
                c => value.push(c),
            }
        }
        labels.insert(key, value);
        match chars.next() {
            None => return labels,
            Some(',') => continue,
            Some(c) => panic!("unexpected `{c}` after label value in `{body}`"),
        }
    }
}

/// The family a sample belongs to: histogram series drop their
/// `_bucket`/`_sum`/`_count` suffix.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if types.get(stem).map(String::as_str) == Some("histogram") {
                return stem;
            }
        }
    }
    name
}

#[test]
fn rendered_exposition_is_structurally_valid() {
    // Distinctive names so this test's families cannot collide with the
    // library's own unit-test registrations in other binaries.
    let hits = qobs::counter_vec(
        "exposition_test_hits_total",
        "Hits with hostile label values.",
        &["path"],
    );
    hits.with(&["plain"]).add(3);
    // A label value exercising every escape: backslash, quote, newline.
    hits.with(&["a\\b \"quoted\"\nnext"]).inc();

    let gauge = qobs::gauge("exposition_test_depth", "A signed gauge.");
    gauge.set(-7);

    let hist = qobs::histogram(
        "exposition_test_latency_seconds",
        "Latency with fixed buckets.",
        &[0.01, 0.1, 1.0],
    );
    for v in [0.005, 0.05, 0.05, 0.5, 5.0] {
        hist.observe(v);
    }

    let text = qobs::render();
    let (types, samples) = parse(&text);

    // TYPE header strictly precedes every sample of its family.
    let mut seen_types = std::collections::BTreeSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            seen_types.insert(rest.split_once(' ').unwrap().0.to_string());
        } else if !line.starts_with('#') && !line.is_empty() {
            let sample = parse_sample(line);
            let family = family_of(&sample.name, &types);
            assert!(
                seen_types.contains(family),
                "sample of {family} before its TYPE line: {line}"
            );
        }
    }

    // Counter and gauge values surface exactly.
    let find = |name: &str, label: Option<(&str, &str)>| -> f64 {
        samples
            .iter()
            .find(|s| {
                s.name == name
                    && label.is_none_or(|(k, v)| s.labels.get(k).map(String::as_str) == Some(v))
            })
            .unwrap_or_else(|| panic!("missing sample {name} {label:?}"))
            .value
    };
    assert_eq!(types.get("exposition_test_hits_total").unwrap(), "counter");
    assert_eq!(
        find("exposition_test_hits_total", Some(("path", "plain"))),
        3.0
    );
    // The hostile label value round-trips through escaping.
    assert_eq!(
        find(
            "exposition_test_hits_total",
            Some(("path", "a\\b \"quoted\"\nnext"))
        ),
        1.0
    );
    assert_eq!(types.get("exposition_test_depth").unwrap(), "gauge");
    assert_eq!(find("exposition_test_depth", None), -7.0);

    // Histogram: buckets are cumulative and monotone, end at +Inf == count,
    // and sum matches the observations.
    assert_eq!(
        types.get("exposition_test_latency_seconds").unwrap(),
        "histogram"
    );
    let buckets: Vec<(f64, f64)> = samples
        .iter()
        .filter(|s| s.name == "exposition_test_latency_seconds_bucket")
        .map(|s| {
            let le = s.labels.get("le").expect("bucket has le");
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().unwrap()
            };
            (le, s.value)
        })
        .collect();
    assert_eq!(buckets.len(), 4, "3 bounds + +Inf");
    for pair in buckets.windows(2) {
        assert!(pair[0].0 < pair[1].0, "le values ascending: {buckets:?}");
        assert!(
            pair[0].1 <= pair[1].1,
            "cumulative counts monotone: {buckets:?}"
        );
    }
    assert_eq!(buckets[0], (0.01, 1.0));
    assert_eq!(buckets[1], (0.1, 3.0));
    assert_eq!(buckets[2], (1.0, 4.0));
    assert_eq!(buckets.last().unwrap().1, 5.0);
    assert_eq!(find("exposition_test_latency_seconds_count", None), 5.0);
    let sum = find("exposition_test_latency_seconds_sum", None);
    assert!((sum - 5.605).abs() < 1e-9, "sum: {sum}");
}
