//! Request-scoped span tracing with tail-based sampling.
//!
//! A trace is started at the edge (the HTTP frontend) as a
//! [`TraceHandle`] and threaded — explicitly or via the thread-local
//! ambient context — through every layer that wants to attribute time:
//! dispatch queues, service workers, the engine's rounds, oracle calls,
//! the result store, and the remote-cache wire hop. Each layer records
//! [`SpanRecord`]s (name, parent, monotonic start offset, duration, and
//! a small typed attribute bag) against the shared handle.
//!
//! Sampling is **tail-based**: the keep/discard decision happens at
//! [`TraceHandle::finish`], once the outcome is known. Traces that are
//! forced (`?trace=1`), error (5xx), are shed (429/503), or exceed the
//! slow threshold are always kept; the rest are kept probabilistically
//! (1 in N). Kept traces are snapshotted into a lock-sharded bounded
//! ring buffer; discarded traces free their spans immediately.
//!
//! When tracing is disabled (`capacity == 0`), [`start_trace`] returns a
//! disabled handle after one relaxed atomic load, and every recording
//! call on it is a branch on `Option::None` — hot paths stay hot.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Span id of the synthesized root span of every trace.
pub const ROOT_SPAN: u64 = 1;

/// Hard cap on recorded spans per trace; further spans are counted in
/// `dropped_spans` but not stored, so a pathological request cannot
/// balloon memory.
pub const MAX_SPANS: usize = 512;

const SHARDS: usize = 8;
const DEFAULT_CAPACITY: usize = 256;
const DEFAULT_SLOW_NANOS: u64 = 1_000_000_000; // 1s
const DEFAULT_SAMPLE_ONE_IN: u64 = 16;

static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static SLOW_NANOS: AtomicU64 = AtomicU64::new(DEFAULT_SLOW_NANOS);
static SAMPLE_ONE_IN: AtomicU64 = AtomicU64::new(DEFAULT_SAMPLE_ONE_IN);
static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Reconfigures the tracer: ring capacity (0 disables tracing
/// entirely), the slow-trace threshold, and the probabilistic keep rate
/// (keep 1 in `sample_one_in` unsampled traces; 0 keeps none
/// probabilistically). Safe to call at any time; in-flight traces see
/// the new values at their finish.
pub fn configure(capacity: usize, slow: Duration, sample_one_in: u64) {
    CAPACITY.store(capacity, Relaxed);
    SLOW_NANOS.store(slow.as_nanos().min(u64::MAX as u128) as u64, Relaxed);
    SAMPLE_ONE_IN.store(sample_one_in, Relaxed);
}

/// The configured ring capacity; 0 means tracing is disabled.
pub fn capacity() -> usize {
    CAPACITY.load(Relaxed)
}

/// The configured slow-trace threshold.
pub fn slow_threshold() -> Duration {
    Duration::from_nanos(SLOW_NANOS.load(Relaxed))
}

fn trace_id_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let pid = std::process::id() as u64;
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0);
        (pid << 48) ^ nanos.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
    })
}

/// A typed attribute value attached to a span.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer attribute.
    U64(u64),
    /// Signed integer attribute.
    I64(i64),
    /// Floating-point attribute.
    F64(f64),
    /// Boolean attribute.
    Bool(bool),
    /// String attribute.
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> AttrValue {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> AttrValue {
        AttrValue::U64(v as u64)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> AttrValue {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> AttrValue {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> AttrValue {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> AttrValue {
        AttrValue::Bool(v)
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Str(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> AttrValue {
        AttrValue::Str(v.to_string())
    }
}

impl AttrValue {
    /// Renders the value as it appears in logs and JSON exports.
    pub fn render(&self) -> String {
        match self {
            AttrValue::U64(v) => v.to_string(),
            AttrValue::I64(v) => v.to_string(),
            AttrValue::F64(v) => format!("{v}"),
            AttrValue::Bool(v) => v.to_string(),
            AttrValue::Str(v) => v.clone(),
        }
    }
}

/// One completed span inside a trace.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Span id, unique within the trace; the root span is [`ROOT_SPAN`].
    pub id: u64,
    /// Parent span id; 0 for the root span.
    pub parent: u64,
    /// Operation name (static, from the span inventory).
    pub name: &'static str,
    /// Start offset from the trace start, in nanoseconds (monotonic).
    pub start_nanos: u64,
    /// Span duration in nanoseconds.
    pub duration_nanos: u64,
    /// Attribute bag, in recording order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// A finished, kept trace as stored in the ring buffer.
#[derive(Debug)]
pub struct CompletedTrace {
    /// Process-unique trace id.
    pub id: u64,
    /// Wall-clock start, nanoseconds since the Unix epoch.
    pub start_unix_nanos: u64,
    /// Total trace duration in nanoseconds.
    pub duration_nanos: u64,
    /// Final HTTP-style status of the traced request (0 if aborted
    /// before a response was produced).
    pub status: u16,
    /// Which tail-sampling rule kept this trace.
    pub kept_because: &'static str,
    /// Spans recorded past [`MAX_SPANS`] and therefore not stored.
    pub dropped_spans: u64,
    /// Nanoseconds attributed to queueing (dispatch + job queue wait).
    pub queue_nanos: u64,
    /// Nanoseconds attributed to the optimizer engine.
    pub engine_nanos: u64,
    /// Nanoseconds attributed to oracle calls (may exceed the engine
    /// span when oracle calls run in parallel).
    pub oracle_nanos: u64,
    /// Nanoseconds attributed to result-store and remote-cache I/O.
    pub store_nanos: u64,
    /// All spans, root (id 1) first, then in completion order.
    pub spans: Vec<SpanRecord>,
}

impl CompletedTrace {
    /// The trace id rendered as the canonical 16-hex-digit string used
    /// in URLs, headers, and logs.
    pub fn id_hex(&self) -> String {
        format!("{:016x}", self.id)
    }
}

/// Parses a canonical 16-hex-digit trace id back to its numeric form.
pub fn parse_id(hex: &str) -> Option<u64> {
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

struct ActiveTrace {
    id: u64,
    seq: u64,
    root_name: &'static str,
    start: Instant,
    start_unix_nanos: u64,
    forced: AtomicBool,
    status: AtomicU16,
    finished: AtomicBool,
    handler_done_nanos: AtomicU64,
    next_span: AtomicU64,
    dropped: AtomicU64,
    queue_nanos: AtomicU64,
    engine_nanos: AtomicU64,
    oracle_nanos: AtomicU64,
    store_nanos: AtomicU64,
    root_attrs: Mutex<Vec<(&'static str, AttrValue)>>,
    spans: Mutex<Vec<SpanRecord>>,
}

impl ActiveTrace {
    fn record(&self, span: SpanRecord) {
        match span.name {
            "dispatch_wait" | "job_queue_wait" => {
                self.queue_nanos.fetch_add(span.duration_nanos, Relaxed);
            }
            "engine" => {
                self.engine_nanos.fetch_add(span.duration_nanos, Relaxed);
            }
            "oracle_call" => {
                self.oracle_nanos.fetch_add(span.duration_nanos, Relaxed);
            }
            "store_get" | "store_put" | "remote_get" | "remote_put" => {
                self.store_nanos.fetch_add(span.duration_nanos, Relaxed);
            }
            _ => {}
        }
        let mut spans = self.spans.lock().expect("trace span list poisoned");
        if spans.len() >= MAX_SPANS {
            self.dropped.fetch_add(1, Relaxed);
            return;
        }
        spans.push(span);
    }
}

/// A handle on an in-flight trace. Cheap to clone (one `Arc` bump) and
/// inert when tracing is disabled: every method short-circuits on the
/// `None` inner.
#[derive(Clone)]
pub struct TraceHandle {
    inner: Option<Arc<ActiveTrace>>,
}

/// Starts a new trace whose root span is named `root_name`. Returns a
/// disabled (no-op) handle when the configured capacity is 0 — the cost
/// in that case is one relaxed atomic load.
pub fn start_trace(root_name: &'static str) -> TraceHandle {
    if CAPACITY.load(Relaxed) == 0 {
        return TraceHandle { inner: None };
    }
    let seq = TRACE_SEQ.fetch_add(1, Relaxed);
    let id = trace_id_seed() ^ seq.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ (seq << 1) | 1;
    new_trace(root_name, id, seq)
}

/// Starts a trace that *joins* an existing distributed trace id — the
/// remote-cache server joining the requesting replica's trace, so both
/// sides' spans share one id. Disabled-capacity behaviour matches
/// [`start_trace`].
pub fn start_trace_with_id(root_name: &'static str, id: u64) -> TraceHandle {
    if CAPACITY.load(Relaxed) == 0 {
        return TraceHandle { inner: None };
    }
    let seq = TRACE_SEQ.fetch_add(1, Relaxed);
    new_trace(root_name, id, seq)
}

fn new_trace(root_name: &'static str, id: u64, seq: u64) -> TraceHandle {
    let start_unix_nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(0);
    TraceHandle {
        inner: Some(Arc::new(ActiveTrace {
            id,
            seq,
            root_name,
            start: Instant::now(),
            start_unix_nanos,
            forced: AtomicBool::new(false),
            status: AtomicU16::new(0),
            finished: AtomicBool::new(false),
            handler_done_nanos: AtomicU64::new(0),
            next_span: AtomicU64::new(ROOT_SPAN + 1),
            dropped: AtomicU64::new(0),
            queue_nanos: AtomicU64::new(0),
            engine_nanos: AtomicU64::new(0),
            oracle_nanos: AtomicU64::new(0),
            store_nanos: AtomicU64::new(0),
            root_attrs: Mutex::new(Vec::new()),
            spans: Mutex::new(Vec::new()),
        })),
    }
}

/// Returns a disabled handle: all recording calls are no-ops.
pub fn disabled() -> TraceHandle {
    TraceHandle { inner: None }
}

impl TraceHandle {
    /// Whether the handle is recording (tracing enabled at start time).
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace id, or `None` when disabled.
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|t| t.id)
    }

    /// The canonical 16-hex trace id, or `None` when disabled.
    pub fn id_hex(&self) -> Option<String> {
        self.inner.as_ref().map(|t| format!("{:016x}", t.id))
    }

    /// Forces the tail-sampling decision to *keep* (e.g. `?trace=1`).
    pub fn force(&self) {
        if let Some(t) = &self.inner {
            t.forced.store(true, Relaxed);
        }
    }

    /// Whether [`Self::force`] was called (false when disabled). Carried
    /// across the remote-store wire so a forced client trace also pins
    /// the server-side trace it joins.
    pub fn is_forced(&self) -> bool {
        self.inner.as_ref().is_some_and(|t| t.forced.load(Relaxed))
    }

    /// Nanoseconds elapsed since the trace started (monotonic); 0 when
    /// disabled. Use as the `start` argument of [`Self::span_closed`].
    pub fn now_nanos(&self) -> u64 {
        match &self.inner {
            Some(t) => t.start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            None => 0,
        }
    }

    /// Attaches an attribute to the (synthesized) root span.
    pub fn root_attr(&self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(t) = &self.inner {
            t.root_attrs
                .lock()
                .expect("trace attrs poisoned")
                .push((key, value.into()));
        }
    }

    /// Opens a live span under `parent`; the span is recorded when the
    /// returned guard drops.
    pub fn span(&self, name: &'static str, parent: u64) -> SpanGuard {
        match &self.inner {
            Some(t) => SpanGuard {
                trace: Some(Arc::clone(t)),
                id: t.next_span.fetch_add(1, Relaxed),
                parent,
                name,
                start_nanos: t.start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                started: Instant::now(),
                attrs: Vec::new(),
            },
            None => SpanGuard {
                trace: None,
                id: 0,
                parent,
                name,
                start_nanos: 0,
                started: Instant::now(),
                attrs: Vec::new(),
            },
        }
    }

    /// Records an already-measured interval as a closed span and returns
    /// its id (0 when disabled). `start_nanos` is an offset from the
    /// trace start, as produced by [`Self::now_nanos`].
    pub fn span_closed(
        &self,
        name: &'static str,
        parent: u64,
        start_nanos: u64,
        duration_nanos: u64,
        attrs: Vec<(&'static str, AttrValue)>,
    ) -> u64 {
        match &self.inner {
            Some(t) => {
                let id = t.next_span.fetch_add(1, Relaxed);
                t.record(SpanRecord {
                    id,
                    parent,
                    name,
                    start_nanos,
                    duration_nanos,
                    attrs,
                });
                id
            }
            None => 0,
        }
    }

    /// Records the response status ahead of [`Self::finish`] — set where
    /// the response is produced, read where the trace is finished (the
    /// two can be different threads on the evented frontend).
    pub fn set_status(&self, status: u16) {
        if let Some(t) = &self.inner {
            t.status.store(status, Relaxed);
        }
    }

    /// The status recorded by [`Self::set_status`] (0 if none yet).
    pub fn status(&self) -> u16 {
        match &self.inner {
            Some(t) => t.status.load(Relaxed),
            None => 0,
        }
    }

    /// Marks the instant the request handler produced its response, so
    /// the frontend can later attribute write-flush time separately.
    pub fn mark_handler_done(&self) {
        if let Some(t) = &self.inner {
            let now = t.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            t.handler_done_nanos.store(now.max(1), Relaxed);
        }
    }

    /// Offset (nanos since trace start) recorded by
    /// [`Self::mark_handler_done`], or `None` if never marked.
    pub fn handler_done_nanos(&self) -> Option<u64> {
        match &self.inner {
            Some(t) => match t.handler_done_nanos.load(Relaxed) {
                0 => None,
                n => Some(n),
            },
            None => None,
        }
    }

    /// Per-category time split accumulated so far:
    /// `(queue, engine, oracle, store)` nanoseconds. Zeros when
    /// disabled.
    pub fn splits(&self) -> (u64, u64, u64, u64) {
        match &self.inner {
            Some(t) => (
                t.queue_nanos.load(Relaxed),
                t.engine_nanos.load(Relaxed),
                t.oracle_nanos.load(Relaxed),
                t.store_nanos.load(Relaxed),
            ),
            None => (0, 0, 0, 0),
        }
    }

    /// Finishes the trace with the request's final status and applies
    /// the tail-sampling decision. Idempotent: the first call wins.
    /// Returns `true` if the trace was kept.
    pub fn finish(&self, status: u16) -> bool {
        let Some(t) = &self.inner else { return false };
        if t.finished.swap(true, Relaxed) {
            return false;
        }
        t.status.store(status, Relaxed);
        let elapsed = t.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let sample_n = SAMPLE_ONE_IN.load(Relaxed);
        let kept_because = if t.forced.load(Relaxed) {
            Some("forced")
        } else if status >= 500 && status != 503 {
            Some("error")
        } else if status == 429 || status == 503 {
            Some("shed")
        } else if status == 0 {
            Some("aborted")
        } else if elapsed >= SLOW_NANOS.load(Relaxed) {
            Some("slow")
        } else if sample_n != 0 && t.seq % sample_n == 0 {
            Some("probabilistic")
        } else {
            None
        };
        let Some(kept_because) = kept_because else {
            traces_discarded().inc();
            return false;
        };
        let mut spans = {
            let mut locked = t.spans.lock().expect("trace span list poisoned");
            std::mem::take(&mut *locked)
        };
        let root_attrs = {
            let mut locked = t.root_attrs.lock().expect("trace attrs poisoned");
            std::mem::take(&mut *locked)
        };
        let mut all = Vec::with_capacity(spans.len() + 1);
        all.push(SpanRecord {
            id: ROOT_SPAN,
            parent: 0,
            name: t.root_name,
            start_nanos: 0,
            duration_nanos: elapsed,
            attrs: root_attrs,
        });
        all.append(&mut spans);
        let completed = Arc::new(CompletedTrace {
            id: t.id,
            start_unix_nanos: t.start_unix_nanos,
            duration_nanos: elapsed,
            status,
            kept_because,
            dropped_spans: t.dropped.load(Relaxed),
            queue_nanos: t.queue_nanos.load(Relaxed),
            engine_nanos: t.engine_nanos.load(Relaxed),
            oracle_nanos: t.oracle_nanos.load(Relaxed),
            store_nanos: t.store_nanos.load(Relaxed),
            spans: all,
        });
        ring().push(completed);
        traces_kept().inc();
        true
    }
}

/// A live span: records itself into the trace when dropped.
pub struct SpanGuard {
    trace: Option<Arc<ActiveTrace>>,
    id: u64,
    parent: u64,
    name: &'static str,
    start_nanos: u64,
    started: Instant,
    attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanGuard {
    /// This span's id, for use as a child's parent (0 when disabled).
    pub fn id(&self) -> u64 {
        if self.trace.is_some() {
            self.id
        } else {
            0
        }
    }

    /// Attaches an attribute to the span.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if self.trace.is_some() {
            self.attrs.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(t) = self.trace.take() {
            t.record(SpanRecord {
                id: self.id,
                parent: self.parent,
                name: self.name,
                start_nanos: self.start_nanos,
                duration_nanos: self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                attrs: std::mem::take(&mut self.attrs),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Completed-trace ring buffer
// ---------------------------------------------------------------------------

struct Ring {
    shards: Vec<Mutex<VecDeque<Arc<CompletedTrace>>>>,
}

impl Ring {
    fn push(&self, trace: Arc<CompletedTrace>) {
        let cap = CAPACITY.load(Relaxed);
        if cap == 0 {
            return;
        }
        let per_shard = (cap / SHARDS).max(1);
        let shard = (trace.id as usize) % SHARDS;
        let mut q = self.shards[shard].lock().expect("trace ring poisoned");
        while q.len() >= per_shard {
            q.pop_front();
        }
        q.push_back(trace);
    }
}

fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| {
        let mut shards = Vec::with_capacity(SHARDS);
        shards.resize_with(SHARDS, || Mutex::new(VecDeque::new()));
        Ring { shards }
    })
}

/// The most recent kept traces, newest first, at most `limit`.
pub fn recent(limit: usize) -> Vec<Arc<CompletedTrace>> {
    let mut all: Vec<Arc<CompletedTrace>> = Vec::new();
    for shard in &ring().shards {
        let q = shard.lock().expect("trace ring poisoned");
        all.extend(q.iter().cloned());
    }
    all.sort_by(|a, b| {
        b.start_unix_nanos
            .cmp(&a.start_unix_nanos)
            .then(b.id.cmp(&a.id))
    });
    all.truncate(limit);
    all
}

/// Looks up a kept trace by id.
pub fn get(id: u64) -> Option<Arc<CompletedTrace>> {
    let shard = (id as usize) % SHARDS;
    let q = ring().shards[shard].lock().expect("trace ring poisoned");
    q.iter().find(|t| t.id == id).cloned()
}

/// Empties the ring buffer (tests and benchmarks).
pub fn clear() {
    for shard in &ring().shards {
        shard.lock().expect("trace ring poisoned").clear();
    }
}

// ---------------------------------------------------------------------------
// Ambient (thread-local) context
// ---------------------------------------------------------------------------

/// An ambient trace position: a handle plus the span id new child spans
/// should parent under.
#[derive(Clone)]
pub struct TraceCtx {
    /// The trace being recorded into (possibly disabled).
    pub handle: TraceHandle,
    /// Parent span id for spans opened in this context.
    pub parent: u64,
}

impl TraceCtx {
    /// A disabled context (no trace).
    pub fn disabled() -> TraceCtx {
        TraceCtx {
            handle: disabled(),
            parent: ROOT_SPAN,
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<TraceCtx>> = const { RefCell::new(None) };
}

/// The ambient trace context installed on this thread, or a disabled
/// context if none.
pub fn current() -> TraceCtx {
    CURRENT
        .with(|c| c.borrow().clone())
        .unwrap_or_else(TraceCtx::disabled)
}

/// Runs `f` with `ctx` installed as this thread's ambient context,
/// restoring the previous context afterwards (panic-safe).
pub fn with_active<R>(ctx: &TraceCtx, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<TraceCtx>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
    let prev = CURRENT.with(|c| c.borrow_mut().replace(ctx.clone()));
    let _restore = Restore(prev);
    f()
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

fn traces_kept() -> &'static crate::Counter {
    static HANDLE: OnceLock<Arc<crate::Counter>> = OnceLock::new();
    HANDLE.get_or_init(|| {
        crate::counter(
            "popqc_traces_kept_total",
            "Traces kept by the tail-sampling decision.",
        )
    })
}

fn traces_discarded() -> &'static crate::Counter {
    static HANDLE: OnceLock<Arc<crate::Counter>> = OnceLock::new();
    HANDLE.get_or_init(|| {
        crate::counter(
            "popqc_traces_discarded_total",
            "Traces discarded by the tail-sampling decision.",
        )
    })
}

/// Registers the tracer's metric families so they appear in the first
/// scrape even before any trace finishes.
pub fn describe_metrics() {
    traces_kept();
    traces_discarded();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests in this module mutate the global tracer config and ring, so
    // they must not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracer_hands_out_inert_handles() {
        let _g = lock();
        configure(0, Duration::from_secs(1), 16);
        let t = start_trace("request");
        assert!(!t.enabled());
        assert!(t.id_hex().is_none());
        let mut s = t.span("engine", ROOT_SPAN);
        s.attr("width", 4u64);
        assert_eq!(s.id(), 0);
        drop(s);
        assert!(!t.finish(200));
        configure(
            DEFAULT_CAPACITY,
            Duration::from_secs(1),
            DEFAULT_SAMPLE_ONE_IN,
        );
    }

    #[test]
    fn forced_error_shed_and_slow_traces_are_always_kept() {
        let _g = lock();
        configure(64, Duration::from_millis(0), 0); // everything is "slow"
        clear();
        let t = start_trace("request");
        assert!(t.finish(200));
        assert_eq!(get(t.id().unwrap()).unwrap().kept_because, "slow");

        configure(64, Duration::from_secs(3600), 0); // nothing is slow
        let forced = start_trace("request");
        forced.force();
        assert!(forced.finish(200));
        assert_eq!(get(forced.id().unwrap()).unwrap().kept_because, "forced");

        let err = start_trace("request");
        assert!(err.finish(500));
        assert_eq!(get(err.id().unwrap()).unwrap().kept_because, "error");

        let shed = start_trace("request");
        assert!(shed.finish(503));
        assert_eq!(get(shed.id().unwrap()).unwrap().kept_because, "shed");

        let fast = start_trace("request");
        assert!(!fast.finish(200), "unforced fast 200 must be discarded");
        assert!(get(fast.id().unwrap()).is_none());
        configure(
            DEFAULT_CAPACITY,
            Duration::from_secs(1),
            DEFAULT_SAMPLE_ONE_IN,
        );
    }

    #[test]
    fn finish_is_idempotent_and_first_status_wins() {
        let _g = lock();
        configure(64, Duration::from_secs(3600), 0);
        clear();
        let t = start_trace("request");
        t.force();
        assert!(t.finish(200));
        assert!(!t.finish(500));
        assert_eq!(get(t.id().unwrap()).unwrap().status, 200);
        configure(
            DEFAULT_CAPACITY,
            Duration::from_secs(1),
            DEFAULT_SAMPLE_ONE_IN,
        );
    }

    #[test]
    fn spans_reconstruct_a_parent_child_tree() {
        let _g = lock();
        configure(64, Duration::from_secs(3600), 0);
        clear();
        let t = start_trace("request");
        t.force();
        t.root_attr("method", "POST");
        let engine_id = {
            let mut engine = t.span("engine", ROOT_SPAN);
            engine.attr("width", 4u64);
            let mut oracle = t.span("oracle_call", engine.id());
            oracle.attr("segments", 2u64);
            let oracle_parent = oracle.parent;
            drop(oracle);
            assert_eq!(oracle_parent, engine.id());
            engine.id()
        };
        t.span_closed("job_queue_wait", ROOT_SPAN, 0, 1_000, Vec::new());
        assert!(t.finish(200));
        let kept = get(t.id().unwrap()).unwrap();
        assert_eq!(kept.spans[0].id, ROOT_SPAN);
        assert_eq!(kept.spans[0].parent, 0);
        assert_eq!(kept.spans[0].name, "request");
        assert_eq!(kept.spans[0].attrs[0].0, "method");
        let oracle = kept.spans.iter().find(|s| s.name == "oracle_call").unwrap();
        assert_eq!(oracle.parent, engine_id);
        let engine = kept.spans.iter().find(|s| s.name == "engine").unwrap();
        assert_eq!(engine.parent, ROOT_SPAN);
        // Every non-root span's parent exists in the trace.
        for span in &kept.spans {
            if span.id != ROOT_SPAN {
                assert!(kept.spans.iter().any(|p| p.id == span.parent));
            }
        }
        assert_eq!(kept.queue_nanos, 1_000);
        assert!(kept.engine_nanos > 0);
        assert!(kept.oracle_nanos > 0);
        configure(
            DEFAULT_CAPACITY,
            Duration::from_secs(1),
            DEFAULT_SAMPLE_ONE_IN,
        );
    }

    #[test]
    fn ring_evicts_oldest_first_per_shard() {
        let _g = lock();
        configure(SHARDS, Duration::from_millis(0), 0); // per-shard cap = 1, all slow
        clear();
        let first = start_trace("request");
        let shard = first.id().unwrap() % SHARDS as u64;
        assert!(first.finish(200));
        // Drive more traces until one lands in the same shard, which
        // must evict `first`.
        let mut evictor = None;
        for _ in 0..64 {
            let t = start_trace("request");
            let id = t.id().unwrap();
            assert!(t.finish(200));
            if id % SHARDS as u64 == shard && id != first.id().unwrap() {
                evictor = Some(id);
                break;
            }
        }
        let evictor = evictor.expect("no trace landed in the same shard");
        assert!(get(first.id().unwrap()).is_none(), "oldest must be evicted");
        assert!(get(evictor).is_some());
        configure(
            DEFAULT_CAPACITY,
            Duration::from_secs(1),
            DEFAULT_SAMPLE_ONE_IN,
        );
    }

    #[test]
    fn recent_returns_newest_first() {
        let _g = lock();
        configure(64, Duration::from_millis(0), 0);
        clear();
        let a = start_trace("request");
        a.finish(200);
        std::thread::sleep(Duration::from_millis(2));
        let b = start_trace("request");
        b.finish(200);
        let listed = recent(10);
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0].id, b.id().unwrap());
        assert_eq!(listed[1].id, a.id().unwrap());
        assert_eq!(recent(1).len(), 1);
        configure(
            DEFAULT_CAPACITY,
            Duration::from_secs(1),
            DEFAULT_SAMPLE_ONE_IN,
        );
    }

    #[test]
    fn ambient_context_installs_and_restores() {
        let _g = lock();
        configure(64, Duration::from_secs(3600), 0);
        let t = start_trace("request");
        let ctx = TraceCtx {
            handle: t.clone(),
            parent: ROOT_SPAN,
        };
        assert!(!current().handle.enabled());
        with_active(&ctx, || {
            assert!(current().handle.enabled());
            assert_eq!(current().handle.id(), t.id());
            let inner = TraceCtx {
                handle: t.clone(),
                parent: 7,
            };
            with_active(&inner, || assert_eq!(current().parent, 7));
            assert_eq!(current().parent, ROOT_SPAN);
        });
        assert!(!current().handle.enabled());
        configure(
            DEFAULT_CAPACITY,
            Duration::from_secs(1),
            DEFAULT_SAMPLE_ONE_IN,
        );
    }

    #[test]
    fn span_cap_counts_dropped_spans() {
        let _g = lock();
        configure(64, Duration::from_secs(3600), 0);
        clear();
        let t = start_trace("request");
        t.force();
        for _ in 0..(MAX_SPANS + 5) {
            t.span_closed("round", ROOT_SPAN, 0, 1, Vec::new());
        }
        assert!(t.finish(200));
        let kept = get(t.id().unwrap()).unwrap();
        assert_eq!(kept.spans.len(), MAX_SPANS + 1); // + synthesized root
        assert_eq!(kept.dropped_spans, 5);
        configure(
            DEFAULT_CAPACITY,
            Duration::from_secs(1),
            DEFAULT_SAMPLE_ONE_IN,
        );
    }

    #[test]
    fn trace_ids_parse_and_roundtrip() {
        let _g = lock();
        configure(64, Duration::from_secs(3600), 0);
        let t = start_trace("request");
        let hex = t.id_hex().unwrap();
        assert_eq!(hex.len(), 16);
        assert_eq!(parse_id(&hex), t.id());
        assert_eq!(parse_id("nope"), None);
        assert_eq!(parse_id(""), None);
        configure(
            DEFAULT_CAPACITY,
            Duration::from_secs(1),
            DEFAULT_SAMPLE_ONE_IN,
        );
    }
}
