//! The instrument types and the process-wide registry behind them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// A monotonically increasing counter. `inc`/`add` are a single relaxed
/// `fetch_add` — safe on any hot path.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// A settable instantaneous value (queue depth, pool size, resident
/// bytes). Signed so transient inc/dec imbalance cannot wrap to 2^64 in
/// a scrape.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Relaxed);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.value.fetch_sub(1, Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Relaxed)
    }
}

/// A fixed-bucket histogram. The bounds are chosen at registration and
/// never change; each observation is one relaxed `fetch_add` into the
/// matching bucket cell plus a CAS-loop add into the bit-packed `f64`
/// sum, so the hot path takes no locks and allocates nothing.
pub struct Histogram {
    /// Upper bounds, strictly increasing; the implicit `+Inf` bucket is
    /// `cells[bounds.len()]`.
    bounds: Vec<f64>,
    /// Per-bucket observation counts (NOT cumulative; the encoder
    /// accumulates so the rendered buckets are monotone by construction).
    cells: Vec<AtomicU64>,
    /// Sum of observed values, stored as `f64::to_bits`.
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let mut cells = Vec::with_capacity(bounds.len() + 1);
        cells.resize_with(bounds.len() + 1, AtomicU64::default);
        Histogram {
            bounds: bounds.to_vec(),
            cells,
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| v > b);
        self.cells[idx].fetch_add(1, Relaxed);
        let mut cur = self.sum_bits.load(Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .sum_bits
                .compare_exchange_weak(cur, next, Relaxed, Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records a wall-clock duration in seconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Starts a timer that observes its elapsed seconds when dropped.
    pub fn start_timer(&self) -> HistogramTimer<'_> {
        HistogramTimer {
            histogram: self,
            start: Instant::now(),
        }
    }

    /// The registered upper bounds (without `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Point-in-time `(cumulative bucket counts incl. +Inf, sum, count)`.
    /// Cumulation happens here, over one pass of the cells, so the
    /// returned buckets are monotone even under concurrent observation.
    pub fn snapshot(&self) -> (Vec<u64>, f64, u64) {
        let mut cumulative = Vec::with_capacity(self.cells.len());
        let mut total = 0u64;
        for cell in &self.cells {
            total += cell.load(Relaxed);
            cumulative.push(total);
        }
        (
            cumulative,
            f64::from_bits(self.sum_bits.load(Relaxed)),
            total,
        )
    }

    /// Total observations so far.
    pub fn count(&self) -> u64 {
        self.cells.iter().map(|c| c.load(Relaxed)).sum()
    }
}

/// Observes the elapsed seconds since [`Histogram::start_timer`] on drop.
pub struct HistogramTimer<'a> {
    histogram: &'a Histogram,
    start: Instant,
}

impl Drop for HistogramTimer<'_> {
    fn drop(&mut self) {
        self.histogram.observe_duration(self.start.elapsed());
    }
}

// ---------------------------------------------------------------------------
// Families and the registry
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

pub(crate) enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One metric family: a name, a kind, and one child instrument per
/// label-value tuple (exactly one child, under the empty tuple, for
/// unlabeled metrics).
pub(crate) struct Family {
    pub(crate) name: String,
    pub(crate) help: String,
    pub(crate) kind: Kind,
    pub(crate) label_names: Vec<String>,
    /// Histogram bounds; empty for the other kinds.
    bounds: Vec<f64>,
    pub(crate) children: RwLock<BTreeMap<Vec<String>, Instrument>>,
}

impl Family {
    /// The child for `values`, interned on first use. Subsequent updates
    /// through the returned handle never touch the family lock.
    fn child(&self, values: &[&str]) -> Instrument {
        assert_eq!(
            values.len(),
            self.label_names.len(),
            "metric {} takes {} label value(s), got {}",
            self.name,
            self.label_names.len(),
            values.len()
        );
        let key: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        if let Some(found) = self
            .children
            .read()
            .expect("metric family poisoned")
            .get(&key)
        {
            return found.clone_handle();
        }
        let mut children = self.children.write().expect("metric family poisoned");
        children
            .entry(key)
            .or_insert_with(|| match self.kind {
                Kind::Counter => Instrument::Counter(Arc::new(Counter::default())),
                Kind::Gauge => Instrument::Gauge(Arc::new(Gauge::default())),
                Kind::Histogram => Instrument::Histogram(Arc::new(Histogram::new(&self.bounds))),
            })
            .clone_handle()
    }
}

impl Instrument {
    fn clone_handle(&self) -> Instrument {
        match self {
            Instrument::Counter(c) => Instrument::Counter(Arc::clone(c)),
            Instrument::Gauge(g) => Instrument::Gauge(Arc::clone(g)),
            Instrument::Histogram(h) => Instrument::Histogram(Arc::clone(h)),
        }
    }
}

pub(crate) struct Registry {
    pub(crate) families: RwLock<BTreeMap<String, Arc<Family>>>,
}

/// The process-wide registry every registration function and [`render`]
/// (crate::render) share.
pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        families: RwLock::new(BTreeMap::new()),
    })
}

/// Sanity bound on names so the encoder can never emit an unparseable
/// series: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn check_name(name: &str) {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    assert!(
        head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "invalid metric name `{name}`"
    );
}

/// Fetches or creates the family `name`. Idempotent for an identical
/// shape; a name re-registered with a different kind, label set, or
/// bucket bounds is a programming error and panics.
fn family(name: &str, help: &str, kind: Kind, label_names: &[&str], bounds: &[f64]) -> Arc<Family> {
    check_name(name);
    for label in label_names {
        check_name(label);
    }
    let reg = registry();
    if let Some(found) = reg
        .families
        .read()
        .expect("metric registry poisoned")
        .get(name)
    {
        let existing = Arc::clone(found);
        assert!(
            existing.kind == kind
                && existing.label_names == label_names
                && existing.bounds == bounds,
            "metric `{name}` re-registered with a different shape"
        );
        return existing;
    }
    let mut families = reg.families.write().expect("metric registry poisoned");
    Arc::clone(families.entry(name.to_string()).or_insert_with(|| {
        Arc::new(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            label_names: label_names.iter().map(|l| l.to_string()).collect(),
            bounds: bounds.to_vec(),
            children: RwLock::new(BTreeMap::new()),
        })
    }))
}

// ---------------------------------------------------------------------------
// Registration surface
// ---------------------------------------------------------------------------

/// Registers (or fetches) the unlabeled counter `name`.
pub fn counter(name: &str, help: &str) -> Arc<Counter> {
    match family(name, help, Kind::Counter, &[], &[]).child(&[]) {
        Instrument::Counter(c) => c,
        _ => unreachable!("kind checked at registration"),
    }
}

/// Registers (or fetches) the unlabeled gauge `name`.
pub fn gauge(name: &str, help: &str) -> Arc<Gauge> {
    match family(name, help, Kind::Gauge, &[], &[]).child(&[]) {
        Instrument::Gauge(g) => g,
        _ => unreachable!("kind checked at registration"),
    }
}

/// Registers (or fetches) the unlabeled histogram `name` with the given
/// strictly increasing bucket bounds (`+Inf` is implicit).
pub fn histogram(name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
    match family(name, help, Kind::Histogram, &[], bounds).child(&[]) {
        Instrument::Histogram(h) => h,
        _ => unreachable!("kind checked at registration"),
    }
}

/// A labeled counter family; see [`counter_vec`].
pub struct CounterVec {
    family: Arc<Family>,
}

impl CounterVec {
    /// The child counter for `values` (one per label in declaration
    /// order), interned on first use.
    pub fn with(&self, values: &[&str]) -> Arc<Counter> {
        match self.family.child(values) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked at registration"),
        }
    }
}

/// A labeled gauge family; see [`gauge_vec`].
pub struct GaugeVec {
    family: Arc<Family>,
}

impl GaugeVec {
    /// The child gauge for `values`, interned on first use.
    pub fn with(&self, values: &[&str]) -> Arc<Gauge> {
        match self.family.child(values) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked at registration"),
        }
    }
}

/// A labeled histogram family; see [`histogram_vec`].
pub struct HistogramVec {
    family: Arc<Family>,
}

impl HistogramVec {
    /// The child histogram for `values`, interned on first use.
    pub fn with(&self, values: &[&str]) -> Arc<Histogram> {
        match self.family.child(values) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked at registration"),
        }
    }
}

/// Registers (or fetches) the counter family `name` with `label_names`.
pub fn counter_vec(name: &str, help: &str, label_names: &[&str]) -> CounterVec {
    CounterVec {
        family: family(name, help, Kind::Counter, label_names, &[]),
    }
}

/// Registers (or fetches) the gauge family `name` with `label_names`.
pub fn gauge_vec(name: &str, help: &str, label_names: &[&str]) -> GaugeVec {
    GaugeVec {
        family: family(name, help, Kind::Gauge, label_names, &[]),
    }
}

/// Registers (or fetches) the histogram family `name` with `label_names`
/// and the given bucket bounds.
pub fn histogram_vec(name: &str, help: &str, label_names: &[&str], bounds: &[f64]) -> HistogramVec {
    HistogramVec {
        family: family(name, help, Kind::Histogram, label_names, bounds),
    }
}

// ---------------------------------------------------------------------------
// Static-handle macros
// ---------------------------------------------------------------------------

/// Registers an unlabeled counter once and yields a `&'static Counter`:
/// the hot-path increment is a relaxed atomic add with no registry
/// lookup.
#[macro_export]
macro_rules! static_counter {
    ($name:expr, $help:expr $(,)?) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::counter($name, $help))
    }};
}

/// Registers an unlabeled gauge once and yields a `&'static Gauge`.
#[macro_export]
macro_rules! static_gauge {
    ($name:expr, $help:expr $(,)?) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::gauge($name, $help))
    }};
}

/// Registers an unlabeled histogram once and yields a
/// `&'static Histogram`.
#[macro_export]
macro_rules! static_histogram {
    ($name:expr, $help:expr, $bounds:expr $(,)?) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::histogram($name, $help, $bounds))
    }};
}

/// Registers a counter family once and yields a `&'static CounterVec`.
/// Resolving a child takes the family read lock; hold the returned `Arc`
/// where a label value repeats on a hot path.
#[macro_export]
macro_rules! static_counter_vec {
    ($name:expr, $help:expr, $labels:expr $(,)?) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::CounterVec> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::counter_vec($name, $help, $labels))
    }};
}

/// Registers a gauge family once and yields a `&'static GaugeVec`.
#[macro_export]
macro_rules! static_gauge_vec {
    ($name:expr, $help:expr, $labels:expr $(,)?) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::GaugeVec> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::gauge_vec($name, $help, $labels))
    }};
}

/// Registers a histogram family once and yields a
/// `&'static HistogramVec`.
#[macro_export]
macro_rules! static_histogram_vec {
    ($name:expr, $help:expr, $labels:expr, $bounds:expr $(,)?) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::HistogramVec> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::histogram_vec($name, $help, $labels, $bounds))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_move() {
        let c = counter("qobs_test_counter_total", "test");
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        // Re-registration returns the SAME cell.
        assert_eq!(counter("qobs_test_counter_total", "test").get(), 3);

        let g = gauge("qobs_test_gauge", "test");
        g.set(5);
        g.dec();
        g.add(-3);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = histogram("qobs_test_histogram", "test", &[0.1, 1.0, 10.0]);
        h.observe(0.05); // <= 0.1
        h.observe(0.1); // <= 0.1 (bounds are inclusive)
        h.observe(0.5); // <= 1.0
        h.observe(100.0); // +Inf
        let (buckets, sum, count) = h.snapshot();
        assert_eq!(buckets, vec![2, 3, 3, 4]);
        assert_eq!(count, 4);
        assert!((sum - 100.65).abs() < 1e-9);
    }

    #[test]
    fn labeled_families_intern_children() {
        let v = counter_vec("qobs_test_labeled_total", "test", &["oracle"]);
        v.with(&["a"]).inc();
        v.with(&["a"]).inc();
        v.with(&["b"]).inc();
        assert_eq!(v.with(&["a"]).get(), 2);
        assert_eq!(v.with(&["b"]).get(), 1);
    }

    #[test]
    #[should_panic(expected = "different shape")]
    fn kind_conflicts_are_programming_errors() {
        counter("qobs_test_conflict", "test");
        gauge("qobs_test_conflict", "test");
    }
}
