//! The leveled structured-logging facade: `key=value` lines on stderr,
//! filtered by a process-wide level with per-target overrides.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering::Relaxed};
use std::sync::{OnceLock, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// The environment variable the filter is read from (`POPQC_LOG`).
pub const LOG_ENV_VAR: &str = "POPQC_LOG";

/// Log severity, most to least severe. The filter keeps everything at or
/// above (≤ in this ordering) the configured level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed and was not retried.
    Error = 0,
    /// Something degraded but the process carries on.
    Warn = 1,
    /// Normal operational events (startup, shutdown, per-request access
    /// lines). The default.
    Info = 2,
    /// High-volume diagnostics.
    Debug = 3,
}

impl Level {
    /// Every accepted level name, in severity order — the list the CLI
    /// refusal prints.
    pub const NAMES: [&'static str; 4] = ["error", "warn", "info", "debug"];

    /// The lowercase name rendered into log lines.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s {
            "error" => Ok(Level::Error),
            "warn" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!(
                "unknown log level `{other}` (expected one of: {})",
                Level::NAMES.join(", ")
            )),
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The default level as a `u8` (starts at `Info`).
static DEFAULT_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
/// Fast-path flag: `log_enabled` only takes the override lock when some
/// `target=level` override exists.
static HAS_OVERRIDES: AtomicBool = AtomicBool::new(false);

fn overrides() -> &'static RwLock<Vec<(String, Level)>> {
    static OVERRIDES: OnceLock<RwLock<Vec<(String, Level)>>> = OnceLock::new();
    OVERRIDES.get_or_init(|| RwLock::new(Vec::new()))
}

/// Installs the filter described by `spec`: a comma-separated list where
/// a bare level sets the default and `target=level` overrides one target
/// (and its `::` descendants), e.g. `info,qexec=debug`. The most
/// specific (longest) matching target wins. Returns the `--log-level`
/// refusal message on an unknown level name.
pub fn set_log_filter(spec: &str) -> Result<(), String> {
    let mut default = Level::Info;
    let mut targets: Vec<(String, Level)> = Vec::new();
    for item in spec.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        match item.split_once('=') {
            None => default = item.parse()?,
            Some((target, level)) => {
                let target = target.trim();
                if target.is_empty() {
                    return Err(format!("empty target in log filter item `{item}`"));
                }
                targets.push((target.to_string(), level.trim().parse()?));
            }
        }
    }
    // Longest first, so the first match in `log_enabled` is the most
    // specific one.
    targets.sort_by_key(|t| std::cmp::Reverse(t.0.len()));
    let mut guard = overrides().write().expect("log filter poisoned");
    DEFAULT_LEVEL.store(default as u8, Relaxed);
    HAS_OVERRIDES.store(!targets.is_empty(), Relaxed);
    *guard = targets;
    Ok(())
}

/// Installs the filter from `POPQC_LOG` if set; a missing or empty
/// variable keeps the defaults. Same error contract as
/// [`set_log_filter`].
pub fn set_log_filter_from_env() -> Result<(), String> {
    match std::env::var(LOG_ENV_VAR) {
        Ok(spec) if !spec.trim().is_empty() => set_log_filter(&spec),
        _ => Ok(()),
    }
}

/// Whether an event at `level` for `target` passes the active filter.
/// One relaxed load when no per-target overrides are installed.
pub fn log_enabled(level: Level, target: &str) -> bool {
    if HAS_OVERRIDES.load(Relaxed) {
        let guard = overrides().read().expect("log filter poisoned");
        for (prefix, max) in guard.iter() {
            if target == prefix
                || (target.len() > prefix.len()
                    && target.starts_with(prefix.as_str())
                    && target[prefix.len()..].starts_with("::"))
            {
                return level <= *max;
            }
        }
    }
    level <= Level::from_u8(DEFAULT_LEVEL.load(Relaxed))
}

/// Emits one formatted line to stderr. Callers go through the
/// [`log_error!`](crate::log_error)-family macros, which gate on
/// [`log_enabled`] first so disabled events never format their
/// arguments.
pub fn log_event(
    level: Level,
    target: &str,
    msg: &dyn std::fmt::Display,
    pairs: &[(&str, &dyn std::fmt::Display)],
) {
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    let mut line = format!(
        "ts={}.{:03} level={} target={} msg=",
        ts.as_secs(),
        ts.subsec_millis(),
        level.as_str(),
        target
    );
    push_value(&mut line, &msg.to_string());
    for (key, value) in pairs {
        line.push(' ');
        line.push_str(key);
        line.push('=');
        push_value(&mut line, &value.to_string());
    }
    // Not `eprintln!`: that macro panics when the write fails, and a
    // vanished stderr (closed pipe on a supervised process) must lose
    // the log line, not crash the request that emitted it.
    let _ = writeln!(std::io::stderr().lock(), "{line}");
}

/// Appends a value, quoting only when the bare form would be ambiguous
/// (whitespace, quotes, `=`, or empty). Bare values — numbers, ids,
/// URLs — stay grep-able without unquoting.
fn push_value(line: &mut String, value: &str) {
    let needs_quotes = value.is_empty()
        || value
            .chars()
            .any(|c| c.is_whitespace() || c == '"' || c == '=');
    if !needs_quotes {
        line.push_str(value);
        return;
    }
    line.push('"');
    for c in value.chars() {
        match c {
            '\\' => line.push_str("\\\\"),
            '"' => line.push_str("\\\""),
            '\n' => line.push_str("\\n"),
            other => line.push(other),
        }
    }
    line.push('"');
}

/// Shared expansion behind the level-named logging macros.
#[doc(hidden)]
#[macro_export]
macro_rules! __log_at {
    ($level:expr, target: $target:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::log_enabled($level, $target) {
            $crate::log_event(
                $level,
                $target,
                &$msg,
                &[$((stringify!($key), &$value as &dyn ::std::fmt::Display)),*],
            );
        }
    };
    ($level:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::__log_at!($level, target: module_path!(), $msg $(, $key = $value)*)
    };
}

/// Logs at [`Level::Error`]: `log_error!("msg", key = value, ...)` or
/// `log_error!(target: "qsvc", "msg", ...)`.
#[macro_export]
macro_rules! log_error {
    ($($arg:tt)+) => { $crate::__log_at!($crate::Level::Error, $($arg)+) };
}

/// Logs at [`Level::Warn`]; same grammar as [`log_error!`].
#[macro_export]
macro_rules! log_warn {
    ($($arg:tt)+) => { $crate::__log_at!($crate::Level::Warn, $($arg)+) };
}

/// Logs at [`Level::Info`]; same grammar as [`log_error!`].
#[macro_export]
macro_rules! log_info {
    ($($arg:tt)+) => { $crate::__log_at!($crate::Level::Info, $($arg)+) };
}

/// Logs at [`Level::Debug`]; same grammar as [`log_error!`].
#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)+) => { $crate::__log_at!($crate::Level::Debug, $($arg)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The filter is process-global, so one test exercises every facet and
    // restores the default at the end (other tests in this crate do not
    // touch the filter).
    #[test]
    fn filter_spec_levels_and_target_overrides() {
        assert!("warn".parse::<Level>().unwrap() == Level::Warn);
        let err = "loud".parse::<Level>().unwrap_err();
        assert_eq!(
            err,
            "unknown log level `loud` (expected one of: error, warn, info, debug)"
        );
        assert!(set_log_filter("trace").is_err());
        assert!(set_log_filter("info,=debug").is_err());

        set_log_filter("warn,qexec=debug,qsvc::store=error").unwrap();
        // Default applies to unknown targets.
        assert!(log_enabled(Level::Warn, "qhttp"));
        assert!(!log_enabled(Level::Info, "qhttp"));
        // Target override, including `::` descendants...
        assert!(log_enabled(Level::Debug, "qexec"));
        assert!(log_enabled(Level::Debug, "qexec::pool"));
        // ...but not mere string prefixes.
        assert!(!log_enabled(Level::Info, "qexecutor"));
        // The longest match wins over a shorter one.
        assert!(!log_enabled(Level::Warn, "qsvc::store"));

        set_log_filter("info").unwrap();
        assert!(log_enabled(Level::Info, "anything"));
        assert!(!log_enabled(Level::Debug, "anything"));
    }

    #[test]
    fn values_quote_only_when_ambiguous() {
        let mut line = String::new();
        push_value(&mut line, "http://127.0.0.1:8080");
        assert_eq!(line, "http://127.0.0.1:8080");
        line.clear();
        push_value(&mut line, "two words");
        assert_eq!(line, "\"two words\"");
        line.clear();
        push_value(&mut line, "a=b");
        assert_eq!(line, "\"a=b\"");
        line.clear();
        push_value(&mut line, "say \"hi\"\n");
        assert_eq!(line, "\"say \\\"hi\\\"\\n\"");
    }
}
