//! Prometheus text exposition (format version 0.0.4) over the global
//! registry.

use crate::metrics::{registry, Instrument, Kind};

/// Serializes every registered family: families sorted by name, `# HELP`
/// then `# TYPE` before any sample, children sorted by label values.
/// Families with no children yet still emit their header lines, so the
/// series inventory is stable from first scrape.
pub fn render() -> String {
    let mut out = String::with_capacity(4096);
    let families = registry()
        .families
        .read()
        .expect("metric registry poisoned");
    for family in families.values() {
        out.push_str("# HELP ");
        out.push_str(&family.name);
        out.push(' ');
        escape_help(&mut out, &family.help);
        out.push('\n');
        out.push_str("# TYPE ");
        out.push_str(&family.name);
        out.push(' ');
        out.push_str(family.kind.as_str());
        out.push('\n');

        let children = family.children.read().expect("metric family poisoned");
        for (values, child) in children.iter() {
            let labels: Vec<(&str, &str)> = family
                .label_names
                .iter()
                .map(String::as_str)
                .zip(values.iter().map(String::as_str))
                .collect();
            match child {
                Instrument::Counter(c) => {
                    sample(&mut out, &family.name, "", &labels, None, &fmt_u64(c.get()));
                }
                Instrument::Gauge(g) => {
                    sample(&mut out, &family.name, "", &labels, None, &fmt_i64(g.get()));
                }
                Instrument::Histogram(h) => {
                    let (buckets, sum, count) = h.snapshot();
                    for (bound, cumulative) in h
                        .bounds()
                        .iter()
                        .map(|b| fmt_f64(*b))
                        .chain(std::iter::once("+Inf".to_string()))
                        .zip(&buckets)
                    {
                        sample(
                            &mut out,
                            &family.name,
                            "_bucket",
                            &labels,
                            Some(&bound),
                            &fmt_u64(*cumulative),
                        );
                    }
                    sample(&mut out, &family.name, "_sum", &labels, None, &fmt_f64(sum));
                    sample(
                        &mut out,
                        &family.name,
                        "_count",
                        &labels,
                        None,
                        &fmt_u64(count),
                    );
                }
            }
        }
        debug_assert!(matches!(
            family.kind,
            Kind::Counter | Kind::Gauge | Kind::Histogram
        ));
    }
    out
}

/// One sample line: `name[suffix]{labels,le="..."} value`.
fn sample(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &[(&str, &str)],
    le: Option<&str>,
    value: &str,
) {
    out.push_str(name);
    out.push_str(suffix);
    if !labels.is_empty() || le.is_some() {
        out.push('{');
        let mut first = true;
        for (label, val) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(label);
            out.push_str("=\"");
            escape_label(out, val);
            out.push('"');
        }
        if let Some(bound) = le {
            if !first {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(bound);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Label-value escaping: backslash, double quote, and newline.
fn escape_label(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

/// HELP-text escaping: backslash and newline (quotes are legal there).
fn escape_help(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

fn fmt_u64(v: u64) -> String {
    v.to_string()
}

fn fmt_i64(v: i64) -> String {
    v.to_string()
}

/// `f64` in the shortest round-trip decimal form (`{}` in Rust), which
/// Prometheus parses; infinities use the exposition spelling.
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{counter_vec, histogram};

    #[test]
    fn renders_types_labels_and_histogram_expansion() {
        let v = counter_vec("qobs_encode_test_total", "An encode test.", &["name"]);
        v.with(&["plain"]).add(7);
        v.with(&["we\"ird\\\n"]).inc();
        let h = histogram("qobs_encode_test_seconds", "Latencies.", &[0.5, 2.0]);
        h.observe(0.1);
        h.observe(3.0);

        let text = render();
        assert!(text.contains("# TYPE qobs_encode_test_total counter\n"));
        assert!(text.contains("qobs_encode_test_total{name=\"plain\"} 7\n"));
        // Escaped backslash, quote, and newline in the label value.
        assert!(text.contains("qobs_encode_test_total{name=\"we\\\"ird\\\\\\n\"} 1\n"));
        assert!(text.contains("# TYPE qobs_encode_test_seconds histogram\n"));
        assert!(text.contains("qobs_encode_test_seconds_bucket{le=\"0.5\"} 1\n"));
        assert!(text.contains("qobs_encode_test_seconds_bucket{le=\"2\"} 1\n"));
        assert!(text.contains("qobs_encode_test_seconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("qobs_encode_test_seconds_count 2\n"));
        // HELP precedes TYPE precedes samples for each family.
        let help = text.find("# HELP qobs_encode_test_total").unwrap();
        let ty = text.find("# TYPE qobs_encode_test_total").unwrap();
        let sample = text.find("qobs_encode_test_total{").unwrap();
        assert!(help < ty && ty < sample);
    }
}
