//! `popqc-obs`: the one observability layer every POPQC runtime crate
//! shares — a process-wide metrics registry with a Prometheus text
//! encoder, and a leveled structured-logging facade that replaces the
//! scattered `eprintln!`s.
//!
//! Std-only like the rest of the workspace: no tracing/prometheus/log
//! crates, just atomics and `std::sync`.
//!
//! ## Metrics
//!
//! Three instrument kinds, all with relaxed-atomic hot paths:
//!
//! * [`Counter`] — monotonic `u64`; `inc`/`add` are one relaxed
//!   `fetch_add`.
//! * [`Gauge`] — settable `i64` (queue depths, pool sizes, resident
//!   bytes).
//! * [`Histogram`] — fixed bucket bounds chosen at registration; each
//!   observation is one relaxed `fetch_add` into its bucket cell plus a
//!   CAS-loop add into the bit-packed `f64` sum. Rendered with the
//!   standard `_bucket`/`_sum`/`_count` expansion.
//!
//! Instruments are owned by a global [registry](crate::render) keyed by
//! family name; registration is idempotent (same name + same kind returns
//! the existing family), so any crate can name a metric without
//! coordinating init order. Labeled families ([`CounterVec`],
//! [`GaugeVec`], [`HistogramVec`]) intern one child per label-value
//! tuple; resolving a child takes a read lock once, after which the
//! returned [`Arc`](std::sync::Arc) handle is lock-free to update.
//!
//! Hot paths should resolve once into a `static`, which the
//! [`static_counter!`]-style macros package up:
//!
//! ```
//! fn jobs_done() -> &'static qobs::Counter {
//!     qobs::static_counter!("popqc_demo_jobs_done_total", "Jobs finished.")
//! }
//! jobs_done().inc(); // one relaxed fetch_add, no locks
//! ```
//!
//! [`render`] serializes every registered family in the Prometheus text
//! exposition format (version 0.0.4): families sorted by name, `# HELP`
//! then `# TYPE` before any sample, label values escaped, histogram
//! buckets cumulative and monotone with a closing `+Inf` bucket.
//!
//! ## Logging
//!
//! [`log_error!`], [`log_warn!`], [`log_info!`], [`log_debug!`] emit one
//! `key=value` line to stderr:
//!
//! ```text
//! ts=1754520000.123 level=info target=qsvc msg="job done" oracle=rule_based rounds=12
//! ```
//!
//! The active filter comes from `POPQC_LOG` (or `popqc --log-level`) with
//! the usual spec grammar: a default level plus comma-separated
//! `target=level` overrides, e.g. `info,qexec=debug`. Disabled events
//! cost one relaxed atomic load and never format their arguments.
//!
//! ## Tracing
//!
//! [`trace`] adds request-scoped span tracing with tail-based sampling:
//! the edge starts a [`trace::TraceHandle`], layers record spans against
//! it (directly or via the thread-local ambient context), and the
//! keep/discard decision happens at finish time — error, shed, slow, and
//! forced traces are always kept, the rest probabilistically. Kept
//! traces land in a lock-sharded bounded ring buffer served by
//! `GET /v1/traces`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod encode;
mod log;
mod metrics;
pub mod trace;

pub use crate::log::{
    log_enabled, log_event, set_log_filter, set_log_filter_from_env, Level, LOG_ENV_VAR,
};
pub use crate::metrics::{
    counter, counter_vec, gauge, gauge_vec, histogram, histogram_vec, Counter, CounterVec, Gauge,
    GaugeVec, Histogram, HistogramTimer, HistogramVec,
};
pub use encode::render;

/// Exponential latency bucket bounds in seconds: ×4 steps from 1 µs to
/// ~17 s (13 bounds + the implicit `+Inf`). Wide enough for a
/// microsecond-scale store probe and a multi-second optimization job on
/// one shared scale, so dashboards can overlay them.
pub const LATENCY_BUCKETS: [f64; 13] = [
    1e-6, 4e-6, 1.6e-5, 6.4e-5, 2.56e-4, 1.024e-3, 4.096e-3, 1.6384e-2, 6.5536e-2, 0.262144,
    1.048576, 4.194304, 16.777216,
];

/// Power-of-two count buckets (1 … 1024 + `+Inf`) for discrete
/// distributions such as rounds-to-fixpoint.
pub const COUNT_BUCKETS: [f64; 11] = [
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
];
