//! Property-based tests for the angle-abstracted segment fingerprint —
//! the keying function the segment cache's soundness rests on. Two
//! properties matter:
//!
//! 1. **Angle erasure, nothing more**: the abstract fingerprint is equal
//!    iff structure and operands match under arbitrary angle
//!    substitution — substituting every rotation angle never changes the
//!    key, while any structural edit (kind, wire, order, width, length)
//!    does.
//! 2. **Domain disjointness**: an abstract key never collides with an
//!    exact-angle key, so both entry kinds can share one cache table.

use proptest::prelude::*;
use qcir::fingerprint::{fingerprint_gates, fingerprint_gates_abstract};
use qcir::{Angle, Gate};

const WIDTH: u32 = 8;

fn arb_angle() -> impl Strategy<Value = Angle> {
    (-(1i64 << 20)..(1i64 << 20), 1i64..(1 << 16)).prop_map(|(num, den)| Angle::pi_frac(num, den))
}

fn arb_gate() -> impl Strategy<Value = Gate> {
    (0u32..4, 0u32..WIDTH, 0u32..WIDTH, arb_angle()).prop_map(|(kind, a, b, angle)| match kind {
        0 => Gate::H(a),
        1 => Gate::X(a),
        2 => Gate::Rz(a, angle),
        _ => Gate::Cnot(a, if a == b { (b + 1) % WIDTH } else { b }),
    })
}

fn arb_gates() -> impl Strategy<Value = Vec<Gate>> {
    prop::collection::vec(arb_gate(), 0..40)
}

/// `gates` with every rotation angle replaced from `fresh`, cycling.
/// Structure and operand wires are untouched.
fn substitute_angles(gates: &[Gate], fresh: &[Angle]) -> Vec<Gate> {
    let mut next = 0usize;
    gates
        .iter()
        .map(|g| match *g {
            Gate::Rz(q, _) if !fresh.is_empty() => {
                let a = fresh[next % fresh.len()];
                next += 1;
                Gate::Rz(q, a)
            }
            other => other,
        })
        .collect()
}

/// Structural skeleton used to decide ground-truth equality: everything
/// except rotation angle values.
fn skeleton(num_qubits: u32, gates: &[Gate]) -> (u32, Vec<(u8, u32, u32)>) {
    let enc = gates
        .iter()
        .map(|g| match *g {
            Gate::H(q) => (0u8, q, 0),
            Gate::X(q) => (1, q, 0),
            Gate::Rz(q, _) => (2, q, 0),
            Gate::Cnot(c, t) => (3, c, t),
        })
        .collect();
    (num_qubits, enc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn angle_substitution_preserves_the_abstract_key(
        gates in arb_gates(),
        fresh in prop::collection::vec(arb_angle(), 1..8),
    ) {
        let substituted = substitute_angles(&gates, &fresh);
        prop_assert_eq!(
            fingerprint_gates_abstract(WIDTH, &gates),
            fingerprint_gates_abstract(WIDTH, &substituted),
            "angle substitution must not move the abstract key"
        );
    }

    #[test]
    fn abstract_keys_agree_iff_skeletons_agree(
        a in arb_gates(),
        b in arb_gates(),
    ) {
        let same_key =
            fingerprint_gates_abstract(WIDTH, &a) == fingerprint_gates_abstract(WIDTH, &b);
        let same_skeleton = skeleton(WIDTH, &a) == skeleton(WIDTH, &b);
        // Equal skeletons MUST agree; differing skeletons must not collide
        // (a hash, so this direction is "no collision observed" — any
        // counterexample here is a real keying bug at these sizes).
        prop_assert_eq!(same_key, same_skeleton);
    }

    #[test]
    fn structural_edits_change_the_abstract_key(
        gates in prop::collection::vec(arb_gate(), 1..40),
        edit_at in 0usize..64,
    ) {
        let i = edit_at % gates.len();
        let mut edited = gates.clone();
        // A guaranteed-structural edit: flip the gate kind at `i`.
        edited[i] = match edited[i] {
            Gate::H(q) => Gate::X(q),
            Gate::X(q) => Gate::H(q),
            Gate::Rz(q, _) => Gate::H(q),
            Gate::Cnot(c, t) => Gate::Cnot(t, c),
        };
        prop_assert_ne!(
            fingerprint_gates_abstract(WIDTH, &gates),
            fingerprint_gates_abstract(WIDTH, &edited)
        );
        // Dropping a gate is structural too.
        let mut shorter = gates.clone();
        shorter.remove(i);
        prop_assert_ne!(
            fingerprint_gates_abstract(WIDTH, &gates),
            fingerprint_gates_abstract(WIDTH, &shorter)
        );
    }

    #[test]
    fn abstract_never_collides_with_the_exact_domain(
        a in arb_gates(),
        b in arb_gates(),
    ) {
        prop_assert_ne!(
            fingerprint_gates_abstract(WIDTH, &a),
            fingerprint_gates(WIDTH, &b),
            "abstract and exact key spaces must stay disjoint"
        );
        // Including each sequence against its own exact key.
        prop_assert_ne!(
            fingerprint_gates_abstract(WIDTH, &a),
            fingerprint_gates(WIDTH, &a)
        );
    }

    #[test]
    fn width_still_matters_in_the_abstract_domain(gates in arb_gates()) {
        prop_assert_ne!(
            fingerprint_gates_abstract(WIDTH, &gates),
            fingerprint_gates_abstract(WIDTH + 1, &gates)
        );
    }
}
