//! Property-based tests for the exact angle arithmetic — the foundation the
//! optimizers' soundness rests on (merges and cancellations are decided by
//! these operations, so they must form a proper abelian group mod 2π).

use proptest::prelude::*;
use qcir::Angle;

fn arb_angle() -> impl Strategy<Value = Angle> {
    (-(1i64 << 24)..(1i64 << 24), 1i64..(1 << 20)).prop_map(|(num, den)| Angle::pi_frac(num, den))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn canonical_range(a in arb_angle()) {
        prop_assert!(a.denominator() >= 1);
        prop_assert!(a.numerator() >= 0);
        prop_assert!(a.numerator() < 2 * a.denominator());
        // Lowest terms.
        let g = gcd(a.numerator(), a.denominator());
        prop_assert_eq!(g, 1);
    }

    #[test]
    fn addition_commutes(a in arb_angle(), b in arb_angle()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn addition_associates(a in arb_angle(), b in arb_angle(), c in arb_angle()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn zero_is_identity(a in arb_angle()) {
        prop_assert_eq!(a + Angle::ZERO, a);
    }

    #[test]
    fn negation_inverts(a in arb_angle()) {
        prop_assert!((a + (-a)).is_zero());
        prop_assert_eq!(-(-a), a);
    }

    #[test]
    fn radians_agree_with_rational(a in arb_angle()) {
        let r = a.to_radians();
        prop_assert!((0.0..2.0 * std::f64::consts::PI + 1e-9).contains(&r));
        let expect = a.numerator() as f64 / a.denominator() as f64 * std::f64::consts::PI;
        prop_assert!((r - expect).abs() < 1e-9);
    }

    #[test]
    fn from_radians_round_trips_small_denominators(
        num in -64i64..64, den in 1i64..64
    ) {
        let a = Angle::pi_frac(num, den);
        prop_assert_eq!(Angle::from_radians(a.to_radians()), a);
    }

    #[test]
    fn double_is_self_addition(a in arb_angle()) {
        prop_assert_eq!(a.double(), a + a);
    }
}

fn gcd(mut a: i64, mut b: i64) -> i64 {
    if a == 0 {
        return b.max(1);
    }
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}
