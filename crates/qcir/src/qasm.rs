//! OPENQASM 2.0 reader/writer for the `{h, x, rz, cx}` gate set.
//!
//! The paper's benchmarks are distributed as QASM files; this module lets the
//! reproduction import such files and export optimized circuits. Only the
//! subset needed for the gate set is supported: a single `qreg`, the four
//! gates, comments, `barrier` (ignored), and angle expressions built from
//! integers, floats, `pi`, `*`, `/`, and unary minus.

use crate::angle::Angle;
use crate::circuit::Circuit;
use crate::gate::Gate;
use std::fmt;

/// Error raised while parsing a QASM file, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QasmError {
    /// 1-based line number of the offending statement.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qasm parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for QasmError {}

fn err(line: usize, msg: impl Into<String>) -> QasmError {
    QasmError {
        line,
        msg: msg.into(),
    }
}

/// Serializes a circuit as OPENQASM 2.0. Angles print in exact
/// `n*pi/d` form, which [`parse`] reads back losslessly.
pub fn to_qasm(c: &Circuit) -> String {
    let mut out = String::with_capacity(32 + 12 * c.gates.len());
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", c.num_qubits));
    for g in &c.gates {
        match *g {
            Gate::H(q) => out.push_str(&format!("h q[{q}];\n")),
            Gate::X(q) => out.push_str(&format!("x q[{q}];\n")),
            Gate::Rz(q, a) => out.push_str(&format!("rz({a}) q[{q}];\n")),
            Gate::Cnot(c0, t) => out.push_str(&format!("cx q[{c0}],q[{t}];\n")),
        }
    }
    out
}

/// Parses an OPENQASM 2.0 program restricted to the POPQC gate set.
pub fn parse(src: &str) -> Result<Circuit, QasmError> {
    let mut num_qubits: Option<(String, u32)> = None;
    let mut gates = Vec::new();

    for (idx, raw_line) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw_line.find("//") {
            Some(p) => &raw_line[..p],
            None => raw_line,
        };
        // A line may hold several `;`-terminated statements.
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            if stmt.starts_with("OPENQASM") || stmt.starts_with("include") {
                continue;
            }
            if stmt.starts_with("barrier") {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("qreg") {
                let rest = rest.trim();
                let (name, size) = parse_reg_decl(rest)
                    .ok_or_else(|| err(lineno, format!("malformed qreg declaration: {stmt}")))?;
                if num_qubits.is_some() {
                    return Err(err(lineno, "multiple qreg declarations are not supported"));
                }
                num_qubits = Some((name, size));
                continue;
            }
            if stmt.starts_with("creg") || stmt.starts_with("measure") {
                return Err(err(
                    lineno,
                    "classical registers/measurement are outside the POPQC gate set",
                ));
            }
            let (reg, n) = num_qubits
                .as_ref()
                .ok_or_else(|| err(lineno, "gate before qreg declaration"))?;
            let g = parse_gate(stmt, reg, lineno)?;
            if g.max_qubit() >= *n {
                return Err(err(
                    lineno,
                    format!("qubit index out of range (register has {n} qubits): {stmt}"),
                ));
            }
            gates.push(g);
        }
    }

    let n = num_qubits
        .ok_or_else(|| err(src.lines().count().max(1), "missing qreg declaration"))?
        .1;
    Ok(Circuit {
        num_qubits: n,
        gates,
    })
}

fn parse_reg_decl(s: &str) -> Option<(String, u32)> {
    let open = s.find('[')?;
    // Search for the bracket *after* `[`: `find(']')` over the whole string
    // would produce an inverted range (and a slice panic) on inputs like
    // `qreg q]0[`.
    let close = open + s[open..].find(']')?;
    let name = s[..open].trim();
    let size: u32 = s[open + 1..close].trim().parse().ok()?;
    if name.is_empty() {
        return None;
    }
    Some((name.to_string(), size))
}

fn parse_gate(stmt: &str, reg: &str, lineno: usize) -> Result<Gate, QasmError> {
    if let Some(rest) = stmt.strip_prefix("cx") {
        let mut it = rest.split(',');
        let c = parse_operand(it.next().unwrap_or(""), reg)
            .ok_or_else(|| err(lineno, format!("malformed cx control: {stmt}")))?;
        let t = parse_operand(it.next().unwrap_or(""), reg)
            .ok_or_else(|| err(lineno, format!("malformed cx target: {stmt}")))?;
        if it.next().is_some() {
            return Err(err(lineno, format!("too many cx operands: {stmt}")));
        }
        if c == t {
            return Err(err(lineno, format!("cx control equals target: {stmt}")));
        }
        return Ok(Gate::Cnot(c, t));
    }
    if let Some(rest) = stmt.strip_prefix("rz") {
        let rest = rest.trim_start();
        let open = rest
            .strip_prefix('(')
            .ok_or_else(|| err(lineno, format!("rz missing angle: {stmt}")))?;
        let close = open
            .find(')')
            .ok_or_else(|| err(lineno, format!("rz missing ')': {stmt}")))?;
        let angle = parse_angle(&open[..close])
            .ok_or_else(|| err(lineno, format!("cannot parse angle: {stmt}")))?;
        let q = parse_operand(&open[close + 1..], reg)
            .ok_or_else(|| err(lineno, format!("malformed rz operand: {stmt}")))?;
        return Ok(Gate::Rz(q, angle));
    }
    if let Some(rest) = stmt.strip_prefix("h ") {
        let q = parse_operand(rest, reg)
            .ok_or_else(|| err(lineno, format!("malformed h operand: {stmt}")))?;
        return Ok(Gate::H(q));
    }
    if let Some(rest) = stmt.strip_prefix("x ") {
        let q = parse_operand(rest, reg)
            .ok_or_else(|| err(lineno, format!("malformed x operand: {stmt}")))?;
        return Ok(Gate::X(q));
    }
    Err(err(lineno, format!("unsupported statement: {stmt}")))
}

fn parse_operand(s: &str, reg: &str) -> Option<u32> {
    let s = s.trim();
    let rest = s.strip_prefix(reg)?.trim_start();
    let inner = rest.strip_prefix('[')?.strip_suffix(']')?;
    inner.trim().parse().ok()
}

/// Parses an angle expression: products/quotients of integers, floats, and
/// `pi`, with unary minus (e.g. `pi/4`, `-3*pi/8`, `0.5*pi`, `1.5707963`).
/// Decimal literals are snapped to the nearest rational multiple of π.
pub fn parse_angle(s: &str) -> Option<Angle> {
    let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    if s.is_empty() {
        return None;
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s.as_str()),
    };
    let mut value = 1.0f64;
    let mut op = '*';
    for token in tokenize(body)? {
        match token {
            Tok::Op(c) => op = c,
            Tok::Val(v) => {
                if op == '*' {
                    value *= v;
                } else {
                    if v == 0.0 {
                        return None;
                    }
                    value /= v;
                }
            }
        }
    }
    let a = Angle::from_radians(if neg { -value } else { value });
    Some(a)
}

enum Tok {
    Op(char),
    Val(f64),
}

fn tokenize(s: &str) -> Option<Vec<Tok>> {
    let mut out = Vec::new();
    let mut rest = s;
    let mut expecting_value = true;
    while !rest.is_empty() {
        if expecting_value {
            if let Some(r) = rest.strip_prefix("pi") {
                out.push(Tok::Val(std::f64::consts::PI));
                rest = r;
            } else {
                let end = rest
                    .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E'))
                    .unwrap_or(rest.len());
                if end == 0 {
                    return None;
                }
                let v: f64 = rest[..end].parse().ok()?;
                out.push(Tok::Val(v));
                rest = &rest[end..];
            }
            expecting_value = false;
        } else {
            let c = rest.chars().next()?;
            if c != '*' && c != '/' {
                return None;
            }
            out.push(Tok::Op(c));
            rest = &rest[1..];
            expecting_value = true;
        }
    }
    if expecting_value {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut c = Circuit::new(4);
        c.h(0)
            .cnot(0, 1)
            .rz(1, Angle::pi_frac(3, 8))
            .x(3)
            .rz(2, Angle::PI)
            .rz(3, Angle::pi_frac(-1, 4));
        let text = to_qasm(&c);
        let back = parse(&text).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn parse_angles() {
        assert_eq!(parse_angle("pi/4"), Some(Angle::PI_4));
        assert_eq!(parse_angle("-pi/4"), Some(Angle::SEVEN_PI_4));
        assert_eq!(parse_angle("3*pi/4"), Some(Angle::pi_frac(3, 4)));
        assert_eq!(parse_angle("0"), Some(Angle::ZERO));
        assert_eq!(parse_angle("2*pi"), Some(Angle::ZERO));
        assert_eq!(parse_angle("0.5*pi"), Some(Angle::PI_2));
        assert_eq!(parse_angle("1.5707963267948966"), Some(Angle::PI_2));
        assert_eq!(parse_angle("pi"), Some(Angle::PI));
        assert_eq!(parse_angle(""), None);
        assert_eq!(parse_angle("pi/0"), None);
        assert_eq!(parse_angle("foo"), None);
    }

    #[test]
    fn parse_sample_program() {
        let src = r#"
OPENQASM 2.0;
include "qelib1.inc";
// a comment
qreg q[3];
h q[0];
cx q[0],q[1];
rz(pi/2) q[1]; x q[2];
barrier q;
cx q[1], q[2];
"#;
        let c = parse(src).unwrap();
        assert_eq!(c.num_qubits, 3);
        assert_eq!(c.len(), 5);
        assert_eq!(c.gates[2], Gate::Rz(1, Angle::PI_2));
        assert_eq!(c.gates[4], Gate::Cnot(1, 2));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "OPENQASM 2.0;\nqreg q[2];\nh q[5];\n";
        let e = parse(src).unwrap_err();
        assert_eq!(e.line, 3);

        let e = parse("OPENQASM 2.0;\nh q[0];\n").unwrap_err();
        assert!(e.msg.contains("before qreg"));

        let e = parse("qreg q[2];\ncx q[1],q[1];\n").unwrap_err();
        assert!(e.msg.contains("control equals target"));

        let e = parse("qreg q[2];\nmeasure q[0];\n").unwrap_err();
        assert!(e.msg.contains("outside the POPQC gate set"));

        let e = parse("OPENQASM 2.0;\n").unwrap_err();
        assert!(e.msg.contains("missing qreg"));
    }

    #[test]
    fn unsupported_gate_is_an_error() {
        let e = parse("qreg q[2];\nt q[0];\n").unwrap_err();
        assert!(e.msg.contains("unsupported"));
    }

    #[test]
    fn malformed_qreg_brackets_error_instead_of_panicking() {
        // `]` before `[` used to slice with an inverted range and panic.
        for src in ["qreg q]0[;\n", "qreg q];\n", "qreg [3];\n", "qreg q[x];\n"] {
            let e = parse(src).unwrap_err();
            assert!(e.msg.contains("qreg"), "{src:?} -> {e}");
            assert_eq!(e.line, 1);
        }
    }
}
