//! Exact angles as rational multiples of π.
//!
//! Every rotation angle appearing in the paper's benchmarks is a rational
//! multiple of π (QFT rotations are `π/2^k`, Toffoli decompositions use
//! `±π/4`, variational ansätze are snapped to a fine grid). Representing the
//! angle as `num/den · π` in lowest terms, normalized into `[0, 2π)`, makes
//! rotation merging and identity detection *exact*: no epsilon comparisons,
//! and therefore no unsound rewrites in the optimizers.

use std::fmt;

/// An angle `num/den · π`, kept in canonical form:
///
/// * `den ≥ 1`,
/// * `gcd(num, den) = 1` (and `num = 0 ⇒ den = 1`),
/// * `0 ≤ num < 2·den`, i.e. the angle lies in `[0, 2π)`.
///
/// Arithmetic goes through `i128` intermediates, so any two canonical angles
/// with denominators below `2^40` combine without overflow; the workspace
/// only ever constructs denominators up to `2^24`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Angle {
    num: i64,
    den: i64,
}

impl Angle {
    /// The zero angle (the identity rotation).
    pub const ZERO: Angle = Angle { num: 0, den: 1 };
    /// π — `RZ(π)` is the Pauli-Z gate up to global phase.
    pub const PI: Angle = Angle { num: 1, den: 1 };
    /// π/2 — `RZ(π/2)` is the S gate up to global phase.
    pub const PI_2: Angle = Angle { num: 1, den: 2 };
    /// π/4 — `RZ(π/4)` is the T gate up to global phase.
    pub const PI_4: Angle = Angle { num: 1, den: 4 };
    /// 3π/2 — `RZ(3π/2)` is the S† gate up to global phase.
    pub const THREE_PI_2: Angle = Angle { num: 3, den: 2 };
    /// 7π/4 — `RZ(7π/4)` is the T† gate up to global phase.
    pub const SEVEN_PI_4: Angle = Angle { num: 7, den: 4 };

    /// Builds the canonical angle `num/den · π`. Panics if `den == 0`.
    pub fn pi_frac(num: i64, den: i64) -> Angle {
        assert!(den != 0, "angle denominator must be nonzero");
        Self::normalize(num as i128, den as i128)
    }

    fn normalize(mut num: i128, mut den: i128) -> Angle {
        if den < 0 {
            num = -num;
            den = -den;
        }
        // Reduce first so the range reduction below stays within i128.
        let g = gcd128(num, den);
        if g > 1 {
            num /= g;
            den /= g;
        }
        // Range-reduce into [0, 2π), i.e. num ∈ [0, 2·den).
        num = num.rem_euclid(2 * den);
        let g = gcd128(num, den);
        if g > 1 {
            num /= g;
            den /= g;
        }
        if num == 0 {
            den = 1;
        }
        debug_assert!(num >= 0 && num < 2 * den);
        assert!(
            num <= i64::MAX as i128 && den <= i64::MAX as i128,
            "angle overflow after normalization"
        );
        Angle {
            num: num as i64,
            den: den as i64,
        }
    }

    /// Numerator of the canonical `num/den · π` form, in `[0, 2·den)`.
    #[inline]
    pub fn numerator(self) -> i64 {
        self.num
    }

    /// Denominator of the canonical form (always ≥ 1).
    #[inline]
    pub fn denominator(self) -> i64 {
        self.den
    }

    /// `true` iff this is the zero angle, i.e. `RZ(self)` is the identity.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// `true` iff the angle equals π.
    #[inline]
    pub fn is_pi(self) -> bool {
        self.num == 1 && self.den == 1
    }

    /// Sum of two angles, reduced into `[0, 2π)`.
    #[allow(clippy::should_implement_trait)] // also exposed via `impl Add`
    pub fn add(self, other: Angle) -> Angle {
        Self::normalize(
            self.num as i128 * other.den as i128 + other.num as i128 * self.den as i128,
            self.den as i128 * other.den as i128,
        )
    }

    /// Additive inverse modulo 2π: `self.add(self.neg()) == Angle::ZERO`.
    #[allow(clippy::should_implement_trait)] // also exposed via `impl Neg`
    pub fn neg(self) -> Angle {
        Self::normalize(-(self.num as i128), self.den as i128)
    }

    /// Doubles the angle (mod 2π).
    pub fn double(self) -> Angle {
        Self::normalize(2 * self.num as i128, self.den as i128)
    }

    /// The angle as a float in radians, in `[0, 2π)`.
    pub fn to_radians(self) -> f64 {
        self.num as f64 / self.den as f64 * std::f64::consts::PI
    }

    /// Snaps a float (radians) to the nearest rational multiple of π with
    /// denominator at most `2^20`, via continued fractions. Used when
    /// importing QASM files that spell angles as decimal literals.
    pub fn from_radians(x: f64) -> Angle {
        let t = x / std::f64::consts::PI; // target num/den
        let t = t.rem_euclid(2.0);
        let (num, den) = rational_approx(t, 1 << 20);
        Self::normalize(num as i128, den as i128)
    }
}

fn gcd128(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

/// Best rational approximation `p/q ≈ t` with `q ≤ max_den`
/// (continued-fraction convergents).
fn rational_approx(t: f64, max_den: i64) -> (i64, i64) {
    let mut x = t;
    let (mut p0, mut q0, mut p1, mut q1) = (0i64, 1i64, 1i64, 0i64);
    for _ in 0..64 {
        let a = x.floor();
        if a.abs() > i64::MAX as f64 / 2.0 {
            break;
        }
        let a_i = a as i64;
        let p2 = a_i.saturating_mul(p1).saturating_add(p0);
        let q2 = a_i.saturating_mul(q1).saturating_add(q0);
        if q2 > max_den || q2 <= 0 {
            break;
        }
        p0 = p1;
        q0 = q1;
        p1 = p2;
        q1 = q2;
        let frac = x - a;
        if frac.abs() < 1e-12 {
            break;
        }
        x = 1.0 / frac;
    }
    if q1 == 0 {
        (0, 1)
    } else {
        (p1, q1)
    }
}

impl fmt::Debug for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.num, self.den) {
            (0, _) => write!(f, "0"),
            (1, 1) => write!(f, "pi"),
            (n, 1) => write!(f, "{n}*pi"),
            (1, d) => write!(f, "pi/{d}"),
            (n, d) => write!(f, "{n}*pi/{d}"),
        }
    }
}

impl std::ops::Add for Angle {
    type Output = Angle;
    fn add(self, rhs: Angle) -> Angle {
        Angle::add(self, rhs)
    }
}

impl std::ops::Neg for Angle {
    type Output = Angle;
    fn neg(self) -> Angle {
        Angle::neg(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_constants() {
        assert_eq!(Angle::pi_frac(0, 5), Angle::ZERO);
        assert_eq!(Angle::pi_frac(2, 2), Angle::PI);
        assert_eq!(Angle::pi_frac(4, 8), Angle::PI_2);
        assert_eq!(Angle::pi_frac(-1, 2), Angle::THREE_PI_2);
        assert_eq!(Angle::pi_frac(9, 4), Angle::pi_frac(1, 4));
    }

    #[test]
    fn negative_denominator_normalizes() {
        assert_eq!(Angle::pi_frac(1, -2), Angle::THREE_PI_2);
        assert_eq!(Angle::pi_frac(-1, -2), Angle::PI_2);
    }

    #[test]
    fn addition_wraps_mod_2pi() {
        assert_eq!(Angle::PI + Angle::PI, Angle::ZERO);
        assert_eq!(Angle::PI_2 + Angle::THREE_PI_2, Angle::ZERO);
        assert_eq!(Angle::PI_4 + Angle::PI_4, Angle::PI_2);
        assert_eq!(Angle::pi_frac(1, 3) + Angle::pi_frac(1, 6), Angle::PI_2);
    }

    #[test]
    fn negation_is_inverse() {
        for (n, d) in [(1, 3), (5, 7), (3, 2), (7, 4), (0, 1), (1, 1)] {
            let a = Angle::pi_frac(n, d);
            assert!(
                (a + (-a)).is_zero(),
                "{a} + -{a} should be zero, got {:?}",
                a + (-a)
            );
        }
    }

    #[test]
    fn double_wraps() {
        assert_eq!(Angle::PI.double(), Angle::ZERO);
        assert_eq!(Angle::PI_4.double(), Angle::PI_2);
        assert_eq!(Angle::THREE_PI_2.double(), Angle::PI);
    }

    #[test]
    fn radians_round_trip() {
        for (n, d) in [(1, 4), (3, 8), (7, 4), (1, 1), (127, 128), (5, 3)] {
            let a = Angle::pi_frac(n, d);
            let back = Angle::from_radians(a.to_radians());
            assert_eq!(a, back, "round trip failed for {a}");
        }
    }

    #[test]
    fn from_radians_snaps_small_denominators() {
        assert_eq!(
            Angle::from_radians(std::f64::consts::FRAC_PI_2),
            Angle::PI_2
        );
        assert_eq!(
            Angle::from_radians(-std::f64::consts::FRAC_PI_4),
            Angle::SEVEN_PI_4
        );
        assert_eq!(Angle::from_radians(0.0), Angle::ZERO);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Angle::ZERO.to_string(), "0");
        assert_eq!(Angle::PI.to_string(), "pi");
        assert_eq!(Angle::PI_2.to_string(), "pi/2");
        assert_eq!(Angle::pi_frac(3, 4).to_string(), "3*pi/4");
    }

    #[test]
    fn large_denominator_arithmetic_is_exact() {
        // Sum 2^20 copies of pi/2^20 and land exactly on pi.
        let step = Angle::pi_frac(1, 1 << 20);
        let mut acc = Angle::ZERO;
        for _ in 0..(1u32 << 20) {
            acc = acc + step;
        }
        assert_eq!(acc, Angle::PI);
    }
}
