//! # qcir — quantum circuit intermediate representation
//!
//! The circuit IR shared by every crate in the POPQC workspace. It models the
//! gate set used throughout the paper (the VOQC gate set): Hadamard (`H`),
//! Pauli-X (`X`), Z-rotation (`RZ`), and controlled-NOT (`CNOT`).
//!
//! Highlights:
//!
//! * [`Angle`] — *exact* rational-multiple-of-π angle arithmetic, so rotation
//!   merging (`RZ(a)·RZ(b) = RZ(a+b)`) and cancellation (`a + b ≡ 0 mod 2π`)
//!   are decidable with no floating-point drift.
//! * [`Gate`] — the four-gate ISA with commutation/inverse predicates used by
//!   the optimizers.
//! * [`Circuit`] — a flat gate-sequence circuit (the paper's primary
//!   representation).
//! * [`LayeredCircuit`] — the layered representation of Section 2.2 /
//!   Section 7.8, with ASAP/ALAP scheduling used for depth costing and for
//!   the initial-ordering experiments (Table 4).
//! * [`qasm`] — an OPENQASM 2.0 subset reader/writer for the gate set.

pub mod angle;
pub mod circuit;
pub mod fingerprint;
pub mod gate;
pub mod layers;
pub mod qasm;

pub use angle::Angle;
pub use circuit::Circuit;
pub use fingerprint::{
    fingerprint_gates, fingerprint_gates_abstract, Fingerprint, FingerprintHasher,
};
pub use gate::{Gate, Qubit};
pub use layers::{Layer, LayeredCircuit};
