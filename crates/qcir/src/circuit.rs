//! Flat gate-sequence circuits (the paper's primary representation).

use crate::angle::Angle;
use crate::gate::{Gate, Qubit};
use crate::layers::LayeredCircuit;
use std::collections::HashMap;
use std::fmt;

/// A quantum circuit: a number of qubit wires and an ordered gate sequence.
///
/// Matrix semantics follow Section 2.2: for gates `g1, g2, …, gk` the
/// circuit's unitary is `[gk]…[g2][g1]` (gates apply left to right).
#[derive(Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Circuit {
    /// Number of qubit wires.
    pub num_qubits: u32,
    /// The gate sequence, applied left to right.
    pub gates: Vec<Gate>,
}

impl Circuit {
    /// An empty circuit over `num_qubits` wires.
    pub fn new(num_qubits: u32) -> Circuit {
        Circuit {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Builds a circuit from a gate array, inferring the qubit count from the
    /// largest index used (at least `min_qubits`).
    pub fn from_gates(gates: Vec<Gate>, min_qubits: u32) -> Circuit {
        let n = gates
            .iter()
            .map(|g| g.max_qubit() + 1)
            .max()
            .unwrap_or(0)
            .max(min_qubits);
        Circuit {
            num_qubits: n,
            gates,
        }
    }

    /// Number of gates.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` iff the circuit has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a Hadamard gate; returns `&mut self` for chaining.
    pub fn h(&mut self, q: Qubit) -> &mut Self {
        self.gates.push(Gate::H(q));
        self
    }

    /// Appends a Pauli-X gate.
    pub fn x(&mut self, q: Qubit) -> &mut Self {
        self.gates.push(Gate::X(q));
        self
    }

    /// Appends an `RZ(angle)` gate.
    pub fn rz(&mut self, q: Qubit, angle: Angle) -> &mut Self {
        self.gates.push(Gate::Rz(q, angle));
        self
    }

    /// Appends a CNOT gate with the given control and target.
    pub fn cnot(&mut self, c: Qubit, t: Qubit) -> &mut Self {
        self.gates.push(Gate::Cnot(c, t));
        self
    }

    /// Appends all gates of `other` (qubit counts must agree or grow).
    pub fn append(&mut self, other: &Circuit) {
        self.num_qubits = self.num_qubits.max(other.num_qubits);
        self.gates.extend_from_slice(&other.gates);
    }

    /// Checks structural well-formedness: all qubit indices in range and no
    /// CNOT with control == target. Returns the first offending gate index.
    pub fn validate(&self) -> Result<(), usize> {
        for (i, g) in self.gates.iter().enumerate() {
            if g.max_qubit() >= self.num_qubits {
                return Err(i);
            }
            if let Gate::Cnot(c, t) = g {
                if c == t {
                    return Err(i);
                }
            }
        }
        Ok(())
    }

    /// Per-mnemonic gate counts (`h`, `x`, `rz`, `cx`).
    pub fn histogram(&self) -> HashMap<&'static str, usize> {
        let mut m = HashMap::new();
        for g in &self.gates {
            *m.entry(g.name()).or_insert(0) += 1;
        }
        m
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Circuit depth: the number of layers of mutually independent gates
    /// under ASAP scheduling (the "natural running time", Section 2.2).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits as usize];
        let mut depth = 0;
        for g in &self.gates {
            let (a, b) = g.qubits();
            let l = match b {
                None => level[a as usize],
                Some(b) => level[a as usize].max(level[b as usize]),
            } + 1;
            level[a as usize] = l;
            if let Some(b) = b {
                level[b as usize] = l;
            }
            depth = depth.max(l);
        }
        depth
    }

    /// The inverse circuit (reversed order, each gate inverted).
    pub fn inverse(&self) -> Circuit {
        Circuit {
            num_qubits: self.num_qubits,
            gates: self.gates.iter().rev().map(|g| g.inverse()).collect(),
        }
    }

    /// Converts to the layered representation via ASAP scheduling.
    pub fn layered(&self) -> LayeredCircuit {
        LayeredCircuit::from_circuit(self)
    }

    /// Reorders the gate array by pushing every gate as far *left* as
    /// dependencies allow (Table 4's "left-justified" ordering): convert to
    /// layers and flatten layer by layer.
    pub fn left_justified(&self) -> Circuit {
        self.layered().to_circuit()
    }

    /// Reorders the gate array by pushing every gate as far *right* as
    /// possible (Table 4's "right-justified" ordering): ALAP scheduling.
    pub fn right_justified(&self) -> Circuit {
        LayeredCircuit::from_circuit_alap(self).to_circuit()
    }
}

impl fmt::Debug for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Circuit(qubits={}, gates={})",
            self.num_qubits,
            self.gates.len()
        )?;
        if self.gates.len() <= 32 {
            write!(f, " {:?}", self.gates)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).rz(1, Angle::PI_4).x(2).cnot(1, 2);
        c
    }

    #[test]
    fn builder_and_counts() {
        let c = sample();
        assert_eq!(c.len(), 5);
        assert_eq!(c.two_qubit_count(), 2);
        let h = c.histogram();
        assert_eq!(h["h"], 1);
        assert_eq!(h["cx"], 2);
        assert_eq!(h["rz"], 1);
        assert_eq!(h["x"], 1);
    }

    #[test]
    fn validate_catches_bad_gates() {
        let mut c = Circuit::new(2);
        c.h(2);
        assert_eq!(c.validate(), Err(0));
        let mut c = Circuit::new(2);
        c.h(0);
        c.gates.push(Gate::Cnot(1, 1));
        assert_eq!(c.validate(), Err(1));
        assert_eq!(sample().validate(), Ok(()));
    }

    #[test]
    fn depth_computation() {
        // H(0), CNOT(0,1), RZ(1), X(2), CNOT(1,2)
        // levels: H->1; CNOT(0,1)->2; RZ(1)->3; X(2)->1; CNOT(1,2)->4
        assert_eq!(sample().depth(), 4);
        assert_eq!(Circuit::new(4).depth(), 0);
        let mut par = Circuit::new(4);
        par.h(0).h(1).h(2).h(3);
        assert_eq!(par.depth(), 1);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let c = sample();
        let inv = c.inverse();
        assert_eq!(inv.len(), c.len());
        assert_eq!(inv.gates[0], Gate::Cnot(1, 2));
        assert_eq!(inv.gates[2], Gate::Rz(1, -Angle::PI_4));
        assert_eq!(inv.inverse().gates, c.gates);
    }

    #[test]
    fn from_gates_infers_width() {
        let c = Circuit::from_gates(vec![Gate::Cnot(2, 5), Gate::H(1)], 0);
        assert_eq!(c.num_qubits, 6);
        let c = Circuit::from_gates(vec![Gate::H(0)], 9);
        assert_eq!(c.num_qubits, 9);
    }

    #[test]
    fn justification_preserves_multiset_and_dependencies() {
        let c = sample();
        for j in [c.left_justified(), c.right_justified()] {
            assert_eq!(j.len(), c.len());
            // same multiset of gates
            let mut a = c.gates.clone();
            let mut b = j.gates.clone();
            let key = |g: &Gate| format!("{g:?}");
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(a, b);
        }
    }
}
