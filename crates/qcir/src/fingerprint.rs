//! Structural circuit fingerprints.
//!
//! The batch-optimization service memoizes results keyed by the input
//! circuit's structure, so it needs a hash that is:
//!
//! * **deterministic across processes and platforms** — `std`'s default
//!   hasher randomizes per-process and documents no stable algorithm, so a
//!   fixed-constant hash is implemented here instead;
//! * **wide enough that collisions are not a practical concern** — 128 bits:
//!   with the birthday bound, ~2⁶⁴ distinct circuits are needed for a
//!   meaningful collision probability, far beyond any cache population;
//! * **exactly structural** — two circuits collide iff they have the same
//!   qubit count and the same gate sequence (including exact rotation
//!   angles). Gate order matters; semantic equivalence deliberately does not.
//!
//! The construction absorbs a tagged encoding of the circuit into two
//! independently-keyed 64-bit mixing lanes (SplitMix64 finalizer over a
//! running state, one lane per key). Each absorbed word is mixed
//! immediately, so the state never telescopes the way plain polynomial
//! hashes do on adversarial swaps.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::layers::LayeredCircuit;
use std::fmt;

/// A 128-bit structural fingerprint of a circuit.
///
/// Equal circuits (same width, same gate sequence, same exact angles)
/// always produce equal fingerprints; the converse holds up to 128-bit
/// collision probability.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The fingerprint as a fixed-width lowercase hex string (32 chars).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({:032x})", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// One 64-bit absorbing lane: SplitMix64's finalizer over a running state.
#[derive(Clone, Copy)]
struct Lane(u64);

impl Lane {
    #[inline]
    fn absorb(&mut self, word: u64) {
        let mut z = self.0 ^ word.wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        self.0 = z ^ (z >> 31);
    }
}

/// Streaming fingerprint builder (two independent 64-bit lanes).
pub struct FingerprintHasher {
    lo: Lane,
    hi: Lane,
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        FingerprintHasher::new()
    }
}

impl FingerprintHasher {
    pub fn new() -> FingerprintHasher {
        // Arbitrary fixed, distinct lane keys (digits of π and e).
        FingerprintHasher {
            lo: Lane(0x243F6A8885A308D3),
            hi: Lane(0xB7E151628AED2A6A),
        }
    }

    #[inline]
    pub fn write_u64(&mut self, word: u64) {
        self.lo.absorb(word);
        self.hi.absorb(word ^ 0xA5A5A5A5A5A5A5A5);
    }

    #[inline]
    pub fn write_i64(&mut self, word: i64) {
        self.write_u64(word as u64);
    }

    #[inline]
    pub fn write_gate(&mut self, g: &Gate) {
        // Tagged encoding: the tag keeps H(3) ≠ X(3), and angle num/den are
        // absorbed separately so RZ(1/2) ≠ RZ(2/1) even though both encode
        // two small integers.
        match *g {
            Gate::H(q) => {
                self.write_u64(1);
                self.write_u64(q as u64);
            }
            Gate::X(q) => {
                self.write_u64(2);
                self.write_u64(q as u64);
            }
            Gate::Rz(q, a) => {
                self.write_u64(3);
                self.write_u64(q as u64);
                self.write_i64(a.numerator());
                self.write_i64(a.denominator());
            }
            Gate::Cnot(c, t) => {
                self.write_u64(4);
                self.write_u64(c as u64);
                self.write_u64(t as u64);
            }
        }
    }

    pub fn finish(&self) -> Fingerprint {
        Fingerprint(((self.hi.0 as u128) << 64) | self.lo.0 as u128)
    }
}

/// Fingerprints a gate sequence together with its circuit width.
pub fn fingerprint_gates(num_qubits: u32, gates: &[Gate]) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_u64(num_qubits as u64);
    h.write_u64(gates.len() as u64);
    for g in gates {
        h.write_gate(g);
    }
    h.finish()
}

/// Domain-separation tag for the angle-abstracted fingerprint: absorbed
/// as the very first word, where [`fingerprint_gates`] absorbs the qubit
/// count, so the abstract and exact key spaces never share an input
/// stream (the mode-tag precedent set by `LayeredCircuit::fingerprint`).
const ABSTRACT_DOMAIN_TAG: u64 = 0x5345474142535452; // "SEGABSTR"

/// The canonical angle-class word standing in for every rotation value:
/// all `RZ` gates belong to one class, "some rotation", because an
/// angle-independent oracle by definition treats them all alike.
const ANGLE_CLASS_ANY: u64 = 0x524F54; // "ROT"

/// The angle-abstracted companion of [`fingerprint_gates`]: sensitive to
/// width, gate order, gate kinds, and operand wires, but NOT to rotation
/// angle values — every `RZ(q, θ)` is absorbed as `(tag, q, angle-class)`
/// with a canonical class word replacing `θ`'s numerator/denominator.
///
/// Two gate sequences collide under this fingerprint iff one is the other
/// with rotation angles substituted (up to 128-bit hash collision odds).
/// The segment cache uses it to key oracle results that are valid for a
/// whole structural equivalence class; the leading domain tag keeps the
/// abstract key space disjoint from [`fingerprint_gates`]'s exact-angle
/// one, so the two kinds of cache entry can share a table safely.
pub fn fingerprint_gates_abstract(num_qubits: u32, gates: &[Gate]) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_u64(ABSTRACT_DOMAIN_TAG);
    h.write_u64(num_qubits as u64);
    h.write_u64(gates.len() as u64);
    for g in gates {
        match *g {
            Gate::Rz(q, _) => {
                h.write_u64(3);
                h.write_u64(q as u64);
                h.write_u64(ANGLE_CLASS_ANY);
            }
            ref other => h.write_gate(other),
        }
    }
    h.finish()
}

impl Circuit {
    /// The circuit's structural [`Fingerprint`]: stable across processes,
    /// sensitive to width, gate order, gate kind, operands, and exact
    /// angles.
    pub fn fingerprint(&self) -> Fingerprint {
        fingerprint_gates(self.num_qubits, &self.gates)
    }
}

impl LayeredCircuit {
    /// Structural fingerprint of the layered circuit, defined as the
    /// fingerprint of its flattened gate sequence prefixed with a mode tag
    /// (so a layered circuit never collides with the flat circuit holding
    /// the same gates).
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        h.write_u64(0x4C41);
        h.write_u64(self.num_qubits as u64);
        h.write_u64(self.layers.len() as u64);
        for layer in &self.layers {
            h.write_u64(layer.0.len() as u64);
            for g in &layer.0 {
                h.write_gate(g);
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angle::Angle;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).rz(1, Angle::PI_4).x(2).cnot(1, 2);
        c
    }

    #[test]
    fn equal_circuits_hash_equal() {
        assert_eq!(sample().fingerprint(), sample().fingerprint());
        let empty_a = Circuit::new(5);
        let empty_b = Circuit::new(5);
        assert_eq!(empty_a.fingerprint(), empty_b.fingerprint());
    }

    #[test]
    fn known_value_is_stable_across_builds() {
        // Pins the algorithm: if these constants change, persisted cache
        // keys from other processes/versions silently stop matching.
        // Update them only with a deliberate format bump.
        assert_eq!(
            sample().fingerprint().to_hex(),
            "03fd8ab65ffd904d0ca01b920434ac0b"
        );
        assert_eq!(
            Circuit::new(1).fingerprint().to_hex(),
            "d372a042c8304242a476aac9a6c21889"
        );
    }

    #[test]
    fn width_matters() {
        assert_ne!(Circuit::new(3).fingerprint(), Circuit::new(4).fingerprint());
    }

    #[test]
    fn single_gate_edits_change_the_hash() {
        let base = sample();
        let fp = base.fingerprint();

        // Remove each gate in turn.
        for i in 0..base.len() {
            let mut edited = base.clone();
            edited.gates.remove(i);
            assert_ne!(edited.fingerprint(), fp, "removal at {i} collided");
        }
        // Change each gate's kind or operand.
        let edits: Vec<Gate> = vec![
            Gate::X(0),               // H(0) -> X(0)
            Gate::Cnot(1, 0),         // swap control/target
            Gate::Rz(1, Angle::PI_2), // different angle
            Gate::X(1),               // different wire
            Gate::Cnot(1, 0),         // different target
        ];
        for (i, g) in edits.into_iter().enumerate() {
            let mut edited = base.clone();
            edited.gates[i] = g;
            assert_ne!(edited.fingerprint(), fp, "edit at {i} collided");
        }
    }

    #[test]
    fn gate_order_matters() {
        let mut ab = Circuit::new(2);
        ab.h(0).x(1);
        let mut ba = Circuit::new(2);
        ba.x(1).h(0);
        assert_ne!(ab.fingerprint(), ba.fingerprint());
    }

    #[test]
    fn angle_numerator_denominator_not_confused() {
        let mut a = Circuit::new(1);
        a.rz(0, Angle::pi_frac(1, 2));
        let mut b = Circuit::new(1);
        b.rz(0, Angle::pi_frac(1, 3));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn tag_separates_gate_kinds_with_equal_operands() {
        let mut h = Circuit::new(4);
        h.h(3);
        let mut x = Circuit::new(4);
        x.x(3);
        assert_ne!(h.fingerprint(), x.fingerprint());
    }

    #[test]
    fn layered_and_flat_do_not_collide() {
        let c = sample();
        assert_ne!(c.fingerprint().0, c.layered().fingerprint().0);
        // But the layered fingerprint is itself deterministic.
        assert_eq!(c.layered().fingerprint(), c.layered().fingerprint());
    }

    #[test]
    fn abstract_fingerprint_erases_angles_only() {
        let mk = |a: Angle, b: Angle| {
            let mut c = Circuit::new(3);
            c.h(0).rz(1, a).cnot(0, 1).rz(2, b).x(2);
            c.gates
        };
        let base = fingerprint_gates_abstract(3, &mk(Angle::PI_4, Angle::PI_2));
        // Any angle substitution lands on the same abstract key...
        assert_eq!(
            base,
            fingerprint_gates_abstract(3, &mk(Angle::pi_frac(7, 9), Angle::ZERO))
        );
        // ...but structure and operands still matter.
        let mut moved = mk(Angle::PI_4, Angle::PI_2);
        moved.swap(0, 1);
        assert_ne!(base, fingerprint_gates_abstract(3, &moved));
        let mut rewired = mk(Angle::PI_4, Angle::PI_2);
        rewired[1] = Gate::Rz(0, Angle::PI_4);
        assert_ne!(base, fingerprint_gates_abstract(3, &rewired));
        assert_ne!(
            base,
            fingerprint_gates_abstract(4, &mk(Angle::PI_4, Angle::PI_2)),
            "width must still matter"
        );
    }

    #[test]
    fn abstract_and_exact_domains_are_disjoint() {
        // The domain tag keeps an abstract key from ever equalling the
        // exact key of the same (or any sampled) gate sequence, so both
        // kinds of entry can share one cache table.
        let seqs: Vec<Vec<Gate>> = vec![
            Vec::new(),
            sample().gates,
            vec![Gate::H(0)],
            vec![Gate::Rz(0, Angle::PI_4)],
            vec![Gate::Cnot(0, 1), Gate::Cnot(0, 1)],
        ];
        for a in &seqs {
            for b in &seqs {
                assert_ne!(
                    fingerprint_gates_abstract(3, a),
                    fingerprint_gates(3, b),
                    "abstract({a:?}) collided with exact({b:?})"
                );
            }
        }
    }

    #[test]
    fn abstract_known_value_is_stable_across_builds() {
        // Pins the abstract algorithm the same way the exact one is
        // pinned: segment-cache keys must match across processes.
        assert_eq!(
            fingerprint_gates_abstract(3, &sample().gates).to_hex(),
            "ec3d326487c6f46a28a8b0cef39e5249"
        );
        assert_eq!(
            fingerprint_gates_abstract(1, &[]).to_hex(),
            "0b2cf9df0b2c18ec96a80fc1113e0865"
        );
    }

    #[test]
    fn no_collisions_over_many_random_edits() {
        // Cheap collision-resistance smoke test: hash a few thousand
        // distinct single-gate variants and require all-distinct hashes.
        let mut seen = std::collections::HashSet::new();
        for q in 0..8u32 {
            for num in -64i64..64 {
                let mut c = Circuit::new(8);
                c.rz(q, Angle::pi_frac(num, 64));
                assert!(seen.insert(c.fingerprint()), "collision at q={q} num={num}");
            }
        }
        for a in 0..8u32 {
            for b in 0..8u32 {
                if a != b {
                    let mut c = Circuit::new(8);
                    c.cnot(a, b);
                    assert!(seen.insert(c.fingerprint()), "collision at cnot {a},{b}");
                }
            }
        }
    }
}
