//! The four-gate ISA of the paper: H, X, RZ, CNOT.

use crate::angle::Angle;
use std::fmt;

/// Index of a qubit wire within a circuit.
pub type Qubit = u32;

/// A quantum gate from the VOQC gate set used throughout the paper:
/// Hadamard, Pauli-X, Z-rotation, and controlled-NOT.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Gate {
    /// Hadamard on one qubit.
    H(Qubit),
    /// Pauli-X (NOT) on one qubit.
    X(Qubit),
    /// Z-rotation `RZ(θ) = diag(e^{-iθ/2}, e^{iθ/2})` on one qubit.
    Rz(Qubit, Angle),
    /// Controlled-NOT with `(control, target)`.
    Cnot(Qubit, Qubit),
}

impl Gate {
    /// The qubits this gate acts on, as `(first, second)`;
    /// `second` is `None` for single-qubit gates.
    #[inline]
    pub fn qubits(&self) -> (Qubit, Option<Qubit>) {
        match *self {
            Gate::H(q) | Gate::X(q) | Gate::Rz(q, _) => (q, None),
            Gate::Cnot(c, t) => (c, Some(t)),
        }
    }

    /// `true` iff the gate acts on qubit `q`.
    #[inline]
    pub fn acts_on(&self, q: Qubit) -> bool {
        match *self {
            Gate::H(a) | Gate::X(a) | Gate::Rz(a, _) => a == q,
            Gate::Cnot(c, t) => c == q || t == q,
        }
    }

    /// Largest qubit index mentioned by the gate.
    #[inline]
    pub fn max_qubit(&self) -> Qubit {
        match *self {
            Gate::H(q) | Gate::X(q) | Gate::Rz(q, _) => q,
            Gate::Cnot(c, t) => c.max(t),
        }
    }

    /// Two gates are *independent* (Section 2.2) iff they act on disjoint
    /// qubit sets; independent gates commute and may share a layer.
    #[inline]
    pub fn independent(&self, other: &Gate) -> bool {
        let (a1, a2) = self.qubits();
        !(other.acts_on(a1) || a2.is_some_and(|q| other.acts_on(q)))
    }

    /// `true` iff `self · other = I`, used for adjacent-pair cancellation.
    /// `RZ` pairs cancel when their angles sum to 0 (mod 2π).
    #[inline]
    pub fn is_inverse_of(&self, other: &Gate) -> bool {
        match (*self, *other) {
            (Gate::H(a), Gate::H(b)) | (Gate::X(a), Gate::X(b)) => a == b,
            (Gate::Rz(a, t1), Gate::Rz(b, t2)) => a == b && (t1 + t2).is_zero(),
            (Gate::Cnot(c1, t1), Gate::Cnot(c2, t2)) => c1 == c2 && t1 == t2,
            _ => false,
        }
    }

    /// `true` iff the gate is the identity (only `RZ(0)` qualifies).
    #[inline]
    pub fn is_identity(&self) -> bool {
        matches!(*self, Gate::Rz(_, a) if a.is_zero())
    }

    /// `true` for two-qubit gates (CNOT).
    #[inline]
    pub fn is_two_qubit(&self) -> bool {
        matches!(*self, Gate::Cnot(..))
    }

    /// The gate's own inverse (every gate in this set has one in the set).
    #[inline]
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::Rz(q, a) => Gate::Rz(q, -a),
            g => g,
        }
    }

    /// Short mnemonic used in histograms and QASM output.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::H(_) => "h",
            Gate::X(_) => "x",
            Gate::Rz(..) => "rz",
            Gate::Cnot(..) => "cx",
        }
    }
}

impl fmt::Debug for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::H(q) => write!(f, "H({q})"),
            Gate::X(q) => write!(f, "X({q})"),
            Gate::Rz(q, a) => write!(f, "Rz({q}, {a})"),
            Gate::Cnot(c, t) => write!(f, "Cnot({c}, {t})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubits_and_acts_on() {
        assert_eq!(Gate::H(3).qubits(), (3, None));
        assert_eq!(Gate::Cnot(1, 4).qubits(), (1, Some(4)));
        assert!(Gate::Cnot(1, 4).acts_on(1));
        assert!(Gate::Cnot(1, 4).acts_on(4));
        assert!(!Gate::Cnot(1, 4).acts_on(2));
        assert!(Gate::Rz(0, Angle::PI).acts_on(0));
    }

    #[test]
    fn independence() {
        assert!(Gate::H(0).independent(&Gate::H(1)));
        assert!(!Gate::H(0).independent(&Gate::H(0)));
        assert!(!Gate::Cnot(0, 1).independent(&Gate::X(1)));
        assert!(Gate::Cnot(0, 1).independent(&Gate::Cnot(2, 3)));
        assert!(!Gate::Cnot(0, 1).independent(&Gate::Cnot(1, 2)));
    }

    #[test]
    fn inverses() {
        assert!(Gate::H(2).is_inverse_of(&Gate::H(2)));
        assert!(!Gate::H(2).is_inverse_of(&Gate::H(3)));
        assert!(Gate::X(0).is_inverse_of(&Gate::X(0)));
        assert!(Gate::Cnot(0, 1).is_inverse_of(&Gate::Cnot(0, 1)));
        assert!(!Gate::Cnot(0, 1).is_inverse_of(&Gate::Cnot(1, 0)));
        assert!(Gate::Rz(0, Angle::PI_4).is_inverse_of(&Gate::Rz(0, Angle::SEVEN_PI_4)));
        assert!(!Gate::Rz(0, Angle::PI_4).is_inverse_of(&Gate::Rz(0, Angle::PI_4)));
        for g in [
            Gate::H(1),
            Gate::X(2),
            Gate::Rz(0, Angle::PI_4),
            Gate::Cnot(3, 5),
        ] {
            assert!(g.is_inverse_of(&g.inverse()));
        }
    }

    #[test]
    fn identity_detection() {
        assert!(Gate::Rz(0, Angle::ZERO).is_identity());
        assert!(!Gate::Rz(0, Angle::PI).is_identity());
        assert!(!Gate::H(0).is_identity());
    }
}
