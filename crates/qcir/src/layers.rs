//! The layered circuit representation (Sections 2.2 and 7.8).
//!
//! A *layer* is a set of mutually independent gates (disjoint qubits); the
//! number of layers is the circuit *depth*, the quantum analogue of span.
//! POPQC's generalized engine optimizes at layer granularity for the
//! depth-aware experiments (Figure 6), and the ASAP/ALAP schedules here also
//! implement the left-/right-justified orderings of Table 4.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// One layer: gates acting on pairwise-disjoint qubit sets.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Layer(pub Vec<Gate>);

impl Layer {
    /// Number of gates in the layer.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` iff the layer holds no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Checks that all gates in the layer are pairwise independent.
    pub fn is_well_formed(&self) -> bool {
        for (i, a) in self.0.iter().enumerate() {
            for b in &self.0[i + 1..] {
                if !a.independent(b) {
                    return false;
                }
            }
        }
        true
    }
}

/// A circuit organized into layers of independent gates.
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LayeredCircuit {
    /// Number of qubit wires.
    pub num_qubits: u32,
    /// Layers applied left to right.
    pub layers: Vec<Layer>,
}

impl LayeredCircuit {
    /// ASAP (as-soon-as-possible) layering: each gate is placed in the
    /// earliest layer after the last layer that touches one of its qubits.
    /// Flattening this layering yields the left-justified gate order.
    pub fn from_circuit(c: &Circuit) -> LayeredCircuit {
        let mut level = vec![0usize; c.num_qubits as usize];
        let mut layers: Vec<Layer> = Vec::new();
        for &g in &c.gates {
            let (a, b) = g.qubits();
            let l = match b {
                None => level[a as usize],
                Some(b) => level[a as usize].max(level[b as usize]),
            };
            if l == layers.len() {
                layers.push(Layer::default());
            }
            layers[l].0.push(g);
            level[a as usize] = l + 1;
            if let Some(b) = b {
                level[b as usize] = l + 1;
            }
        }
        LayeredCircuit {
            num_qubits: c.num_qubits,
            layers,
        }
    }

    /// ALAP (as-late-as-possible) layering: schedule the reversed circuit
    /// ASAP and flip it back. Flattening yields the right-justified order.
    pub fn from_circuit_alap(c: &Circuit) -> LayeredCircuit {
        let reversed = Circuit {
            num_qubits: c.num_qubits,
            gates: c.gates.iter().rev().copied().collect(),
        };
        let mut lc = Self::from_circuit(&reversed);
        lc.layers.reverse();
        for layer in &mut lc.layers {
            layer.0.reverse();
        }
        lc
    }

    /// Flattens the layers back into a gate-sequence circuit.
    pub fn to_circuit(&self) -> Circuit {
        Circuit {
            num_qubits: self.num_qubits,
            gates: self
                .layers
                .iter()
                .flat_map(|l| l.0.iter().copied())
                .collect(),
        }
    }

    /// Depth = number of layers.
    #[inline]
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total gate count across all layers.
    pub fn gate_count(&self) -> usize {
        self.layers.iter().map(Layer::len).sum()
    }

    /// The mixed cost function of Section 7.8: `10·depth + gates`.
    pub fn mixed_cost(&self) -> u64 {
        10 * self.depth() as u64 + self.gate_count() as u64
    }

    /// Checks that every layer is well formed and no layer is empty.
    pub fn is_well_formed(&self) -> bool {
        self.layers
            .iter()
            .all(|l| !l.is_empty() && l.is_well_formed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angle::Angle;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).rz(1, Angle::PI_4).x(2).cnot(1, 2);
        c
    }

    #[test]
    fn asap_layering_matches_depth() {
        let c = sample();
        let lc = c.layered();
        assert_eq!(lc.depth(), c.depth());
        assert_eq!(lc.gate_count(), c.len());
        assert!(lc.is_well_formed());
        // X(2) floats up into the first layer next to H(0).
        assert_eq!(lc.layers[0].0, vec![Gate::H(0), Gate::X(2)]);
    }

    #[test]
    fn alap_layering_preserves_semantics_order() {
        let c = sample();
        let lc = LayeredCircuit::from_circuit_alap(&c);
        assert_eq!(lc.depth(), c.depth());
        assert_eq!(lc.gate_count(), c.len());
        assert!(lc.is_well_formed());
        // In ALAP, X(2) is delayed to sit right before CNOT(1,2).
        let flat = lc.to_circuit();
        let pos_x = flat.gates.iter().position(|g| *g == Gate::X(2)).unwrap();
        let pos_cx = flat
            .gates
            .iter()
            .position(|g| *g == Gate::Cnot(1, 2))
            .unwrap();
        assert!(pos_x < pos_cx);
        assert!(pos_x >= 2, "ALAP should delay X(2), got position {pos_x}");
    }

    #[test]
    fn round_trip_preserves_per_qubit_order() {
        let c = sample();
        for flat in [c.left_justified(), c.right_justified()] {
            for q in 0..c.num_qubits {
                let orig: Vec<Gate> = c.gates.iter().filter(|g| g.acts_on(q)).copied().collect();
                let now: Vec<Gate> = flat
                    .gates
                    .iter()
                    .filter(|g| g.acts_on(q))
                    .copied()
                    .collect();
                assert_eq!(orig, now, "per-qubit order changed on wire {q}");
            }
        }
    }

    #[test]
    fn mixed_cost() {
        let c = sample();
        let lc = c.layered();
        assert_eq!(lc.mixed_cost(), 10 * lc.depth() as u64 + c.len() as u64);
    }

    #[test]
    fn layer_well_formedness_detects_conflicts() {
        assert!(Layer(vec![Gate::H(0), Gate::X(1)]).is_well_formed());
        assert!(!Layer(vec![Gate::H(0), Gate::Cnot(0, 1)]).is_well_formed());
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(4);
        let lc = c.layered();
        assert_eq!(lc.depth(), 0);
        assert_eq!(lc.to_circuit(), c);
    }
}
