//! The global work-stealing pool: per-worker deques, a shared injector,
//! persistent worker threads, and the fork-join scheduler built on them.
//!
//! ## Scheduling discipline
//!
//! Each worker owns a deque in Chase–Lev discipline: the owner pushes and
//! pops at the *bottom* (LIFO, keeping the hot, recently-split tasks
//! cache-local), thieves steal from the *top* (FIFO, taking the oldest —
//! and therefore largest — unsplit half, which they then re-split
//! themselves). The deques here are mutex-backed rather than lock-free:
//! POPQC's unit of work is a segment-oracle call (microseconds to
//! milliseconds), so a sub-microsecond uncontended lock is noise, and the
//! mutex keeps the stealing protocol obviously correct. Threads that are
//! not pool workers (CLI main, `qsvc` job workers, HTTP handlers) submit
//! through the shared injector and then *help*: while waiting for their
//! own tasks they pop and execute other runnable work, so a blocked
//! submitter never idles the machine.
//!
//! ## Why waiting always helps
//!
//! A thread waiting on a stolen task's latch never parks unconditionally:
//! it alternates between probing the latch, executing any runnable task it
//! can find, and a *bounded* park. The bound matters for deadlock freedom —
//! if every waiter parked indefinitely while a runnable task sat in the
//! injector, no thread would remain to execute it. The 200 µs re-check
//! bound makes that scenario transient instead of fatal. (Workers with
//! nothing in flight are different: they park *untimed* in `idle_wait`,
//! whose push/park handshake guarantees a wakeup, so an idle pool costs
//! zero CPU.)

use crate::job::{JobRef, Latch, StackJob};
use crate::metrics;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Condvar, Mutex, OnceLock};

/// Hard ceiling on pool width. The pool grows lazily toward the widest
/// parallelism ever requested (so explicit widths beyond the core count
/// oversubscribe, as the scoped-thread shim did, instead of silently
/// capping); this bounds that growth against runaway width requests.
pub(crate) const MAX_WORKERS: usize = 256;

/// Split factor for the adaptive grain: a width-`w` operation over `n`
/// items splits down to about `8·w` leaf tasks, so even when one leaf
/// costs orders of magnitude more than another, the remaining leaves
/// redistribute across the other workers.
const SPLIT_FACTOR: usize = 8;

thread_local! {
    /// Index of the pool worker running on this thread (`None` on
    /// external threads).
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
    /// Width installed by `with_width` (or inherited from the job being
    /// executed); `None` means "the process default".
    static INSTALLED_WIDTH: Cell<Option<usize>> = const { Cell::new(None) };
}

/// `POPQC_NUM_THREADS`, parsed once per process (`> 0` to count).
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("POPQC_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// `POPQC_GRAIN`, parsed once per process (`> 0` to count).
fn env_grain() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("POPQC_GRAIN")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// Cached like the env knobs: `current_width()` runs on every fork
/// point, and `available_parallelism` is a syscall on most platforms.
fn available_parallelism() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The one documented thread-count precedence, shared by this crate, the
/// rayon shim facade, and `qsvc`'s worker budgets:
///
/// 1. `POPQC_NUM_THREADS` (set and positive) pins the width outright;
/// 2. else an explicitly requested width (installed pool width,
///    `--threads-per-job`, …) wins;
/// 3. else `std::thread::available_parallelism()`.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    resolve_threads_from(env_threads(), requested)
}

/// [`resolve_threads`] over an explicit environment value (separated so
/// the precedence is testable without mutating process-global state).
pub(crate) fn resolve_threads_from(env: Option<usize>, requested: Option<usize>) -> usize {
    env.or(requested.filter(|&n| n > 0))
        .unwrap_or_else(available_parallelism)
        .clamp(1, MAX_WORKERS)
}

/// Width parallel operations started from this thread will run at.
pub fn current_width() -> usize {
    resolve_threads(INSTALLED_WIDTH.with(|c| c.get()))
}

/// Runs `f` with `width` installed as the parallelism level for every
/// parallel operation it performs (directly or through the rayon shim).
/// `width == 0` clears the override back to the process default. Note
/// `POPQC_NUM_THREADS` still outranks the installed width — see
/// [`resolve_threads`].
pub fn with_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
    with_installed_width(width, f)
}

/// Internal form shared with job execution (which installs the *job's*
/// width so nested parallelism inherits its ancestor's budget across
/// steals).
pub(crate) fn with_installed_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
    let value = if width == 0 { None } else { Some(width) };
    let prev = INSTALLED_WIDTH.with(|c| c.replace(value));
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            INSTALLED_WIDTH.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Explicit grain override (`popqc --grain`); `0` defers to `POPQC_GRAIN`,
/// then to the adaptive per-operation default.
static GRAIN_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the global leaf-task grain size: recursive splitting stops once a
/// subrange holds at most this many items. `0` restores the default
/// (`POPQC_GRAIN` if set, else adaptive: about 8 leaf tasks per worker
/// of the operation's width).
pub fn set_grain(grain: usize) {
    GRAIN_OVERRIDE.store(grain, Relaxed);
}

/// The configured grain size (`0` = adaptive).
pub fn configured_grain() -> usize {
    let explicit = GRAIN_OVERRIDE.load(Relaxed);
    if explicit > 0 {
        explicit
    } else {
        env_grain()
    }
}

/// The grain an `n`-item operation at `width` will split down to.
pub(crate) fn effective_grain(n: usize, width: usize) -> usize {
    let configured = configured_grain();
    if configured > 0 {
        configured
    } else {
        n.div_ceil(width.max(1) * SPLIT_FACTOR).max(1)
    }
}

struct Worker {
    deque: Mutex<VecDeque<JobRef>>,
}

pub(crate) struct Pool {
    /// Fixed-capacity worker slots; only `started` of them have a live
    /// thread, but pre-allocating all slots keeps the deque addresses
    /// stable while the pool grows.
    workers: Vec<Worker>,
    injector: Mutex<VecDeque<JobRef>>,
    /// Detached (fire-and-forget) tasks from [`spawn_detached`]. A queue
    /// of its own, deliberately NOT the injector: helping waiters in
    /// `wait_for` drain the injector while blocked on a latch, and a
    /// detached task may legitimately block for a long time (socket
    /// reads in a connection handler) — stealing one there would stall a
    /// fork-join join point behind unrelated I/O. Only the `worker_main`
    /// loop, with nothing else in flight, takes from this queue.
    detached: Mutex<VecDeque<Box<dyn FnOnce() + Send>>>,
    /// Worker threads spawned so far (pool grows lazily toward the widest
    /// requested parallelism).
    started: AtomicUsize,
    grow_lock: Mutex<()>,
    /// Workers parked (or about to park) in `idle_wait` — the pusher
    /// side of the park/wake handshake reads it, see `idle_wait`.
    idle: AtomicUsize,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    // --- statistics (monotonic, relaxed: they are telemetry, not sync) ---
    pub(crate) parallel_ops: AtomicU64,
    pub(crate) tasks_executed: AtomicU64,
    pub(crate) splits: AtomicU64,
    pub(crate) steals: AtomicU64,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// The process-wide pool, created on first use (no threads are spawned
/// until the first parallel operation asks for them).
pub(crate) fn global() -> &'static Pool {
    POOL.get_or_init(|| {
        let mut workers = Vec::with_capacity(MAX_WORKERS);
        workers.resize_with(MAX_WORKERS, || Worker {
            deque: Mutex::new(VecDeque::new()),
        });
        Pool {
            workers,
            injector: Mutex::new(VecDeque::new()),
            detached: Mutex::new(VecDeque::new()),
            started: AtomicUsize::new(0),
            grow_lock: Mutex::new(()),
            idle: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            parallel_ops: AtomicU64::new(0),
            tasks_executed: AtomicU64::new(0),
            splits: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        }
    })
}

/// The pool if any parallel operation has created it yet (stats probes
/// must not force worker threads into existence).
pub(crate) fn global_if_started() -> Option<&'static Pool> {
    POOL.get()
}

/// Pre-grows the pool to at least `workers` threads (capped at the
/// pool's hard ceiling of 256).
///
/// Individual operations only grow the pool to their own width, so a
/// service expecting `J` concurrent jobs of width `w` each should
/// reserve `J·w` up front — otherwise total pool capacity would stay at
/// `w` and concurrent jobs would share it (the pool is work-conserving,
/// not partitioned: any worker may execute any job's tasks).
pub fn reserve_workers(workers: usize) {
    if workers > 1 {
        global().ensure_workers(workers);
    }
}

/// Runs `f` on a pool worker thread, detached from any fork-join scope —
/// the executor's "spawn a long-lived task" facility (connection
/// handlers, background sweeps). Returns immediately; the task's panics
/// are contained and there is no result channel (build one with the
/// closure if needed).
///
/// Detached tasks only ever run on a worker with no join in flight, so
/// they may block (socket reads, timeouts) without wedging fork-join
/// waiters; the cost is that a blocked detached task occupies its worker
/// until it returns. Callers expecting `N` concurrently blocking tasks
/// should [`reserve_workers`]`(N + engine width)` up front, exactly like
/// a service sizing concurrent jobs.
pub fn spawn_detached(f: impl FnOnce() + Send + 'static) {
    let pool = global();
    // At least one worker must exist or the task would never run; beyond
    // that, sizing is the caller's contract (see the doc comment).
    pool.ensure_workers(1);
    pool.detached
        .lock()
        .expect("detached queue poisoned")
        .push_back(Box::new(f));
    pool.wake_one();
}

impl Pool {
    /// Grows the pool to at least `width` worker threads (capped at
    /// [`MAX_WORKERS`]). Threads persist for the process lifetime — this
    /// is what makes consecutive parallel operations land on stable
    /// thread ids instead of spawning per call.
    pub(crate) fn ensure_workers(&'static self, width: usize) {
        let want = width.min(MAX_WORKERS);
        if self.started.load(Relaxed) >= want {
            return;
        }
        let _guard = self.grow_lock.lock().expect("pool grow lock poisoned");
        let have = self.started.load(Relaxed);
        for index in have..want {
            std::thread::Builder::new()
                .name(format!("qexec-{index}"))
                .spawn(move || self.worker_main(index))
                .expect("spawn qexec worker");
        }
        if want > have {
            self.started.store(want, Relaxed);
            metrics::pool_workers().set(want as i64);
        }
    }

    pub(crate) fn started_workers(&self) -> usize {
        self.started.load(Relaxed)
    }

    fn worker_main(&'static self, index: usize) {
        WORKER_INDEX.with(|c| c.set(Some(index)));
        loop {
            while let Some(job) = self.find_work(Some(index)) {
                self.execute(job);
            }
            // Fork-join work drained: a detached task may block at will
            // now, because this worker has no join point above it.
            if let Some(task) = self.pop_detached() {
                self.run_detached(task);
                continue;
            }
            self.idle_wait(index);
        }
    }

    fn pop_detached(&self) -> Option<Box<dyn FnOnce() + Send>> {
        self.detached
            .lock()
            .expect("detached queue poisoned")
            .pop_front()
    }

    /// Runs one detached task. Panics are swallowed (there is no caller
    /// frame to re-raise into), leaving the worker loop operational.
    fn run_detached(&self, task: Box<dyn FnOnce() + Send>) {
        self.tasks_executed.fetch_add(1, Relaxed);
        metrics::tasks_total().inc();
        let _ = panic::catch_unwind(AssertUnwindSafe(task));
    }

    /// Executes one scheduler-owned job. Panics inside the job are
    /// captured into its result slot (see `StackJob`), so this never
    /// unwinds and the pool cannot be poisoned by a task panic.
    fn execute(&self, job: JobRef) {
        self.tasks_executed.fetch_add(1, Relaxed);
        metrics::tasks_total().inc();
        // SAFETY: every JobRef in the scheduler came from a StackJob whose
        // frame is blocked until the job's latch sets, and each is
        // executed exactly once (popped or stolen from exactly one place).
        unsafe { job.execute() }
    }

    /// Pops/steals one runnable job: own deque bottom first (LIFO), then
    /// the injector, then the top of the other workers' deques.
    fn find_work(&self, me: Option<usize>) -> Option<JobRef> {
        if let Some(i) = me {
            if let Some(job) = self.workers[i]
                .deque
                .lock()
                .expect("deque poisoned")
                .pop_back()
            {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().expect("injector poisoned").pop_front() {
            return Some(job);
        }
        let n = self.started.load(Relaxed);
        if n == 0 {
            return None;
        }
        // Rotate the first victim so thieves do not convoy on worker 0.
        static NEXT_VICTIM: AtomicUsize = AtomicUsize::new(0);
        let start = NEXT_VICTIM.fetch_add(1, Relaxed);
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(job) = self.workers[victim]
                .deque
                .lock()
                .expect("deque poisoned")
                .pop_front()
            {
                self.steals.fetch_add(1, Relaxed);
                metrics::steals_total().inc();
                return Some(job);
            }
        }
        None
    }

    /// Makes `job` available to the pool: bottom of the local deque for
    /// workers, the shared injector for external threads.
    fn push(&self, me: Option<usize>, job: JobRef) {
        match me {
            Some(i) => self.workers[i]
                .deque
                .lock()
                .expect("deque poisoned")
                .push_back(job),
            None => self
                .injector
                .lock()
                .expect("injector poisoned")
                .push_back(job),
        }
        self.wake_one();
    }

    /// Reclaims the just-pushed job from the bottom of our deque iff it
    /// was not stolen meanwhile. By the fork-join discipline everything a
    /// completed first half pushed above it has already been consumed, so
    /// the bottom is either this job or (if stolen) an outer pending one
    /// that must stay put.
    fn try_pop_exact(&self, i: usize, ptr: *const ()) -> Option<JobRef> {
        let mut deque = self.workers[i].deque.lock().expect("deque poisoned");
        if deque.back().map(JobRef::data_ptr) == Some(ptr) {
            deque.pop_back()
        } else {
            None
        }
    }

    /// External-thread counterpart of `try_pop_exact`: removes the job
    /// from the injector by identity if no worker picked it up yet.
    fn take_from_injector(&self, ptr: *const ()) -> Option<JobRef> {
        let mut injector = self.injector.lock().expect("injector poisoned");
        let pos = injector.iter().position(|j| j.data_ptr() == ptr)?;
        injector.remove(pos)
    }

    /// Blocks until `latch` sets, executing any other runnable work in the
    /// meantime (see the module docs for why waiting must keep helping).
    fn wait_for(&self, latch: &Latch, me: Option<usize>) {
        let mut idle_rounds = 0u32;
        while !latch.probe() {
            if let Some(job) = self.find_work(me) {
                self.execute(job);
                idle_rounds = 0;
            } else {
                idle_rounds += 1;
                if idle_rounds < 4 {
                    std::thread::yield_now();
                } else {
                    latch.wait_brief();
                }
            }
        }
    }

    /// Parks an idle worker — untimed, so an idle pool burns zero CPU —
    /// until new work is pushed.
    ///
    /// The lost-wakeup race is closed by a Dekker-style handshake with
    /// [`wake_one`](Self::wake_one): the worker advertises itself idle
    /// (SeqCst) *before* its final work re-check, while a pusher
    /// publishes its job *before* reading the idle count (SeqCst). In
    /// every interleaving either the re-check sees the job (pusher's
    /// deque unlock happens-before our lock of the same deque) or the
    /// pusher sees the idle count and notifies under `sleep_lock` —
    /// which it cannot acquire between our re-check and our wait, since
    /// we hold it across both. An untimed park therefore never strands
    /// runnable work.
    fn idle_wait(&self, me: usize) {
        use std::sync::atomic::Ordering::SeqCst;
        let guard = self.sleep_lock.lock().expect("sleep lock poisoned");
        self.idle.fetch_add(1, SeqCst);
        if self.has_visible_work(me) {
            self.idle.fetch_sub(1, SeqCst);
            return;
        }
        let _guard = self.sleep_cv.wait(guard).expect("sleep lock poisoned");
        self.idle.fetch_sub(1, SeqCst);
    }

    /// Whether any deque, the injector, or the detached queue holds work
    /// this worker could take. Its own deque is skipped: only the owner
    /// pushes there, and the owner is the one asking.
    fn has_visible_work(&self, me: usize) -> bool {
        if !self.injector.lock().expect("injector poisoned").is_empty() {
            return true;
        }
        if !self
            .detached
            .lock()
            .expect("detached queue poisoned")
            .is_empty()
        {
            return true;
        }
        let n = self.started.load(Relaxed);
        (0..n).any(|i| {
            i != me
                && !self.workers[i]
                    .deque
                    .lock()
                    .expect("deque poisoned")
                    .is_empty()
        })
    }

    fn wake_one(&self) {
        use std::sync::atomic::Ordering::SeqCst;
        // The job was pushed (and its deque mutex released) before this
        // SeqCst read — see the handshake note on `idle_wait`.
        if self.idle.load(SeqCst) > 0 {
            let _guard = self.sleep_lock.lock().expect("sleep lock poisoned");
            self.sleep_cv.notify_one();
        }
    }
}

/// Runs `a` and `b`, potentially in parallel, and returns both results.
///
/// `b` is made stealable while the calling thread runs `a`; if nobody
/// stole it the caller reclaims and runs it inline (the common, zero-sync
/// fast path), otherwise the caller *helps* — executing other runnable
/// tasks — until the thief finishes. A panic in either closure (including
/// a stolen `b` running on another worker) is re-raised on the calling
/// thread with its original payload, after both closures have settled, and
/// leaves the pool fully operational.
///
/// At an effective width of 1 ([`current_width`]) this degenerates to
/// strictly sequential `a(); b()` on the calling thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let width = current_width();
    if width <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let pool = global();
    pool.ensure_workers(width);
    pool.splits.fetch_add(1, Relaxed);
    metrics::splits_total().inc();

    let b_job = StackJob::new(b, width);
    // SAFETY: this frame stays alive (and this function does not return)
    // until b_job's latch is set — the job is executed inline below or
    // waited for; the ref enters the scheduler exactly once.
    let b_ref = unsafe { b_job.as_job_ref() };
    let b_ptr = b_ref.data_ptr();
    let me = WORKER_INDEX.with(|c| c.get());
    pool.push(me, b_ref);

    let ra = panic::catch_unwind(AssertUnwindSafe(a));

    let reclaimed = match me {
        Some(i) => pool.try_pop_exact(i, b_ptr),
        None => pool.take_from_injector(b_ptr),
    };
    match reclaimed {
        Some(job) => pool.execute(job),
        None => pool.wait_for(&b_job.latch, me),
    }
    // SAFETY: the latch is set (inline execution sets it synchronously;
    // wait_for returns only after probing it true), exactly one take.
    let rb = unsafe { b_job.take_result() };

    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(payload), _) => panic::resume_unwind(payload),
        (Ok(_), Err(payload)) => panic::resume_unwind(payload),
    }
}

/// Applies `f` to every item in parallel, preserving order.
///
/// The index range splits in half recursively down to the effective grain
/// (see [`set_grain`]); each half becomes a stealable task, and a stolen
/// half re-splits on the thief, so an expensive prefix cannot strand the
/// rest of the items on one worker the way contiguous per-thread chunking
/// does. Results land at their item's index, so output order (and
/// therefore every consumer's result) is identical to sequential
/// execution regardless of the steal schedule.
pub fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let width = current_width();
    if n <= 1 || width <= 1 {
        return items.into_iter().map(f).collect();
    }
    let grain = effective_grain(n, width);
    if grain >= n {
        return items.into_iter().map(f).collect();
    }
    let pool = global();
    pool.ensure_workers(width);
    pool.parallel_ops.fetch_add(1, Relaxed);
    metrics::parallel_ops_total().inc();
    let _op_timer = metrics::parallel_op_duration().start_timer();
    // The caller's ambient trace (if any): the op span carries how much
    // stealing this particular map triggered, attributed pool-wide —
    // the deltas are global counters, exact only when ops don't overlap.
    let ctx = qobs::trace::current();
    let mut span = if ctx.handle.enabled() {
        let mut s = ctx.handle.span("parallel_op", ctx.parent);
        s.attr("items", n);
        s.attr("width", width);
        s.attr("grain", grain);
        Some((
            s,
            pool.steals.load(Relaxed),
            pool.tasks_executed.load(Relaxed),
        ))
    } else {
        None
    };

    let mut src: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut dst: Vec<Option<R>> = Vec::with_capacity(n);
    dst.resize_with(n, || None);
    map_rec(&mut src, &mut dst, &f, grain);
    if let Some((span, steals0, tasks0)) = &mut span {
        span.attr("steals", pool.steals.load(Relaxed).saturating_sub(*steals0));
        span.attr(
            "tasks",
            pool.tasks_executed.load(Relaxed).saturating_sub(*tasks0),
        );
    }
    dst.into_iter()
        .map(|slot| slot.expect("parallel map result missing"))
        .collect()
}

fn map_rec<T, R, F>(src: &mut [Option<T>], dst: &mut [Option<R>], f: &F, grain: usize)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    debug_assert_eq!(src.len(), dst.len());
    if src.len() <= grain {
        for (s, d) in src.iter_mut().zip(dst.iter_mut()) {
            *d = Some(f(s.take().expect("parallel map item consumed twice")));
        }
        return;
    }
    let mid = src.len() / 2;
    let (s1, s2) = src.split_at_mut(mid);
    let (d1, d2) = dst.split_at_mut(mid);
    join(|| map_rec(s1, d1, f, grain), || map_rec(s2, d2, f, grain));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_env_then_requested_then_available() {
        // Env always wins.
        assert_eq!(resolve_threads_from(Some(3), Some(8)), 3);
        assert_eq!(resolve_threads_from(Some(3), None), 3);
        // Then the explicit request.
        assert_eq!(resolve_threads_from(None, Some(8)), 8);
        // A zero request means "default", not zero threads.
        let avail = available_parallelism();
        assert_eq!(resolve_threads_from(None, Some(0)), avail);
        assert_eq!(resolve_threads_from(None, None), avail);
        // Runaway widths clamp to the worker ceiling.
        assert_eq!(resolve_threads_from(None, Some(100_000)), MAX_WORKERS);
    }

    #[test]
    fn adaptive_grain_scales_with_width() {
        // ~SPLIT_FACTOR leaves per worker, never below one item.
        assert_eq!(effective_grain(1024, 4), 1024_usize.div_ceil(32));
        assert_eq!(effective_grain(3, 8), 1);
    }

    #[test]
    fn width_guard_nests_and_restores() {
        // POPQC_NUM_THREADS outranks the installed width by design, so
        // these exact-width assertions only hold without it.
        if std::env::var_os("POPQC_NUM_THREADS").is_some() {
            eprintln!("skipping width-pinned assertions: POPQC_NUM_THREADS is set");
            return;
        }
        let outer = current_width();
        with_width(5, || {
            assert_eq!(current_width(), 5);
            with_width(2, || assert_eq!(current_width(), 2));
            assert_eq!(current_width(), 5);
            // 0 clears back to the process default.
            with_width(0, || assert_eq!(current_width(), resolve_threads(None)));
        });
        assert_eq!(current_width(), outer);
    }
}
