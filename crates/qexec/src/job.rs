//! Lifetime-erased stack jobs and the completion latch they signal.
//!
//! A parallel operation keeps its closures (and everything they borrow) on
//! the *caller's* stack; what travels through the scheduler is a [`JobRef`]
//! — a raw pointer plus an execute function. This is sound for exactly one
//! reason, upheld by every caller in this crate: **the frame that created a
//! [`StackJob`] never returns before the job's latch is set**, either by
//! executing the job inline or by waiting on the latch. The unsafe surface
//! is confined to this module and `pool.rs`'s execute sites.

use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A one-shot completion flag with both lock-free probing (for helping
/// loops) and blocking waits (for external callers).
pub(crate) struct Latch {
    done: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Latch {
    pub(crate) fn new() -> Latch {
        Latch {
            done: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Whether the latch has been set. `Acquire` pairs with the `Release`
    /// in [`set`](Self::set), so a `true` probe also publishes the job's
    /// result write.
    #[inline]
    pub(crate) fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Sets the latch and wakes every waiter. Taking the lock before
    /// notifying closes the probe-then-wait window: a waiter that saw
    /// `false` either still holds the lock (the notify queues behind it)
    /// or is already parked (the notify reaches it).
    pub(crate) fn set(&self) {
        self.done.store(true, Ordering::Release);
        let _guard = self.lock.lock().expect("latch lock poisoned");
        self.cv.notify_all();
    }

    /// Parks briefly (or until set). Helping loops call this between
    /// steal attempts so an idle waiter neither spins hot nor sleeps
    /// through new work: the timeout guarantees the loop re-checks the
    /// deques even if it misses a wakeup.
    pub(crate) fn wait_brief(&self) {
        let guard = self.lock.lock().expect("latch lock poisoned");
        if !self.probe() {
            let _ = self
                .cv
                .wait_timeout(guard, Duration::from_micros(200))
                .expect("latch lock poisoned");
        }
    }
}

/// A type-erased, `Send`-able handle to a [`StackJob`] living in some
/// caller's stack frame. Executing it is `unsafe` because the pointer's
/// validity rests on the stack-frame discipline documented at module level.
pub(crate) struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only a pointer to a StackJob whose closure is
// `Send`; the job executes on exactly one thread, and the creating frame
// outlives the execution (it waits on the latch).
unsafe impl Send for JobRef {}

impl JobRef {
    /// Identity of the underlying job, used to recognize one's own task
    /// when popping it back before it was stolen.
    #[inline]
    pub(crate) fn data_ptr(&self) -> *const () {
        self.data
    }

    /// Runs the job. Never unwinds: the closure runs under
    /// `catch_unwind` and panics are delivered through the job's result
    /// slot, so a panicking task cannot poison the worker that executes it.
    ///
    /// # Safety
    ///
    /// The [`StackJob`] this was created from must still be alive and not
    /// yet executed.
    pub(crate) unsafe fn execute(self) {
        (self.exec)(self.data)
    }
}

/// A fork-join task whose closure, result slot, and latch all live in the
/// forking caller's stack frame.
pub(crate) struct StackJob<F, R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    pub(crate) latch: Latch,
    /// Parallel width the spawning computation ran under; installed on the
    /// executing thread for the job's duration so nested parallel calls
    /// inherit their ancestor's budget across steals.
    width: usize,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(f: F, width: usize) -> StackJob<F, R> {
        StackJob {
            f: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            latch: Latch::new(),
            width,
        }
    }

    /// Type-erases this job for the scheduler.
    ///
    /// # Safety
    ///
    /// The caller must keep `self` alive and its frame blocked until
    /// `self.latch` is set, and must hand the returned ref to the
    /// scheduler at most once.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const StackJob<F, R> as *const (),
            exec: Self::execute_erased,
        }
    }

    unsafe fn execute_erased(ptr: *const ()) {
        let this = &*(ptr as *const StackJob<F, R>);
        let f = (*this.f.get()).take().expect("stack job executed twice");
        let width = this.width;
        let result =
            crate::pool::with_installed_width(width, || panic::catch_unwind(AssertUnwindSafe(f)));
        *this.result.get() = Some(result);
        this.latch.set();
    }

    /// Takes the result after the latch was observed set.
    ///
    /// # Safety
    ///
    /// Only after `self.latch.probe()` returned `true` (the Acquire probe
    /// publishes the executor's result write), and at most once.
    pub(crate) unsafe fn take_result(&self) -> std::thread::Result<R> {
        (*self.result.get())
            .take()
            .expect("stack job result taken before completion")
    }
}
