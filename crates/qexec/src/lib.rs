//! # popqc-exec — the work-stealing executor behind every parallel hot path
//!
//! POPQC's round-based `parmap` is only as fast as its slowest chunk: a
//! `search`-oracle call on one 2Ω-segment can cost orders of magnitude
//! more than a `rule_based` call on another, so splitting a round into one
//! contiguous chunk per thread (what the scoped-thread rayon shim did)
//! serializes the whole round behind the hot chunk and flattens the
//! paper's Figure 3-style scaling curves. This crate replaces that model
//! with a proper executor subsystem:
//!
//! * **a persistent global worker pool** — created lazily on the first
//!   parallel operation, sized by the documented precedence
//!   `POPQC_NUM_THREADS` > installed width > available parallelism
//!   ([`resolve_threads`]), and grown (never shrunk) toward the widest
//!   parallelism requested, so no `par_iter`/`join` call site ever spawns
//!   per-call OS threads again;
//! * **per-worker deques with a shared injector** — Chase–Lev discipline
//!   (owner LIFO at the bottom, thieves FIFO from the top), external
//!   threads submitting through the injector and helping while they wait;
//! * **recursive fork-join splitting** — [`par_map_vec`] halves the index
//!   range down to a tunable grain ([`set_grain`], `POPQC_GRAIN`,
//!   `popqc --grain`; default adaptive, ~8 leaves per worker), and a
//!   stolen half re-splits on the thief, so skewed per-item costs
//!   rebalance instead of stranding a round behind one chunk;
//! * **panic capture across steals** — a panic in a stolen task is
//!   re-raised on the forking caller with its original payload and leaves
//!   the pool fully operational;
//! * **observability** — [`stats`] snapshots the executor's counters
//!   ([`ExecStats`]), surfaced end to end through `ServiceStats`,
//!   `GET /v1/stats`, and the bench reports.
//!
//! Results are deterministic: [`par_map_vec`] writes each result at its
//! item's index, so output is bit-identical to sequential execution for
//! every pool width and steal schedule.
//!
//! The workspace's rayon shim (`crates/shims/rayon`) is a thin facade over
//! this crate, so every existing `par_iter`/`into_par_iter`/
//! `par_chunks_mut`/`join`/`ThreadPool::install` call site gets
//! work-stealing with zero source changes; when the workspace moves to the
//! real crates.io rayon, this crate's role is played by rayon's own pool
//! and only the shim manifest changes.

#![deny(missing_docs)]

mod job;
mod metrics;
mod pool;

pub use metrics::describe_metrics;
pub use pool::{
    configured_grain, current_width, join, par_map_vec, reserve_workers, resolve_threads,
    set_grain, spawn_detached, with_width,
};

/// A point-in-time snapshot of the executor's process-wide counters.
///
/// All counters are monotonic over the **process lifetime** — the pool is
/// global and persistent, so a snapshot taken after two jobs holds the
/// cumulative totals of both, never per-job figures. To attribute work to
/// one interval (a job, a request, a benchmark pass), take a snapshot
/// before and after and diff them with
/// [`delta_since`](ExecStats::delta_since); rates come from the same
/// differencing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Worker threads spawned so far (0 until the first parallel
    /// operation; grows toward the widest parallelism requested).
    pub workers: u64,
    /// Configured leaf grain size (`0` = adaptive, see [`set_grain`]).
    pub grain: u64,
    /// Order-preserving parallel map/for_each operations that actually
    /// went parallel (sequential fast paths are not counted).
    pub parallel_ops: u64,
    /// Forked (stealable) tasks executed; first halves run inline on
    /// their forker and are not counted.
    pub tasks_executed: u64,
    /// Fork points: `join` calls that made their second half stealable.
    pub splits: u64,
    /// Tasks a worker took from another worker's deque (the injector is
    /// not counted: taking submitted work is not stealing).
    pub steals: u64,
}

impl ExecStats {
    /// The work done since `baseline` (an earlier [`snapshot`]): the four
    /// monotonic counters are differenced (saturating, so snapshots
    /// passed in the wrong order read as zero instead of wrapping), while
    /// `workers` and `grain` — instantaneous configuration, not work —
    /// carry over from `self`, the later snapshot.
    pub fn delta_since(&self, baseline: &ExecStats) -> ExecStats {
        ExecStats {
            workers: self.workers,
            grain: self.grain,
            parallel_ops: self.parallel_ops.saturating_sub(baseline.parallel_ops),
            tasks_executed: self.tasks_executed.saturating_sub(baseline.tasks_executed),
            splits: self.splits.saturating_sub(baseline.splits),
            steals: self.steals.saturating_sub(baseline.steals),
        }
    }
}

/// Snapshots the executor counters. Never forces the pool (or its worker
/// threads) into existence: before the first parallel operation every
/// counter is zero and only `grain` reflects configuration.
pub fn stats() -> ExecStats {
    use std::sync::atomic::Ordering::Relaxed;
    let grain = configured_grain() as u64;
    match pool::global_if_started() {
        None => ExecStats {
            grain,
            ..ExecStats::default()
        },
        Some(pool) => ExecStats {
            workers: pool.started_workers() as u64,
            grain,
            parallel_ops: pool.parallel_ops.load(Relaxed),
            tasks_executed: pool.tasks_executed.load(Relaxed),
            splits: pool.splits.load(Relaxed),
            steals: pool.steals.load(Relaxed),
        },
    }
}

/// Alias for [`stats`], named for how it should be used: as one end of a
/// [`ExecStats::delta_since`] pair bounding the interval of interest.
pub fn snapshot() -> ExecStats {
    stats()
}

#[cfg(test)]
mod stats_tests {
    use super::*;

    #[test]
    fn delta_since_diffs_counters_and_keeps_gauges() {
        let before = ExecStats {
            workers: 4,
            grain: 0,
            parallel_ops: 10,
            tasks_executed: 100,
            splits: 50,
            steals: 7,
        };
        let after = ExecStats {
            workers: 8, // pool grew between the snapshots
            grain: 16,
            parallel_ops: 12,
            tasks_executed: 180,
            splits: 90,
            steals: 9,
        };
        let delta = after.delta_since(&before);
        assert_eq!(
            delta,
            ExecStats {
                workers: 8,
                grain: 16,
                parallel_ops: 2,
                tasks_executed: 80,
                splits: 40,
                steals: 2,
            }
        );
        // Reversed arguments saturate to zero work, not wrap-around.
        let reversed = before.delta_since(&after);
        assert_eq!(reversed.tasks_executed, 0);
        assert_eq!(reversed.parallel_ops, 0);
    }

    #[test]
    fn snapshot_is_stats() {
        // Both entry points read the same cells; the counters are
        // monotonic so a later snapshot can only be >=.
        let a = snapshot();
        let b = stats();
        assert!(b.tasks_executed >= a.tasks_executed);
        assert_eq!(a.grain, b.grain);
    }
}
