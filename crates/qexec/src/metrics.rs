//! The executor's `popqc-obs` instruments. Counters mirror the
//! [`ExecStats`](crate::ExecStats) cells (both are maintained at the
//! same points in `pool.rs`), so a Prometheus scrape and `GET /v1/stats`
//! can never disagree about what the pool did.

/// Forked tasks executed (inline first halves excluded) — mirrors
/// `ExecStats::tasks_executed`.
pub(crate) fn tasks_total() -> &'static qobs::Counter {
    qobs::static_counter!(
        "popqc_exec_tasks_total",
        "Forked (stealable) tasks executed by the work-stealing pool.",
    )
}

/// Tasks taken from another worker's deque — mirrors `ExecStats::steals`.
pub(crate) fn steals_total() -> &'static qobs::Counter {
    qobs::static_counter!(
        "popqc_exec_steals_total",
        "Tasks a pool worker stole from another worker's deque.",
    )
}

/// Fork points — mirrors `ExecStats::splits`.
pub(crate) fn splits_total() -> &'static qobs::Counter {
    qobs::static_counter!(
        "popqc_exec_splits_total",
        "Fork points: join calls that made their second half stealable.",
    )
}

/// Parallel operations that actually went parallel — mirrors
/// `ExecStats::parallel_ops`.
pub(crate) fn parallel_ops_total() -> &'static qobs::Counter {
    qobs::static_counter!(
        "popqc_exec_parallel_ops_total",
        "Parallel map operations that went parallel (sequential fast paths excluded).",
    )
}

/// Worker threads spawned so far — mirrors `ExecStats::workers`.
pub(crate) fn pool_workers() -> &'static qobs::Gauge {
    qobs::static_gauge!(
        "popqc_exec_pool_workers",
        "Worker threads the global pool has spawned (persistent; grows, never shrinks).",
    )
}

/// Wall-clock duration of each parallel map operation, as seen by the
/// submitting thread.
pub(crate) fn parallel_op_duration() -> &'static qobs::Histogram {
    qobs::static_histogram!(
        "popqc_exec_parallel_op_duration_seconds",
        "Wall-clock duration of each parallel map operation.",
        &qobs::LATENCY_BUCKETS,
    )
}

/// Registers every executor metric family without recording anything, so
/// the series inventory is complete from the first scrape rather than
/// appearing as parallel work happens.
pub fn describe_metrics() {
    tasks_total();
    steals_total();
    splits_total();
    parallel_ops_total();
    pool_workers();
    parallel_op_duration();
}
