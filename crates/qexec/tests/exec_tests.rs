//! Executor correctness under stealing: nested fork-join, order
//! preservation, panic propagation across steals, sequential degeneration
//! at width 1, and persistent-pool thread reuse.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Duration;

/// Restores the process-global grain override on drop, so a failing
/// assertion cannot leak a test's grain into the rest of the binary.
struct GrainGuard;
impl GrainGuard {
    fn set(grain: usize) -> GrainGuard {
        qexec::set_grain(grain);
        GrainGuard
    }
}
impl Drop for GrainGuard {
    fn drop(&mut self) {
        qexec::set_grain(0);
    }
}

/// `POPQC_NUM_THREADS` deliberately outranks `with_width` (the documented
/// precedence), so tests that pin exact widths cannot hold under it —
/// they skip rather than fail when the suite runs with the variable set.
fn env_pins_width() -> bool {
    if std::env::var_os("POPQC_NUM_THREADS").is_some() {
        eprintln!("skipping width-pinned assertions: POPQC_NUM_THREADS is set");
        return true;
    }
    false
}

/// Recursive fork-join sum over a slice — every level of the recursion is
/// a `join`, so deep nesting (stolen halves re-splitting on thieves)
/// is exercised end to end.
fn join_sum(xs: &[u64]) -> u64 {
    if xs.len() <= 3 {
        return xs.iter().sum();
    }
    let (lo, hi) = xs.split_at(xs.len() / 2);
    let (a, b) = qexec::join(|| join_sum(lo), || join_sum(hi));
    a + b
}

#[test]
fn nested_join_computes_correctly() {
    let xs: Vec<u64> = (0..10_000).collect();
    let expect: u64 = xs.iter().sum();
    // Deep nesting at several widths, including widths beyond the host's
    // core count (the pool oversubscribes rather than capping).
    for width in [2, 3, 8] {
        let got = qexec::with_width(width, || join_sum(&xs));
        assert_eq!(got, expect, "width {width}");
    }
}

#[test]
fn join_returns_both_results_in_order() {
    let (a, b) = qexec::with_width(4, || qexec::join(|| "first", || 2));
    assert_eq!((a, b), ("first", 2));
}

#[test]
fn par_map_preserves_order_at_grain_one() {
    // Grain 1 maximizes the task count and therefore steal opportunities;
    // the result must still be index-exact.
    let _grain = GrainGuard::set(1);
    let out = qexec::with_width(4, || qexec::par_map_vec((0..2_000u64).collect(), |x| x * x));
    assert_eq!(out.len(), 2_000);
    assert!(out.iter().enumerate().all(|(i, &v)| v == (i * i) as u64));
}

#[test]
fn panic_in_stolen_task_propagates_and_pool_survives() {
    // The panicking closure is the *forked* (stealable) half; the caller
    // stalls briefly so a pool worker has every chance to steal it. The
    // panic must surface on the caller with its original payload, and the
    // pool must keep executing work afterwards — no poisoned worker, no
    // wedged deque.
    for round in 0..20 {
        let result = catch_unwind(AssertUnwindSafe(|| {
            qexec::with_width(4, || {
                qexec::join(
                    || std::thread::sleep(Duration::from_micros(200)),
                    || panic!("injected task fault {round}"),
                )
            })
        }));
        let payload = result.expect_err("the forked panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("original payload type");
        assert_eq!(msg, &format!("injected task fault {round}"));
    }
    // Pool still fully operational.
    let out = qexec::with_width(4, || qexec::par_map_vec((0..512u64).collect(), |x| x + 1));
    assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
}

#[test]
fn panic_in_first_half_still_settles_second() {
    // When the caller's own half panics, the forked half may be running
    // on a thief; the join must wait for it to settle before re-raising,
    // so the thief never touches a dead stack frame. (At width 1 the
    // second half legitimately never starts, so this needs width > 1.)
    if env_pins_width() {
        return;
    }
    let second_ran = AtomicUsize::new(0);
    let result = catch_unwind(AssertUnwindSafe(|| {
        qexec::with_width(4, || {
            qexec::join(
                || panic!("first half fault"),
                || {
                    std::thread::sleep(Duration::from_micros(200));
                    second_ran.fetch_add(1, SeqCst);
                },
            )
        })
    }));
    assert!(result.is_err());
    assert_eq!(second_ran.load(SeqCst), 1);
}

#[test]
fn width_one_degenerates_to_sequential() {
    // At width 1 everything runs inline on the calling thread, in program
    // order, with no pool interaction at all.
    if env_pins_width() {
        return;
    }
    let caller = std::thread::current().id();
    let order = Mutex::new(Vec::new());
    qexec::with_width(1, || {
        qexec::join(
            || {
                order
                    .lock()
                    .unwrap()
                    .push(("a", std::thread::current().id()))
            },
            || {
                order
                    .lock()
                    .unwrap()
                    .push(("b", std::thread::current().id()))
            },
        );
        let out = qexec::par_map_vec((0..64u32).collect(), |x| {
            order
                .lock()
                .unwrap()
                .push(("item", std::thread::current().id()));
            x
        });
        assert_eq!(out, (0..64).collect::<Vec<u32>>());
    });
    let order = order.lock().unwrap();
    assert_eq!(order.len(), 2 + 64);
    assert_eq!((order[0].0, order[1].0), ("a", "b"), "sequential order");
    assert!(order.iter().all(|&(_, id)| id == caller), "caller only");
}

#[test]
fn consecutive_ops_run_on_stable_pool_threads() {
    // The pool is persistent: many consecutive parallel operations must
    // land on a bounded, stable set of worker threads (per-call spawning
    // would mint fresh thread ids every operation).
    let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
    for _ in 0..12 {
        qexec::with_width(4, || {
            qexec::par_map_vec((0..256usize).collect(), |i| {
                // A dash of per-item latency so sleeping workers reliably
                // wake up and take part in each operation.
                std::thread::sleep(Duration::from_micros(10));
                // Only count pool workers (by their `qexec-N` thread
                // name): the caller — and any concurrently-running
                // test's thread helping while it waits — may legally
                // execute leaves too, and those ids are not the pool's.
                let on_pool_worker = std::thread::current()
                    .name()
                    .is_some_and(|n| n.starts_with("qexec-"));
                if on_pool_worker {
                    seen.lock().unwrap().insert(std::thread::current().id());
                }
                i
            })
        });
    }
    // Every pool-worker id must belong to the one persistent pool, whose
    // total thread count the stats report (other tests in this binary
    // share — and may have grown — the same pool; Rust never reuses a
    // ThreadId within a process). Per-call thread spawning would mint
    // fresh ids every operation, far exceeding the pool's census.
    let distinct = seen.lock().unwrap().len();
    let pool_threads = qexec::stats().workers as usize;
    assert!(
        distinct <= pool_threads,
        "expected ids within the {pool_threads}-thread pool, saw {distinct}"
    );
}

#[test]
fn stats_counters_advance_under_parallel_work() {
    if env_pins_width() {
        return;
    }
    let before = qexec::stats();
    qexec::with_width(4, || {
        qexec::par_map_vec((0..4_096u64).collect(), |x| x.wrapping_mul(3))
    });
    let after = qexec::stats();
    assert!(after.workers >= 1, "pool must have spawned workers");
    assert!(after.parallel_ops > before.parallel_ops);
    assert!(after.splits > before.splits);
    assert!(after.tasks_executed > before.tasks_executed);
    // Steals are schedule-dependent (may be zero on an idle machine), but
    // the counter must never run backwards.
    assert!(after.steals >= before.steals);
}

#[test]
fn empty_and_singleton_inputs() {
    let empty: Vec<u64> = qexec::with_width(4, || qexec::par_map_vec(Vec::<u64>::new(), |x| x));
    assert!(empty.is_empty());
    let one = qexec::with_width(4, || qexec::par_map_vec(vec![41u64], |x| x + 1));
    assert_eq!(one, vec![42]);
}

#[test]
fn spawn_detached_runs_off_the_calling_thread() {
    use std::sync::mpsc;
    let (tx, rx) = mpsc::channel();
    let caller = std::thread::current().id();
    qexec::spawn_detached(move || {
        tx.send(std::thread::current().id()).unwrap();
    });
    let ran_on = rx
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("detached task must run");
    assert_ne!(ran_on, caller, "detached tasks run on pool workers");
}

#[test]
fn spawn_detached_contains_panics_and_pool_survives() {
    use std::sync::mpsc;
    qexec::spawn_detached(|| panic!("contained"));
    // The pool must keep executing detached tasks after a panic in one.
    let (tx, rx) = mpsc::channel();
    qexec::spawn_detached(move || tx.send(7u32).unwrap());
    assert_eq!(
        rx.recv_timeout(std::time::Duration::from_secs(10)),
        Ok(7),
        "pool must survive a detached panic"
    );
}

#[test]
fn spawn_detached_does_not_stall_fork_join_waiters() {
    use std::sync::mpsc;
    // A detached task that blocks until released: fork-join work
    // submitted while it is queued (or running) must still complete,
    // because join waiters never pick detached tasks up.
    let (release_tx, release_rx) = mpsc::channel::<()>();
    qexec::spawn_detached(move || {
        let _ = release_rx.recv_timeout(std::time::Duration::from_secs(10));
    });
    let sums = qexec::with_width(4, || qexec::par_map_vec((0..1_024u64).collect(), |x| x + 1));
    assert_eq!(sums.iter().sum::<u64>(), (1..=1_024).sum::<u64>());
    release_tx.send(()).unwrap();
}
