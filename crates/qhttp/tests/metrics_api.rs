//! Loopback tests for `GET /v1/metrics`: a real server on an ephemeral
//! port scraped over a raw `TcpStream`, proving the observability
//! acceptance properties end to end — the series inventory is fully
//! typed on the very first scrape, traffic moves the job/oracle/HTTP
//! counters, a cache-hit repeat advances the hit counter while the
//! oracle-call counters stay flat, and every response echoes a
//! process-unique `x-popqc-request-id`.
//!
//! The metrics registry is process-global, which is exactly why these
//! tests live in their own integration binary: the `http_api` tests run
//! in a different process and cannot perturb the deltas asserted here.
//! Within this binary, absolute values are never asserted — only deltas
//! between scrapes bracketing known traffic.

use benchgen::Family;
use qhttp::api::AppState;
use qhttp::server::{HttpServer, ServerConfig};
use qsvc::{OptimizationService, OracleRegistry, ServiceConfig};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

fn start_server() -> HttpServer {
    let svc = OptimizationService::new(
        OracleRegistry::builtin(),
        ServiceConfig {
            workers: 2,
            threads_per_job: 1,
            cache_capacity: 64,
            cache_shards: 4,
            seg_cache_capacity: 0,
        },
    );
    let state = Arc::new(AppState::new(svc, 80));
    HttpServer::serve("127.0.0.1:0", state, ServerConfig::default()).expect("bind loopback")
}

fn sample_qasm(seed: u64) -> String {
    qcir::qasm::to_qasm(&Family::Vqe.generate(Family::Vqe.ladder(0)[0], seed))
}

/// One-shot request; returns (status, headers, body).
fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let pos = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header/body split");
    let head = std::str::from_utf8(&raw[..pos]).expect("utf-8 headers");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let body = String::from_utf8_lossy(&raw[pos + 4..]).into_owned();
    (status, headers, body)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// A scrape parsed into `# TYPE` kinds per family and a value per series
/// (series key = `name{sorted labels}` as rendered).
struct Scrape {
    types: BTreeMap<String, String>,
    series: BTreeMap<String, f64>,
}

fn scrape(addr: SocketAddr) -> Scrape {
    let (status, headers, body) = request(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(
        header(&headers, "content-type"),
        Some("text/plain; version=0.0.4"),
        "exposition content type"
    );
    let mut types = BTreeMap::new();
    let mut series = BTreeMap::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE line");
            types.insert(name.to_string(), kind.to_string());
        } else if !line.starts_with('#') && !line.is_empty() {
            let (key, value) = line.rsplit_once(' ').expect("sample line");
            let value = if value == "+Inf" {
                f64::INFINITY
            } else {
                value.parse().expect("sample value")
            };
            series.insert(key.to_string(), value);
        }
    }
    Scrape { types, series }
}

/// The snapshot-stable series inventory: every family the runtime crates
/// register, with its type, present and typed on the FIRST scrape of a
/// fresh server — before any optimize traffic has created a single
/// labeled child. A rename, a dropped registration, or a type change
/// fails here.
#[test]
fn first_scrape_lists_the_full_typed_inventory() {
    let server = start_server();
    let scrape = scrape(server.local_addr());

    let expected = [
        // qsvc job accounting
        ("popqc_cache_hits_total", "counter"),
        ("popqc_cache_misses_total", "counter"),
        ("popqc_jobs_coalesced_total", "counter"),
        ("popqc_jobs_failed_total", "counter"),
        ("popqc_queue_depth", "gauge"),
        ("popqc_job_duration_seconds", "histogram"),
        ("popqc_rounds_to_fixpoint", "histogram"),
        ("popqc_oracle_call_duration_seconds", "histogram"),
        // result-store tiers
        ("popqc_store_get_duration_seconds", "histogram"),
        ("popqc_store_put_duration_seconds", "histogram"),
        ("popqc_store_entries", "gauge"),
        ("popqc_store_bytes", "gauge"),
        // remote cache tier (client side)
        ("popqc_remote_hits_total", "counter"),
        ("popqc_remote_misses_total", "counter"),
        ("popqc_remote_errors_total", "counter"),
        ("popqc_remote_roundtrip_seconds", "histogram"),
        // segment cache (engine hot path)
        ("popqc_segcache_hits_total", "counter"),
        ("popqc_segcache_misses_total", "counter"),
        ("popqc_segcache_evictions_total", "counter"),
        ("popqc_segcache_lookup_duration_seconds", "histogram"),
        // cache server (`popqc cached`)
        ("popqc_cached_requests_total", "counter"),
        ("popqc_cached_entries", "gauge"),
        ("popqc_cached_bytes", "gauge"),
        // executor
        ("popqc_exec_tasks_total", "counter"),
        ("popqc_exec_steals_total", "counter"),
        ("popqc_exec_splits_total", "counter"),
        ("popqc_exec_parallel_ops_total", "counter"),
        ("popqc_exec_pool_workers", "gauge"),
        ("popqc_exec_parallel_op_duration_seconds", "histogram"),
        // HTTP frontend
        ("popqc_http_requests_total", "counter"),
        ("popqc_http_request_duration_seconds", "histogram"),
        ("popqc_http_requests_in_flight", "gauge"),
        // request tracer (tail sampling outcome)
        ("popqc_traces_kept_total", "counter"),
        ("popqc_traces_discarded_total", "counter"),
    ];
    for (family, kind) in expected {
        assert_eq!(
            scrape.types.get(family).map(String::as_str),
            Some(kind),
            "family `{family}` missing or mistyped in first scrape"
        );
    }
    // The inventory is exactly the popqc_* families above — a new
    // registration must be added to this table (that is the snapshot).
    let popqc_families: Vec<&str> = scrape
        .types
        .keys()
        .map(String::as_str)
        .filter(|n| n.starts_with("popqc_"))
        .collect();
    let mut expected_names: Vec<&str> = expected.iter().map(|(n, _)| *n).collect();
    expected_names.sort_unstable();
    assert_eq!(popqc_families, expected_names, "series inventory drifted");
}

/// The PR acceptance property: counters move with traffic, and two
/// scrapes around a cache-hit repeat show the per-oracle hit counter
/// advance while the oracle-call latency count stays flat.
#[test]
fn optimize_traffic_moves_counters_and_cache_hits_keep_oracle_flat() {
    let server = start_server();
    let addr = server.local_addr();
    let qasm = sample_qasm(33);

    let hits = r#"popqc_cache_hits_total{oracle="rule_based"}"#;
    let misses = r#"popqc_cache_misses_total{oracle="rule_based"}"#;
    let oracle_calls = r#"popqc_oracle_call_duration_seconds_count{oracle="rule_based"}"#;
    let jobs = r#"popqc_job_duration_seconds_count{oracle="rule_based"}"#;
    let http_optimize = r#"popqc_http_requests_total{endpoint="/v1/optimize",status="2xx"}"#;
    let http_duration = r#"popqc_http_request_duration_seconds_count{endpoint="/v1/optimize"}"#;

    let before = scrape(addr);
    // Per-oracle children do not exist before the first job for that
    // oracle; treat an absent series as 0.
    let at = |s: &Scrape, key: &str| s.series.get(key).copied().unwrap_or(0.0);

    // Cold POST: a miss that pays real oracle calls.
    let (status, headers, body) = request(addr, "POST", "/v1/optimize", &qasm);
    assert_eq!(status, 200, "body: {body}");
    let first_id = header(&headers, "x-popqc-request-id")
        .expect("response carries x-popqc-request-id")
        .to_string();

    let after_cold = scrape(addr);
    assert_eq!(at(&after_cold, misses) - at(&before, misses), 1.0);
    assert_eq!(at(&after_cold, hits) - at(&before, hits), 0.0);
    let calls_cold = at(&after_cold, oracle_calls);
    assert!(
        calls_cold - at(&before, oracle_calls) > 0.0,
        "cold POST must time oracle calls"
    );
    assert_eq!(at(&after_cold, jobs) - at(&before, jobs), 1.0);
    assert!(at(&after_cold, http_optimize) - at(&before, http_optimize) >= 1.0);
    assert!(at(&after_cold, http_duration) - at(&before, http_duration) >= 1.0);
    // The store now holds the entry (gauges are synced at scrape time).
    assert!(at(&after_cold, r#"popqc_store_entries{tier="memory"}"#) >= 1.0);
    assert!(at(&after_cold, r#"popqc_store_bytes{tier="memory"}"#) > 0.0);

    // Identical repeat: served from the store. The hit counter advances;
    // the oracle-call count must NOT.
    let (status, headers, body) = request(addr, "POST", "/v1/optimize", &qasm);
    assert_eq!(status, 200, "body: {body}");
    assert!(body.contains("\"cache_hit\":true"), "body: {body}");
    let second_id = header(&headers, "x-popqc-request-id").expect("request id on every response");
    assert_ne!(first_id, second_id, "request ids are per-request");

    let after_warm = scrape(addr);
    assert_eq!(at(&after_warm, hits) - at(&after_cold, hits), 1.0);
    assert_eq!(at(&after_warm, misses) - at(&after_cold, misses), 0.0);
    assert_eq!(
        at(&after_warm, oracle_calls),
        calls_cold,
        "a cache hit must issue zero oracle calls"
    );
    assert_eq!(at(&after_warm, jobs) - at(&after_cold, jobs), 1.0);

    // The rounds histogram counted exactly the one engine run.
    assert_eq!(
        at(&after_warm, "popqc_rounds_to_fixpoint_count")
            - at(&before, "popqc_rounds_to_fixpoint_count"),
        1.0
    );
    // HTTP histograms have well-formed cumulative buckets over the wire.
    let inf = at(
        &after_warm,
        r#"popqc_http_request_duration_seconds_bucket{endpoint="/v1/optimize",le="+Inf"}"#,
    );
    assert_eq!(inf, at(&after_warm, http_duration), "+Inf bucket == count");
    // The scrape observes itself mid-flight — and nothing else, since we
    // are the only client.
    assert_eq!(at(&after_warm, "popqc_http_requests_in_flight"), 1.0);
}
