//! The differential loopback suite against the **evented** frontend:
//! the identical case matrix as `http_api.rs` (threaded), included from
//! `shared/http_api_cases.rs`, proving the readiness-driven path is
//! byte-for-byte behaviour-compatible at the API level.

#[path = "shared/http_api_cases.rs"]
mod cases;

const FRONTEND: cases::Frontend = cases::Frontend::Evented;
