//! The differential loopback suite against the **threaded** frontend.
//! Every case lives in `shared/http_api_cases.rs`; this crate only picks
//! the frontend. `http_api_evented.rs` runs the identical matrix against
//! the evented frontend.

#[path = "shared/http_api_cases.rs"]
mod cases;

const FRONTEND: cases::Frontend = cases::Frontend::Threads;
