//! Edge-of-capacity tests for the evented frontend — the properties the
//! threaded acceptor *cannot* provide and the admission-control behaviour
//! under hostile or overload traffic:
//!
//! * hundreds of concurrent keep-alive connections on a handful of loop
//!   threads (and a demonstration that the threaded frontend is bounded
//!   by its thread count),
//! * slowloris / idle-connection reaping by the read deadline,
//! * queue-depth load shedding: fast 503 + `Retry-After` while real
//!   work is in flight, with full recovery after the queue drains,
//! * per-peer rate limiting: 429 + `Retry-After` on a surviving
//!   connection,
//! * pipelined bursts with a delayed reader (output buffering).

use benchgen::Family;
use qcir::Gate;
use qhttp::api::AppState;
use qhttp::evented::{EventedConfig, EventedServer};
use qhttp::server::{HttpServer, ServerConfig};
use qoracle::{RuleBasedOptimizer, SegmentOracle};
use qsvc::{OptimizationService, OracleRegistry, ServiceConfig};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

fn service(workers: usize) -> OptimizationService {
    OptimizationService::new(
        OracleRegistry::builtin(),
        ServiceConfig {
            workers,
            threads_per_job: 1,
            cache_capacity: 64,
            cache_shards: 4,
            seg_cache_capacity: 0,
        },
    )
}

fn sample_qasm() -> String {
    qcir::qasm::to_qasm(&Family::Vqe.generate(Family::Vqe.ladder(0)[0], 21))
}

/// Sends one request on an existing connection (keep-alive).
fn send_request(stream: &mut TcpStream, method: &str, target: &str, body: &str) {
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
}

/// Reads one full response; returns (status, raw headers, body).
fn read_response(stream: &mut TcpStream) -> (u16, String, String) {
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    let (headers_end, content_length) = loop {
        let n = stream.read(&mut buf).expect("read response");
        assert!(n > 0, "connection closed before response completed");
        raw.extend_from_slice(&buf[..n]);
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&raw[..pos]).expect("utf-8 headers");
            let cl = head
                .lines()
                .find_map(|l| {
                    l.split_once(':')
                        .filter(|(k, _)| k.eq_ignore_ascii_case("content-length"))
                })
                .map(|(_, v)| v.trim().parse::<usize>().expect("content-length"))
                .unwrap_or(0);
            break (pos + 4, cl);
        }
    };
    while raw.len() < headers_end + content_length {
        let n = stream.read(&mut buf).expect("read body");
        assert!(n > 0, "connection closed mid-body");
        raw.extend_from_slice(&buf[..n]);
    }
    let head = std::str::from_utf8(&raw[..headers_end])
        .unwrap()
        .to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body =
        String::from_utf8_lossy(&raw[headers_end..headers_end + content_length]).into_owned();
    (status, head, body)
}

fn roundtrip(stream: &mut TcpStream, method: &str, target: &str, body: &str) -> (u16, String) {
    send_request(stream, method, target, body);
    let (status, _, body) = read_response(stream);
    (status, body)
}

fn header_value<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines().find_map(|l| {
        l.split_once(':')
            .filter(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.trim())
    })
}

/// The acceptance workhorse: with 4 loop threads the evented frontend
/// holds 300 idle keep-alive connections AND serves requests over every
/// one of them — twice, to prove the connections stayed open throughout.
#[test]
fn evented_holds_300_keepalive_connections_on_four_loop_threads() {
    let state = Arc::new(AppState::new(service(4), 80));
    let mut server = EventedServer::serve(
        "127.0.0.1:0",
        Arc::clone(&state),
        EventedConfig {
            loop_threads: 4,
            dispatch_threads: 4,
            max_conns: 1024,
            ..EventedConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let mut conns: Vec<TcpStream> = (0..300)
        .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect #{i}: {e}")))
        .collect();
    for round in 0..2 {
        for (i, c) in conns.iter_mut().enumerate() {
            let (status, body) = roundtrip(c, "GET", "/healthz", "");
            assert_eq!(status, 200, "round {round} conn {i}: body {body}");
        }
    }
    assert!(
        server.stats().connections_open() >= 300,
        "all 300 connections must be open simultaneously: {}",
        server.stats().connections_open()
    );
    drop(conns);
    server.shutdown();
}

/// 256 clients each holding a keep-alive connection complete a cached
/// optimize round-trip *concurrently* on a 4-worker / 4-loop-thread
/// server — the headline capacity the thread-per-connection design
/// cannot reach (shown by the companion test below).
#[test]
fn evented_serves_256_concurrent_cached_optimize_roundtrips() {
    const CLIENTS: usize = 256;
    let state = Arc::new(AppState::new(service(4), 80));
    let mut server = EventedServer::serve(
        "127.0.0.1:0",
        Arc::clone(&state),
        EventedConfig {
            loop_threads: 4,
            dispatch_threads: 4,
            max_conns: 1024,
            ..EventedConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let qasm = sample_qasm();

    // Prime the cache so every client's POST is a fast hit — the test
    // measures connection concurrency, not oracle throughput.
    let mut prime = TcpStream::connect(addr).unwrap();
    let (status, _) = roundtrip(&mut prime, "POST", "/v1/optimize", &qasm);
    assert_eq!(status, 200);

    // Every connection is opened BEFORE any request is sent, so all 256
    // are simultaneously live when the requests fly.
    let conns: Vec<TcpStream> = (0..CLIENTS)
        .map(|_| TcpStream::connect(addr).unwrap())
        .collect();
    let ok = std::thread::scope(|s| {
        let handles: Vec<_> = conns
            .into_iter()
            .map(|mut c| {
                let qasm = &qasm;
                s.spawn(move || {
                    let (status, body) = roundtrip(&mut c, "POST", "/v1/optimize", qasm);
                    assert_eq!(status, 200, "body: {body}");
                    assert!(body.contains("\"cache_hit\":true"), "body: {body}");
                    true
                })
            })
            .collect();
        handles.into_iter().filter_map(|h| h.join().ok()).count()
    });
    assert_eq!(ok, CLIENTS, "every concurrent client must complete");
    server.shutdown();
}

/// The contrast demonstration: the threaded frontend's concurrency IS
/// its thread count. With 4 connection threads, 4 open keep-alive
/// connections pin the whole pool, and a 5th connection is not served
/// until one of them hangs up.
#[test]
fn threaded_frontend_is_bounded_by_its_connection_thread_count() {
    let state = Arc::new(AppState::new(service(2), 80));
    let server = HttpServer::serve(
        "127.0.0.1:0",
        state,
        ServerConfig {
            conn_threads: 4,
            read_timeout: Duration::from_secs(30),
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Four keep-alive connections, each proven live: all threads busy.
    let mut pinned: Vec<TcpStream> = (0..4).map(|_| TcpStream::connect(addr).unwrap()).collect();
    for c in pinned.iter_mut() {
        let (status, _) = roundtrip(c, "GET", "/healthz", "");
        assert_eq!(status, 200);
    }

    // The 5th connection sits in the kernel backlog: its request gets no
    // answer while the pool is pinned.
    let mut fifth = TcpStream::connect(addr).unwrap();
    send_request(&mut fifth, "GET", "/healthz", "");
    fifth
        .set_read_timeout(Some(Duration::from_millis(400)))
        .unwrap();
    let mut probe = [0u8; 1];
    match fifth.read(&mut probe) {
        Err(e) => assert!(
            matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut),
            "expected a starved read, got: {e}"
        ),
        Ok(n) => panic!("a 4-thread server served a 5th concurrent connection ({n} bytes?!)"),
    }

    // Free one slot and the 5th is served.
    drop(pinned.pop());
    fifth
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let (status, _, _) = read_response(&mut fifth);
    assert_eq!(status, 200);
}

/// Slowloris and silent-idle connections are both reaped by the read
/// deadline — and reaping them never disturbs a healthy client.
#[test]
fn slowloris_and_idle_connections_are_reaped_by_the_read_deadline() {
    let state = Arc::new(AppState::new(service(1), 80));
    let mut server = EventedServer::serve(
        "127.0.0.1:0",
        Arc::clone(&state),
        EventedConfig {
            read_deadline: Duration::from_millis(300),
            ..EventedConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // The slowloris: a request that never finishes its headers.
    let mut slow = TcpStream::connect(addr).unwrap();
    slow.write_all(b"POST /v1/optimize HTTP/1.1\r\nHost: t\r\nContent-Le")
        .unwrap();
    // The freeloader: a connection that never sends a byte.
    let mut idle = TcpStream::connect(addr).unwrap();

    // Both are closed by the server within a small multiple of the
    // deadline (EOF on our side), while a healthy request still works.
    let mut healthy = TcpStream::connect(addr).unwrap();
    let (status, _) = roundtrip(&mut healthy, "GET", "/healthz", "");
    assert_eq!(status, 200);

    for (name, conn) in [("slowloris", &mut slow), ("idle", &mut idle)] {
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 64];
        let start = Instant::now();
        let n = conn
            .read(&mut buf)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(n, 0, "{name} connection must be closed, not answered");
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "{name} reap took {:?}",
            start.elapsed()
        );
    }
    assert!(
        server.stats().deadline_closes() >= 2,
        "both reaps must be counted: {}",
        server.stats().deadline_closes()
    );
    server.shutdown();
}

/// Blocks every oracle call until released (copied from the shared API
/// suite; test crates cannot share a lib).
struct GatedOracle {
    inner: RuleBasedOptimizer,
    released: Arc<(Mutex<bool>, Condvar)>,
}

impl SegmentOracle<Gate> for GatedOracle {
    fn optimize(&self, units: &[Gate], num_qubits: u32) -> Vec<Gate> {
        let (lock, cv) = &*self.released;
        let mut ok = lock.lock().unwrap();
        while !*ok {
            ok = cv.wait(ok).unwrap();
        }
        drop(ok);
        self.inner.optimize(units, num_qubits)
    }

    fn cost(&self, units: &[Gate]) -> u64 {
        self.inner.cost(units)
    }

    fn name(&self) -> &'static str {
        "gated-rule"
    }
}

/// The load-shedding acceptance property: with the queue saturated by
/// in-flight jobs, a work-enqueueing POST is refused 503 + `Retry-After`
/// in well under 50 ms, reads are never shed, and once the queue drains
/// new work is accepted again.
#[test]
fn shed_answers_fast_503_with_retry_after_and_recovers() {
    let released = Arc::new((Mutex::new(false), Condvar::new()));
    let svc = OptimizationService::single(
        GatedOracle {
            inner: RuleBasedOptimizer::oracle(),
            released: Arc::clone(&released),
        },
        ServiceConfig {
            workers: 1,
            threads_per_job: 1,
            cache_capacity: 64,
            cache_shards: 4,
            seg_cache_capacity: 0,
        },
    );
    let state = Arc::new(AppState::with_job_cap(svc, 80, 64));
    let mut server = EventedServer::serve(
        "127.0.0.1:0",
        Arc::clone(&state),
        EventedConfig {
            shed_queue_depth: 2,
            ..EventedConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Distinct circuits so nothing coalesces; the gated oracle pins the
    // worker, so the 2nd and 3rd submissions sit in the queue.
    let circuits: Vec<String> = [7u64, 9, 11, 13]
        .iter()
        .map(|&n| qcir::qasm::to_qasm(&Family::Vqe.generate(Family::Vqe.ladder(0)[0], n)))
        .collect();
    let mut ids = Vec::new();
    for qasm in &circuits[..3] {
        let mut c = TcpStream::connect(addr).unwrap();
        let (status, body) = roundtrip(&mut c, "POST", "/v1/optimize?wait=false", qasm);
        assert_eq!(status, 202, "body: {body}");
        let id_pos = body.find("\"job_id\":").expect("job_id") + 9;
        ids.push(
            body[id_pos..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>(),
        );
    }

    // The queue is at (or past) the shed threshold: the next enqueueing
    // POST must be refused inline — fast, 503, Retry-After — while the
    // gated jobs are still in flight. (The refusal arrives at the
    // headers-complete pre-check and closes the connection, since the
    // body was never read.)
    let mut c = TcpStream::connect(addr).unwrap();
    let start = Instant::now();
    send_request(&mut c, "POST", "/v1/optimize", &circuits[3]);
    let (status, head, body) = read_response(&mut c);
    let elapsed = start.elapsed();
    assert_eq!(status, 503, "body: {body}");
    assert!(body.contains("overloaded"), "body: {body}");
    assert!(body.contains("shed threshold"), "body: {body}");
    assert!(
        header_value(&head, "retry-after").is_some(),
        "shed 503 must carry Retry-After: {head}"
    );
    assert!(
        header_value(&head, "x-popqc-request-id").is_some(),
        "a refusal answered by the dispatcher bypass must still carry a request id: {head}"
    );
    assert!(
        elapsed < Duration::from_millis(50),
        "shedding must not queue behind in-flight work: {elapsed:?}"
    );

    // Reads are never shed: exactly what an operator needs mid-overload.
    let mut c = TcpStream::connect(addr).unwrap();
    let (status, body) = roundtrip(&mut c, "GET", "/v1/stats", "");
    assert_eq!(status, 200, "body: {body}");
    assert!(
        body.contains("\"requests_shed\":1"),
        "the shed must be counted in /v1/stats: {body}"
    );
    assert!(server.stats().requests_shed() >= 1);

    // The refusal bypasses the dispatcher, but it must NOT bypass the
    // HTTP metrics: the 503 shows up in the per-endpoint counter.
    let mut c = TcpStream::connect(addr).unwrap();
    let (status, body) = roundtrip(&mut c, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    assert!(
        body.contains(r#"popqc_http_requests_total{endpoint="/v1/optimize",status="5xx"}"#),
        "inline refusals must be counted in popqc_http_requests_total"
    );

    // Recovery: release the oracle, drain the queue, and the same
    // circuit is accepted.
    *released.0.lock().unwrap() = true;
    released.1.notify_all();
    for id in &ids {
        let mut done = false;
        for _ in 0..600 {
            let mut c = TcpStream::connect(addr).unwrap();
            let (status, body) = roundtrip(&mut c, "GET", &format!("/v1/jobs/{id}"), "");
            assert_eq!(status, 200);
            if body.contains("\"done\":true") {
                done = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(done, "job {id} never completed");
    }
    let mut c = TcpStream::connect(addr).unwrap();
    let (status, body) = roundtrip(&mut c, "POST", "/v1/optimize", &circuits[3]);
    assert_eq!(status, 200, "post-drain submission must succeed: {body}");
    server.shutdown();
}

/// Per-peer rate limiting: a burst past the budget answers 429
/// `rate_limited` + `Retry-After` on a connection that stays open, and
/// the peer is served again once its bucket refills.
#[test]
fn rate_limited_burst_gets_429_and_the_connection_survives() {
    let state = Arc::new(AppState::new(service(1), 80));
    let mut server = EventedServer::serve(
        "127.0.0.1:0",
        Arc::clone(&state),
        EventedConfig {
            rate_limit: 2.0, // burst budget of 2
            ..EventedConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let mut c = TcpStream::connect(addr).unwrap();
    for i in 0..2 {
        let (status, body) = roundtrip(&mut c, "GET", "/healthz", "");
        assert_eq!(status, 200, "burst request {i}: {body}");
    }
    send_request(&mut c, "GET", "/healthz", "");
    let (status, head, body) = read_response(&mut c);
    assert_eq!(status, 429, "body: {body}");
    assert!(body.contains("rate_limited"), "body: {body}");
    assert!(
        header_value(&head, "x-popqc-request-id").is_some(),
        "a 429 answered inline must still carry a request id: {head}"
    );
    let retry: u64 = header_value(&head, "retry-after")
        .expect("429 must carry Retry-After")
        .parse()
        .expect("numeric Retry-After");
    assert!(retry >= 1, "Retry-After must name a real wait: {retry}");

    // The SAME connection is served again after the bucket refills —
    // rate limiting a peer must not cost it its connection.
    std::thread::sleep(Duration::from_millis(700));
    let (status, body) = roundtrip(&mut c, "GET", "/healthz", "");
    assert_eq!(status, 200, "post-refill request: {body}");
    assert!(server.stats().rate_limited() >= 1);
    server.shutdown();
}

/// A refused client must not be invited to upload its body first: a
/// rate-limited peer announcing a body with `Expect: 100-continue` gets
/// its 429 at the headers-complete pre-check — no `100 Continue` interim,
/// no body bytes read — and the connection closes (the unread body makes
/// the framing unusable).
#[test]
fn rate_limited_body_upload_is_refused_before_100_continue() {
    let state = Arc::new(AppState::new(service(1), 80));
    let mut server = EventedServer::serve(
        "127.0.0.1:0",
        Arc::clone(&state),
        EventedConfig {
            rate_limit: 1.0, // burst budget of 1
            ..EventedConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Burn the budget with a cheap request.
    let mut warm = TcpStream::connect(addr).unwrap();
    let (status, _) = roundtrip(&mut warm, "GET", "/healthz", "");
    assert_eq!(status, 200);

    // Announce a large body and wait, as curl does for big uploads: the
    // headers alone must draw the refusal.
    let mut c = TcpStream::connect(addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(
        c,
        "POST /v1/optimize HTTP/1.1\r\nHost: t\r\nExpect: 100-continue\r\n\
         Content-Length: 1000000\r\n\r\n"
    )
    .unwrap();
    let (status, head, body) = read_response(&mut c);
    assert_eq!(status, 429, "body: {body}");
    assert!(body.contains("rate_limited"), "body: {body}");
    assert!(
        !head.contains("100 Continue"),
        "a refused upload must not be invited to proceed: {head}"
    );
    assert!(
        header_value(&head, "retry-after").is_some(),
        "429 must carry Retry-After: {head}"
    );
    assert_eq!(
        header_value(&head, "connection"),
        Some("close"),
        "an early refusal cannot keep the framing-poisoned connection: {head}"
    );
    let mut rest = Vec::new();
    assert_eq!(
        c.read_to_end(&mut rest).unwrap_or(0),
        0,
        "the server must close after the early refusal"
    );
    assert!(server.stats().rate_limited() >= 1);
    server.shutdown();
}

/// A pipelined burst from a client that delays reading: the responses
/// queue in the connection's output buffer (and the dispatch replay
/// path), arrive complete and in order, and never block other clients.
#[test]
fn pipelined_burst_with_delayed_reader_is_answered_in_full() {
    const BURST: usize = 32;
    let state = Arc::new(AppState::new(service(1), 80));
    let mut server =
        EventedServer::serve("127.0.0.1:0", Arc::clone(&state), EventedConfig::default())
            .expect("bind loopback");
    let addr = server.local_addr();

    let mut c = TcpStream::connect(addr).unwrap();
    let mut burst = Vec::new();
    for _ in 0..BURST {
        burst.extend_from_slice(b"GET /v1/oracles HTTP/1.1\r\nHost: t\r\n\r\n");
    }
    c.write_all(&burst).unwrap();

    // While the burst client is not reading, another client is served —
    // one stuffed connection must not wedge a loop thread.
    std::thread::sleep(Duration::from_millis(200));
    let mut other = TcpStream::connect(addr).unwrap();
    let (status, _) = roundtrip(&mut other, "GET", "/healthz", "");
    assert_eq!(status, 200);

    // Now drain: all BURST responses, complete and well-formed. One
    // socket read may span response boundaries, so parse from a
    // persistent buffer instead of per-response reads.
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    let mut parsed = 0usize;
    while parsed < BURST {
        let n = c.read(&mut buf).expect("read burst responses");
        assert!(n > 0, "connection closed after {parsed}/{BURST} responses");
        raw.extend_from_slice(&buf[..n]);
        while let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&raw[..pos]).expect("utf-8 headers");
            let cl = header_value(head, "content-length")
                .map(|v| v.parse::<usize>().expect("content-length"))
                .unwrap_or(0);
            if raw.len() < pos + 4 + cl {
                break; // body still in flight
            }
            assert!(
                head.starts_with("HTTP/1.1 200"),
                "pipelined response {parsed}: {head}"
            );
            let body = String::from_utf8_lossy(&raw[pos + 4..pos + 4 + cl]).into_owned();
            assert!(body.contains("rule_based"), "response {parsed}: {body}");
            raw.drain(..pos + 4 + cl);
            parsed += 1;
        }
    }
    server.shutdown();
}
