//! The differential loopback suite: every v1 API acceptance property,
//! written once and compiled against BOTH frontends. The including test
//! crate picks the frontend with a `FRONTEND` const:
//!
//! ```ignore
//! #[path = "shared/http_api_cases.rs"]
//! mod cases;
//! const FRONTEND: cases::Frontend = cases::Frontend::Evented;
//! ```
//!
//! Tests drive a real server on an ephemeral port with a raw `TcpStream`
//! client (no HTTP library on either side), proving serving, cache-hit
//! accounting, concurrent-duplicate deduplication, per-request oracle
//! selection, job polling, the full `ApiError` status taxonomy, and
//! clean 4xx behaviour on malformed input — identically on the threaded
//! and the evented path.

use benchgen::Family;
use qcir::Gate;
use qhttp::api::AppState;
use qhttp::evented::{EventedConfig, EventedServer};
use qhttp::server::{HttpServer, ServerConfig};
use qoracle::{RuleBasedOptimizer, SegmentOracle};
use qsvc::{OptimizationService, OracleRegistry, ServiceConfig};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};

/// Which frontend this compilation of the suite exercises. Each test
/// crate constructs exactly one variant, so the other is dead code in
/// that compilation by design.
#[derive(Clone, Copy, Debug)]
#[allow(dead_code)]
pub enum Frontend {
    Threads,
    Evented,
}

/// Either running server behind the one interface the tests need.
pub enum TestServer {
    Threads(HttpServer),
    Evented(EventedServer),
}

impl TestServer {
    pub fn local_addr(&self) -> SocketAddr {
        match self {
            TestServer::Threads(s) => s.local_addr(),
            TestServer::Evented(s) => s.local_addr(),
        }
    }

    pub fn shutdown(&mut self) {
        match self {
            TestServer::Threads(s) => s.shutdown(),
            TestServer::Evented(s) => s.shutdown(),
        }
    }
}

/// Serves `state` on the frontend under test, with the probe attached the
/// way `popqc serve` attaches it (evented does so itself).
pub fn serve_state(state: Arc<AppState>) -> TestServer {
    match crate::FRONTEND {
        Frontend::Threads => {
            let s = HttpServer::serve("127.0.0.1:0", Arc::clone(&state), ServerConfig::default())
                .expect("bind loopback");
            state.set_frontend_probe(s.probe());
            TestServer::Threads(s)
        }
        Frontend::Evented => TestServer::Evented(
            EventedServer::serve("127.0.0.1:0", state, EventedConfig::default())
                .expect("bind loopback"),
        ),
    }
}

/// The full built-in registry (`rule_based` default + `rule_single_pass`
/// + `search`) behind one server — the shape `popqc serve` deploys.
fn start_server(workers: usize) -> TestServer {
    let svc = OptimizationService::new(
        OracleRegistry::builtin(),
        ServiceConfig {
            workers,
            threads_per_job: 1,
            cache_capacity: 64,
            cache_shards: 4,
            seg_cache_capacity: 0,
        },
    );
    serve_state(Arc::new(AppState::new(svc, 80)))
}

fn sample_qasm() -> String {
    qcir::qasm::to_qasm(&Family::Vqe.generate(Family::Vqe.ladder(0)[0], 21))
}

/// One-shot request over a fresh connection; returns (status, body).
fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    read_response(&mut stream)
}

/// Reads one full response (status line, headers, Content-Length body).
fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    let (headers_end, content_length) = loop {
        let n = stream.read(&mut buf).expect("read response");
        assert!(n > 0, "connection closed before response completed");
        raw.extend_from_slice(&buf[..n]);
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&raw[..pos]).expect("utf-8 headers");
            let cl = head
                .lines()
                .find_map(|l| {
                    l.split_once(':')
                        .filter(|(k, _)| k.eq_ignore_ascii_case("content-length"))
                })
                .map(|(_, v)| v.trim().parse::<usize>().expect("content-length"))
                .unwrap_or(0);
            break (pos + 4, cl);
        }
    };
    while raw.len() < headers_end + content_length {
        let n = stream.read(&mut buf).expect("read body");
        assert!(n > 0, "connection closed mid-body");
        raw.extend_from_slice(&buf[..n]);
    }
    let head = std::str::from_utf8(&raw[..headers_end]).unwrap();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body =
        String::from_utf8_lossy(&raw[headers_end..headers_end + content_length]).into_owned();
    (status, body)
}

fn json(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON response: {e}\n{body}"))
}

fn get_stats(addr: SocketAddr) -> Value {
    let (status, body) = request(addr, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    json(&body)
}

#[test]
fn healthz_and_stats_respond() {
    let server = start_server(2);
    let addr = server.local_addr();

    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(json(&body).get("status").unwrap().as_str(), Some("ok"));

    let stats = get_stats(addr);
    assert_eq!(stats.get("submitted").unwrap().as_u64(), Some(0));
    assert!(stats.get("workers").unwrap().as_u64().unwrap() >= 1);
}

/// The `frontend` block of `/v1/stats` names the frontend actually
/// serving and counts its connections — on both paths.
#[test]
fn stats_frontend_block_names_the_serving_frontend() {
    let server = start_server(1);
    let addr = server.local_addr();

    let stats = get_stats(addr);
    let fe = stats.get("frontend").expect("frontend block in /v1/stats");
    let expected = match crate::FRONTEND {
        Frontend::Threads => "threads",
        Frontend::Evented => "evented",
    };
    assert_eq!(fe.get("frontend").unwrap().as_str(), Some(expected));
    assert!(
        fe.get("connections_accepted").unwrap().as_u64().unwrap() >= 1,
        "the stats request itself arrived over a counted connection"
    );
    assert_eq!(fe.get("requests_shed").unwrap().as_u64(), Some(0));
    assert_eq!(fe.get("rate_limited").unwrap().as_u64(), Some(0));
}

#[test]
fn optimize_twice_second_is_cache_hit_with_zero_new_oracle_calls() {
    let server = start_server(2);
    let addr = server.local_addr();
    let qasm = sample_qasm();

    let (status, body) = request(addr, "POST", "/v1/optimize?label=first", &qasm);
    assert_eq!(status, 200, "body: {body}");
    let first = json(&body);
    assert_eq!(first.get("done").unwrap().as_bool(), Some(true));
    assert_eq!(first.get("label").unwrap().as_str(), Some("first"));
    let result = first.get("result").unwrap();
    assert_eq!(result.get("cache_hit").unwrap().as_bool(), Some(false));
    assert!(result.get("oracle_calls").unwrap().as_u64().unwrap() > 0);
    let optimized = result.get("qasm").unwrap().as_str().unwrap();
    assert!(qcir::qasm::parse(optimized).is_ok(), "output must re-parse");
    let calls_after_cold = get_stats(addr)
        .get("oracle_calls_issued")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(calls_after_cold > 0);

    // Identical resubmission: a cache hit, and the service-wide oracle-call
    // counter must not move.
    let (status, body) = request(addr, "POST", "/v1/optimize", &qasm);
    assert_eq!(status, 200);
    let second = json(&body);
    let result = second.get("result").unwrap();
    assert_eq!(result.get("cache_hit").unwrap().as_bool(), Some(true));
    assert_eq!(
        result.get("qasm").unwrap().as_str().unwrap(),
        optimized,
        "hit must return the identical circuit"
    );
    let stats = get_stats(addr);
    assert_eq!(
        stats.get("oracle_calls_issued").unwrap().as_u64(),
        Some(calls_after_cold),
        "second POST must issue zero oracle calls"
    );
    assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(1));
}

#[test]
fn concurrent_duplicate_posts_compute_once() {
    const CLIENTS: usize = 6;
    let server = start_server(4);
    let addr = server.local_addr();
    let qasm = sample_qasm();

    let responses: Vec<Value> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let qasm = &qasm;
                s.spawn(move || {
                    let (status, body) = request(addr, "POST", "/v1/optimize", qasm);
                    assert_eq!(status, 200, "body: {body}");
                    json(&body)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // However the submissions interleave, exactly one computes; the rest
    // are coalesced waiters or (if the first finished early) cache hits.
    let mut misses = 0;
    let mut outputs = std::collections::HashSet::new();
    for r in &responses {
        let result = r.get("result").unwrap();
        if result.get("cache_hit").unwrap().as_bool() == Some(false) {
            misses += 1;
        }
        outputs.insert(result.get("qasm").unwrap().as_str().unwrap().to_string());
    }
    assert_eq!(misses, 1, "exactly one of {CLIENTS} duplicates computes");
    assert_eq!(outputs.len(), 1, "all clients get the identical circuit");

    let stats = get_stats(addr);
    assert_eq!(
        stats.get("submitted").unwrap().as_u64(),
        Some(CLIENTS as u64)
    );
    assert_eq!(
        stats.get("cache_hits").unwrap().as_u64(),
        Some((CLIENTS - 1) as u64)
    );
}

#[test]
fn async_submission_and_job_polling() {
    let server = start_server(2);
    let addr = server.local_addr();
    let qasm = sample_qasm();

    let (status, body) = request(addr, "POST", "/v1/optimize?wait=false&label=bg", &qasm);
    assert_eq!(status, 202, "body: {body}");
    let doc = json(&body);
    let id = doc.get("job_id").unwrap().as_u64().unwrap();
    assert!(doc.get("result").is_none());

    // Poll until done (bounded; the circuit is small).
    let mut done = false;
    for _ in 0..600 {
        let (status, body) = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200);
        let doc = json(&body);
        if doc.get("done").unwrap().as_bool() == Some(true) {
            let result = doc.get("result").unwrap();
            assert_eq!(doc.get("label").unwrap().as_str(), Some("bg"));
            assert!(result.get("output_gates").unwrap().as_u64().unwrap() > 0);
            assert_eq!(
                doc.get("rounds_completed").unwrap().as_u64().unwrap(),
                result.get("rounds").unwrap().as_u64().unwrap()
            );
            done = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(done, "job {id} never completed");

    let (status, _) = request(addr, "GET", "/v1/jobs/999999", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/v1/jobs/not-a-number", "");
    assert_eq!(status, 400);

    // wait=false on an already-cached circuit completes synchronously:
    // the response must say so (200 + result), not demand a pointless poll.
    let (status, body) = request(addr, "POST", "/v1/optimize?wait=false", &qasm);
    assert_eq!(status, 200, "body: {body}");
    let doc = json(&body);
    assert_eq!(doc.get("done").unwrap().as_bool(), Some(true));
    assert_eq!(
        doc.get("result")
            .unwrap()
            .get("cache_hit")
            .unwrap()
            .as_bool(),
        Some(true)
    );
}

#[test]
fn batch_endpoint_reports_per_job_and_aggregate_counters() {
    let server = start_server(2);
    let addr = server.local_addr();
    let a = sample_qasm();
    let b = qcir::qasm::to_qasm(&Family::Grover.generate(Family::Grover.ladder(0)[0], 5));

    let body = serde_json::to_string(&serde_json::json!({
        "omega": 64,
        "circuits": [
            {"label": "vqe", "qasm": a.clone()},
            {"label": "grover", "qasm": b},
            {"label": "vqe-again", "qasm": a},
        ],
    }))
    .unwrap();
    let (status, reply) = request(addr, "POST", "/v1/batch", &body);
    assert_eq!(status, 200, "body: {reply}");
    let report = json(&reply);
    assert_eq!(report.get("job_count").unwrap().as_u64(), Some(3));
    let jobs = report.get("jobs").unwrap().as_array().unwrap();
    assert_eq!(jobs[0].get("label").unwrap().as_str(), Some("vqe"));
    assert_eq!(jobs[2].get("label").unwrap().as_str(), Some("vqe-again"));
    // The duplicate inside one batch computes once (coalesced or cached).
    assert_eq!(report.get("cache_hits").unwrap().as_u64(), Some(1));
    assert_eq!(
        jobs[0].get("qasm").unwrap().as_str(),
        jobs[2].get("qasm").unwrap().as_str()
    );
    for job in jobs {
        assert!(qcir::qasm::parse(job.get("qasm").unwrap().as_str().unwrap()).is_ok());
    }
}

/// Every error body — API-taxonomy or transport-level — has the one v1
/// wire shape: `api_version` plus an `error` object with kind + message.
fn assert_error_body(body: &str, kind: &str) {
    let doc = json(body);
    assert_eq!(
        doc.get("api_version").unwrap().as_str(),
        Some("v1"),
        "body: {body}"
    );
    let err = doc.get("error").expect("error object");
    assert_eq!(
        err.get("kind").unwrap().as_str(),
        Some(kind),
        "body: {body}"
    );
    assert!(err.get("message").unwrap().as_str().is_some());
}

#[test]
fn malformed_requests_get_clean_4xx_responses() {
    let server = start_server(1);
    let addr = server.local_addr();

    // Unparseable QASM: 422 invalid_qasm with the parser's message, not a
    // panic (the transport was fine, the program text was not).
    let (status, body) = request(
        addr,
        "POST",
        "/v1/optimize",
        "OPENQASM 2.0;\nqreg q]0[;\nh q[0];\n",
    );
    assert_eq!(status, 422);
    assert_error_body(&body, "invalid_qasm");
    assert!(body.contains("qreg"), "body: {body}");

    // Empty body.
    let (status, body) = request(addr, "POST", "/v1/optimize", "");
    assert_eq!(status, 422);
    assert_error_body(&body, "invalid_qasm");

    // Bad query parameter values: 400 invalid_config.
    let qasm = sample_qasm();
    for target in [
        "/v1/optimize?omega=zero",
        "/v1/optimize?omega=0",
        "/v1/optimize?wait=maybe",
    ] {
        let (status, body) = request(addr, "POST", target, &qasm);
        assert_eq!(status, 400, "{target}: body: {body}");
        assert_error_body(&body, "invalid_config");
    }

    // Batch body that is not JSON / missing fields: 400 invalid_config.
    let (status, body) = request(addr, "POST", "/v1/batch", "this is not json");
    assert_eq!(status, 400);
    assert_error_body(&body, "invalid_config");
    assert!(body.contains("JSON"), "body: {body}");
    let (status, body) = request(addr, "POST", "/v1/batch", "{\"circuits\": []}");
    assert_eq!(status, 400);
    assert_error_body(&body, "invalid_config");

    // A well-formed batch whose member QASM does not parse: 422.
    let (status, body) = request(
        addr,
        "POST",
        "/v1/batch",
        "{\"circuits\": [{\"label\": \"bad\", \"qasm\": \"qreg q[1]; zz q[0];\"}]}",
    );
    assert_eq!(status, 422);
    assert_error_body(&body, "invalid_qasm");
    assert!(body.contains("bad"), "body: {body}");

    // Routing errors, in the same wire shape.
    let (status, body) = request(addr, "GET", "/v1/nope", "");
    assert_eq!(status, 404);
    assert_error_body(&body, "not_found");
    let (status, body) = request(addr, "GET", "/v1/optimize", "");
    assert_eq!(status, 405);
    assert_error_body(&body, "method_not_allowed");
    let (status, body) = request(addr, "DELETE", "/healthz", "");
    assert_eq!(status, 405);
    assert_error_body(&body, "method_not_allowed");

    // A request that is not HTTP at all still gets a 400, then the
    // connection closes.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"SPEAK FRIEND AND ENTER\r\n\r\n").unwrap();
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 400);
    assert_error_body(&body, "bad_request");
}

#[test]
fn keep_alive_serves_multiple_requests_on_one_connection() {
    let server = start_server(1);
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    for _ in 0..3 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (status, body) = read_response(&mut stream);
        assert_eq!(status, 200);
        assert_eq!(json(&body).get("status").unwrap().as_str(), Some("ok"));
    }

    // Chunked upload on the same connection.
    let qasm = sample_qasm();
    let mut chunked =
        String::from("POST /v1/optimize HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n");
    for part in qasm.as_bytes().chunks(100) {
        chunked.push_str(&format!("{:x}\r\n", part.len()));
        chunked.push_str(std::str::from_utf8(part).unwrap());
        chunked.push_str("\r\n");
    }
    chunked.push_str("0\r\n\r\n");
    stream.write_all(chunked.as_bytes()).unwrap();
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(
        json(&body)
            .get("result")
            .unwrap()
            .get("cache_hit")
            .unwrap()
            .as_bool(),
        Some(false)
    );
}

/// Blocks every oracle call until released, pinning submitted jobs in the
/// pending state so registry-capacity behaviour is deterministic.
pub struct GatedOracle {
    pub inner: RuleBasedOptimizer,
    pub released: Arc<(Mutex<bool>, Condvar)>,
}

impl SegmentOracle<Gate> for GatedOracle {
    fn optimize(&self, units: &[Gate], num_qubits: u32) -> Vec<Gate> {
        let (lock, cv) = &*self.released;
        let mut ok = lock.lock().unwrap();
        while !*ok {
            ok = cv.wait(ok).unwrap();
        }
        drop(ok);
        self.inner.optimize(units, num_qubits)
    }

    fn cost(&self, units: &[Gate]) -> u64 {
        self.inner.cost(units)
    }

    fn name(&self) -> &'static str {
        "gated-rule"
    }
}

#[test]
fn full_pending_registry_rejects_new_async_jobs_with_503() {
    let released = Arc::new((Mutex::new(false), Condvar::new()));
    let svc = OptimizationService::single(
        GatedOracle {
            inner: RuleBasedOptimizer::oracle(),
            released: Arc::clone(&released),
        },
        ServiceConfig {
            workers: 1,
            threads_per_job: 1,
            cache_capacity: 64,
            cache_shards: 4,
            seg_cache_capacity: 0,
        },
    );
    // Registry cap of 2: pending jobs fill it; eviction may only remove
    // completed ones.
    let state = Arc::new(AppState::with_job_cap(svc, 80, 2));
    let server = serve_state(state);
    let addr = server.local_addr();

    // Three distinct circuits so nothing coalesces or cache-hits.
    let circuits: Vec<String> = [7u64, 9, 11]
        .iter()
        .map(|&n| qcir::qasm::to_qasm(&Family::Vqe.generate(Family::Vqe.ladder(0)[0], n)))
        .collect();

    let mut ids = Vec::new();
    for qasm in &circuits[..2] {
        let (status, body) = request(addr, "POST", "/v1/optimize?wait=false", qasm);
        assert_eq!(status, 202, "body: {body}");
        ids.push(json(&body).get("job_id").unwrap().as_u64().unwrap());
    }
    // Registry now holds 2 pending jobs (the oracle is gated shut): the
    // next submission must be refused before it reaches the queue.
    let (status, body) = request(addr, "POST", "/v1/optimize?wait=false", &circuits[2]);
    assert_eq!(status, 503, "body: {body}");
    assert_error_body(&body, "overloaded");
    assert!(body.contains("pending"), "body: {body}");

    // Unblock the oracle, let both jobs finish, and the refused circuit is
    // accepted on retry (completed jobs are evicted to make room).
    *released.0.lock().unwrap() = true;
    released.1.notify_all();
    for id in ids {
        let mut done = false;
        for _ in 0..600 {
            let (status, body) = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
            assert_eq!(status, 200);
            if json(&body).get("done").unwrap().as_bool() == Some(true) {
                done = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(done, "job {id} never completed");
    }
    let (status, body) = request(addr, "POST", "/v1/optimize?wait=false", &circuits[2]);
    assert!(
        status == 202 || status == 200,
        "retry after drain must be accepted, got {status}: {body}"
    );
}

/// Panics on every call — the remote-client view of a buggy oracle.
pub struct PanicOracle;

impl SegmentOracle<Gate> for PanicOracle {
    fn optimize(&self, _units: &[Gate], _num_qubits: u32) -> Vec<Gate> {
        panic!("injected oracle fault");
    }

    fn cost(&self, units: &[Gate]) -> u64 {
        units.len() as u64
    }

    fn name(&self) -> &'static str {
        "panic-always"
    }
}

#[test]
fn oracle_panic_surfaces_as_500_and_server_keeps_serving() {
    let svc = OptimizationService::single(
        PanicOracle,
        ServiceConfig {
            workers: 1,
            threads_per_job: 1,
            cache_capacity: 64,
            cache_shards: 4,
            seg_cache_capacity: 0,
        },
    );
    let state = Arc::new(AppState::new(svc, 80));
    let server = serve_state(state);
    let addr = server.local_addr();

    let qasm = sample_qasm();
    let (status, body) = request(addr, "POST", "/v1/optimize", &qasm);
    assert_eq!(status, 500, "body: {body}");
    let doc = json(&body);
    let err = doc
        .get("result")
        .unwrap()
        .get("error")
        .unwrap()
        .as_str()
        .unwrap();
    assert!(err.contains("injected oracle fault"), "error: {err}");

    // Neither the worker pool nor the connection pool died with the panic.
    let (status, body) = request(addr, "POST", "/v1/optimize", &qasm);
    assert_eq!(status, 500, "body: {body}");
    let (status, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    // A batch containing a failing job is a 500 whose report carries the
    // per-job error and does NOT echo the input circuit as `qasm`.
    let body = serde_json::to_string(&serde_json::json!({
        "circuits": [{"label": "boom", "qasm": qasm}],
    }))
    .unwrap();
    let (status, reply) = request(addr, "POST", "/v1/batch", &body);
    assert_eq!(status, 500, "body: {reply}");
    let report = json(&reply);
    let job = &report.get("jobs").unwrap().as_array().unwrap()[0];
    assert!(job
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("injected oracle fault"));
    assert!(job.get("qasm").is_none(), "failed job must not echo input");

    let (_, body) = request(addr, "GET", "/v1/stats", "");
    assert_eq!(json(&body).get("failed").unwrap().as_u64(), Some(3));
}

#[test]
fn shutdown_is_clean_and_idempotent() {
    let mut server = start_server(1);
    let addr = server.local_addr();
    let (status, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    server.shutdown();
    server.shutdown(); // second call is a no-op
    assert!(
        TcpStream::connect(addr).is_err() || {
            // The OS may accept briefly while the socket drains; a request
            // must at least not be served.
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let mut buf = Vec::new();
            s.read_to_end(&mut buf).unwrap_or(0) == 0
        }
    );
}

#[test]
fn version_and_oracles_endpoints_describe_the_api() {
    let server = start_server(1);
    let addr = server.local_addr();

    let (status, body) = request(addr, "GET", "/v1/version", "");
    assert_eq!(status, 200);
    let version = qapi::VersionInfo::from_json(&json(&body)).expect("version DTO");
    assert_eq!(version.build_version, qapi::BUILD_VERSION);

    let (status, body) = request(addr, "GET", "/v1/oracles", "");
    assert_eq!(status, 200);
    let list = qapi::OracleList::from_json(&json(&body)).expect("oracle list DTO");
    let ids: Vec<&str> = list.oracles.iter().map(|o| o.id.as_str()).collect();
    assert_eq!(
        ids,
        ["rule_based", "rule_single_pass", "search", "structural"]
    );
    let defaults: Vec<&str> = list
        .oracles
        .iter()
        .filter(|o| o.default)
        .map(|o| o.id.as_str())
        .collect();
    assert_eq!(defaults, ["rule_based"], "exactly one default oracle");
}

#[test]
fn every_response_body_carries_api_version() {
    let server = start_server(1);
    let addr = server.local_addr();
    let qasm = sample_qasm();
    let batch = serde_json::to_string(&serde_json::json!({
        "circuits": [{"label": "a", "qasm": qasm.clone()}],
    }))
    .unwrap();

    let probes: Vec<(u16, String)> = vec![
        request(addr, "GET", "/healthz", ""),
        request(addr, "GET", "/v1/version", ""),
        request(addr, "GET", "/v1/oracles", ""),
        request(addr, "GET", "/v1/stats", ""),
        request(addr, "POST", "/v1/optimize", &qasm),
        request(addr, "POST", "/v1/batch", &batch),
        request(addr, "GET", "/v1/jobs/999", ""), // transport 404
        request(addr, "POST", "/v1/optimize", "not qasm"), // taxonomy 422
        request(addr, "GET", "/nope", ""),        // transport 404
        request(addr, "PUT", "/v1/stats", ""),    // transport 405
    ];
    for (status, body) in probes {
        assert_eq!(
            json(&body).get("api_version").and_then(Value::as_str),
            Some("v1"),
            "status {status}: body {body}"
        );
    }
}

/// The loopback half of the taxonomy table test: every `ApiError` variant
/// that a remote client can trigger comes back over the wire with its
/// documented kind and canonical status. (`internal` is unreachable
/// through a correct server by construction; its mapping is pinned by the
/// qapi unit table and the server-panic test in `qhttp::server`;
/// `rate_limited` needs the evented limiter enabled and is covered by the
/// `evented_edge` suite.)
#[test]
fn error_taxonomy_maps_to_documented_statuses_over_loopback() {
    let released = Arc::new((Mutex::new(false), Condvar::new()));
    let mut registry = OracleRegistry::single_with_id(
        GatedOracle {
            inner: RuleBasedOptimizer::oracle(),
            released: Arc::clone(&released),
        },
        "gated",
    );
    registry
        .register("boom", "panics on every call", Arc::new(PanicOracle))
        .unwrap();
    let svc = OptimizationService::new(
        registry,
        ServiceConfig {
            workers: 1,
            threads_per_job: 1,
            cache_capacity: 64,
            cache_shards: 4,
            seg_cache_capacity: 0,
        },
    );
    // Job cap 1 so a single gated pending job triggers `overloaded`.
    let state = Arc::new(AppState::with_job_cap(svc, 80, 1));
    let server = serve_state(state);
    let addr = server.local_addr();
    let qasm = sample_qasm();
    let distinct = qcir::qasm::to_qasm(&Family::Grover.generate(Family::Grover.ladder(0)[0], 3));

    // invalid_config -> 400.
    let (status, body) = request(addr, "POST", "/v1/optimize?omega=0", &qasm);
    assert_eq!(status, 400, "body: {body}");
    assert_error_body(&body, "invalid_config");

    // unknown_oracle -> 404, listing what IS available.
    let (status, body) = request(addr, "POST", "/v1/optimize?oracle=nope", &qasm);
    assert_eq!(status, 404, "body: {body}");
    assert_error_body(&body, "unknown_oracle");
    assert!(body.contains("gated"), "body: {body}");

    // invalid_qasm -> 422.
    let (status, body) = request(addr, "POST", "/v1/optimize", "qreg q]0[;");
    assert_eq!(status, 422, "body: {body}");
    assert_error_body(&body, "invalid_qasm");

    // oracle_failure -> 500 (the job document carries the error).
    let (status, body) = request(addr, "POST", "/v1/optimize?oracle=boom", &qasm);
    assert_eq!(status, 500, "body: {body}");
    let doc = qapi::JobStatus::from_json(&json(&body)).expect("job DTO");
    assert!(doc.result.unwrap().error.unwrap().contains("panicked"));

    // overloaded -> 503: one gated pending job fills the cap, the next
    // wait=false submission is refused.
    let (status, body) = request(addr, "POST", "/v1/optimize?wait=false", &qasm);
    assert_eq!(status, 202, "body: {body}");
    let (status, body) = request(addr, "POST", "/v1/optimize?wait=false", &distinct);
    assert_eq!(status, 503, "body: {body}");
    assert_error_body(&body, "overloaded");

    // Drain the gated job so shutdown is not blocked on the oracle.
    *released.0.lock().unwrap() = true;
    released.1.notify_all();
}

/// Every 503 refusal carries a `Retry-After` header — the wait=false
/// job-cap path here; the shed path is pinned in `evented_edge`.
#[test]
fn job_cap_503_carries_retry_after_header() {
    let released = Arc::new((Mutex::new(false), Condvar::new()));
    let svc = OptimizationService::single(
        GatedOracle {
            inner: RuleBasedOptimizer::oracle(),
            released: Arc::clone(&released),
        },
        ServiceConfig {
            workers: 1,
            threads_per_job: 1,
            cache_capacity: 64,
            cache_shards: 4,
            seg_cache_capacity: 0,
        },
    );
    let state = Arc::new(AppState::with_job_cap(svc, 80, 1));
    let server = serve_state(state);
    let addr = server.local_addr();
    let qasm = sample_qasm();
    let distinct = qcir::qasm::to_qasm(&Family::Grover.generate(Family::Grover.ladder(0)[0], 3));

    let (status, _) = request(addr, "POST", "/v1/optimize?wait=false", &qasm);
    assert_eq!(status, 202);

    // Raw exchange so the headers are visible, not just the body.
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "POST /v1/optimize?wait=false HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{distinct}",
        distinct.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 503 "), "reply: {raw}");
    assert!(
        raw.lines()
            .any(|l| l.to_ascii_lowercase().starts_with("retry-after:")),
        "503 must carry Retry-After: {raw}"
    );

    *released.0.lock().unwrap() = true;
    released.1.notify_all();
}

/// The tentpole acceptance property: ONE server answers requests for two
/// registered oracles selected per request via `?oracle=`, with distinct
/// cache entries per oracle, coalescing *within* each oracle, and the
/// registry visible at `GET /v1/oracles`.
#[test]
fn one_server_serves_two_oracles_with_distinct_cache_entries() {
    let server = start_server(4);
    let addr = server.local_addr();
    let qasm = sample_qasm();

    // Same circuit under the default (rule_based) and under an explicit
    // second oracle: both compute (distinct cache entries)…
    let (status, body) = request(addr, "POST", "/v1/optimize", &qasm);
    assert_eq!(status, 200, "body: {body}");
    let rule = qapi::JobStatus::from_json(&json(&body))
        .unwrap()
        .result
        .unwrap();
    assert_eq!(rule.oracle, "rule_based");
    assert!(!rule.cache_hit);

    let (status, body) = request(addr, "POST", "/v1/optimize?oracle=rule_single_pass", &qasm);
    assert_eq!(status, 200, "body: {body}");
    let single = qapi::JobStatus::from_json(&json(&body))
        .unwrap()
        .result
        .unwrap();
    assert_eq!(single.oracle, "rule_single_pass");
    assert!(
        !single.cache_hit,
        "second oracle must be a fresh cache entry"
    );
    assert_eq!(single.fingerprint, rule.fingerprint, "same input circuit");

    // …and each oracle's resubmission hits its own entry.
    for (target, expect_oracle) in [
        ("/v1/optimize", "rule_based"),
        ("/v1/optimize?oracle=rule_single_pass", "rule_single_pass"),
    ] {
        let (status, body) = request(addr, "POST", target, &qasm);
        assert_eq!(status, 200, "body: {body}");
        let hit = qapi::JobStatus::from_json(&json(&body))
            .unwrap()
            .result
            .unwrap();
        assert_eq!(hit.oracle, expect_oracle);
        assert!(hit.cache_hit, "{target} resubmission must hit");
    }

    // Mixed-oracle batch over the same circuit: per-request selection with
    // one shared cache — both jobs are hits now.
    let batch = serde_json::to_string(&serde_json::json!({
        "circuits": [
            {"label": "r", "qasm": qasm.clone(), "oracle": "rule_based"},
            {"label": "s", "qasm": qasm.clone(), "oracle": "rule_single_pass"},
        ],
    }))
    .unwrap();
    let (status, body) = request(addr, "POST", "/v1/batch", &batch);
    assert_eq!(status, 200, "body: {body}");
    let report = qapi::BatchResponse::from_json(&json(&body)).expect("batch DTO");
    assert_eq!(report.cache_hits, 2);
    let oracles: Vec<&str> = report.jobs.iter().map(|j| j.oracle.as_str()).collect();
    assert_eq!(oracles, ["rule_based", "rule_single_pass"]);

    // Coalescing stays per-oracle: concurrent duplicates of a FRESH
    // circuit under each oracle compute once per oracle, not once total
    // and not once per request.
    let fresh = qcir::qasm::to_qasm(&Family::Grover.generate(Family::Grover.ladder(0)[0], 9));
    let responses: Vec<Value> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let fresh = &fresh;
                s.spawn(move || {
                    let target = if i % 2 == 0 {
                        "/v1/optimize"
                    } else {
                        "/v1/optimize?oracle=rule_single_pass"
                    };
                    let (status, body) = request(addr, "POST", target, fresh);
                    assert_eq!(status, 200, "body: {body}");
                    json(&body)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut misses_per_oracle = std::collections::HashMap::new();
    for r in &responses {
        let result = qapi::JobStatus::from_json(r).unwrap().result.unwrap();
        if !result.cache_hit {
            *misses_per_oracle.entry(result.oracle.clone()).or_insert(0) += 1;
        }
    }
    assert_eq!(
        misses_per_oracle.get("rule_based"),
        Some(&1),
        "exactly one computation per oracle: {misses_per_oracle:?}"
    );
    assert_eq!(misses_per_oracle.get("rule_single_pass"), Some(&1));
}

#[test]
fn optimize_accepts_the_json_request_form() {
    let server = start_server(2);
    let addr = server.local_addr();
    let req = qapi::OptimizeRequest {
        qasm: sample_qasm(),
        oracle: Some("rule_single_pass".into()),
        omega: Some(64),
        label: Some("typed".into()),
        wait: true,
    };
    let body = serde_json::to_string(&req.to_json()).unwrap();

    let (status, reply) = request(addr, "POST", "/v1/optimize", &body);
    assert_eq!(status, 200, "body: {reply}");
    let doc = qapi::JobStatus::from_json(&json(&reply)).expect("job DTO");
    assert_eq!(doc.label.as_deref(), Some("typed"));
    let result = doc.result.unwrap();
    assert_eq!(result.oracle, "rule_single_pass");
    assert_eq!(result.omega, 64);

    // Mixing the JSON form with query options is refused, not guessed at.
    let (status, reply) = request(addr, "POST", "/v1/optimize?omega=32", &body);
    assert_eq!(status, 400, "body: {reply}");
    assert_error_body(&reply, "invalid_config");
}

// ---------------------------------------------------------------------------
// /v1/cache admin surface
// ---------------------------------------------------------------------------

#[test]
fn cache_endpoint_reflects_hits_and_delete_forces_recompute() {
    let server = start_server(2);
    let addr = server.local_addr();
    let qasm = sample_qasm();

    // Fresh server: an empty single-tier memory store.
    let (status, body) = request(addr, "GET", "/v1/cache", "");
    assert_eq!(status, 200, "body: {body}");
    let report = qapi::CacheReport::from_json(&json(&body)).expect("cache DTO");
    assert_eq!(report.backend, "memory");
    assert_eq!((report.entries, report.hits), (0, 0));
    assert_eq!(report.tiers.len(), 1);
    assert_eq!(report.tiers[0].tier, "memory");

    // Double POST: the second answers from the store, and /v1/cache says so.
    let (status, _) = request(addr, "POST", "/v1/optimize", &qasm);
    assert_eq!(status, 200);
    let (status, body) = request(addr, "POST", "/v1/optimize", &qasm);
    assert_eq!(status, 200);
    assert_eq!(
        json(&body)
            .get("result")
            .unwrap()
            .get("cache_hit")
            .unwrap()
            .as_bool(),
        Some(true)
    );
    let (_, body) = request(addr, "GET", "/v1/cache", "");
    let report = qapi::CacheReport::from_json(&json(&body)).unwrap();
    assert_eq!(report.hits, 1, "the double-POST hit must be visible");
    assert_eq!(report.entries, 1);
    assert!(report.bytes > 0);

    // /v1/stats carries the same per-tier breakdown.
    let stats = qapi::StatsReport::from_json(&get_stats(addr)).expect("stats DTO");
    assert_eq!(stats.cache_backend, "memory");
    assert_eq!(stats.cache_tiers.len(), 1);
    assert_eq!(stats.cache_tiers[0].hits, 1);

    // DELETE /v1/cache drops the entry; the next identical POST recomputes.
    let calls_before = stats.oracle_calls_issued;
    let (status, body) = request(addr, "DELETE", "/v1/cache", "");
    assert_eq!(status, 200, "body: {body}");
    let cleared = qapi::CacheClearResponse::from_json(&json(&body)).expect("clear DTO");
    assert!(cleared.cleared);
    assert_eq!(cleared.entries_removed, 1);

    let (status, body) = request(addr, "POST", "/v1/optimize", &qasm);
    assert_eq!(status, 200);
    assert_eq!(
        json(&body)
            .get("result")
            .unwrap()
            .get("cache_hit")
            .unwrap()
            .as_bool(),
        Some(false),
        "a cleared cache must recompute"
    );
    let stats = qapi::StatsReport::from_json(&get_stats(addr)).unwrap();
    assert!(
        stats.oracle_calls_issued > calls_before,
        "the recompute must have paid real oracle calls"
    );

    // Unsupported methods on the admin route answer 405, not a guess.
    let (status, body) = request(addr, "POST", "/v1/cache", "");
    assert_eq!(status, 405, "body: {body}");
}

#[test]
fn restarted_server_over_a_disk_store_answers_from_the_disk_tier() {
    let dir = std::env::temp_dir().join(format!(
        "popqc-http-restart-{}-{:?}",
        std::process::id(),
        crate::FRONTEND
    ));
    let _ = std::fs::remove_dir_all(&dir);
    struct Cleanup(std::path::PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    let _cleanup = Cleanup(dir.clone());
    let qasm = sample_qasm();

    let serve_tiered = || {
        let store = qsvc::build_store(qsvc::StoreTier::Tiered, Some(&dir), None, 64, 4).unwrap();
        let svc = OptimizationService::with_store(
            OracleRegistry::builtin(),
            ServiceConfig {
                workers: 1,
                threads_per_job: 1,
                cache_capacity: 64,
                cache_shards: 4,
                seg_cache_capacity: 0,
            },
            store,
        );
        serve_state(Arc::new(AppState::new(svc, 80)))
    };

    // Server one computes, persists, and is torn down.
    let optimized = {
        let server = serve_tiered();
        let (status, body) = request(server.local_addr(), "POST", "/v1/optimize", &qasm);
        assert_eq!(status, 200, "body: {body}");
        let doc = json(&body);
        let result = doc.get("result").unwrap();
        assert_eq!(result.get("cache_hit").unwrap().as_bool(), Some(false));
        result.get("qasm").unwrap().as_str().unwrap().to_string()
    };

    // Server two — a new service, new memory tier, same directory. The
    // identical POST must be a cache hit served from disk with zero new
    // oracle calls, and the disk tier's hit counter must show it.
    let server = serve_tiered();
    let addr = server.local_addr();
    let (status, body) = request(addr, "POST", "/v1/optimize", &qasm);
    assert_eq!(status, 200, "body: {body}");
    let doc = json(&body);
    let result = doc.get("result").unwrap();
    assert_eq!(
        result.get("cache_hit").unwrap().as_bool(),
        Some(true),
        "restart must answer from the disk tier"
    );
    assert_eq!(
        result.get("qasm").unwrap().as_str().unwrap(),
        optimized,
        "the restored circuit must be identical"
    );
    let stats = qapi::StatsReport::from_json(&get_stats(addr)).unwrap();
    assert_eq!(stats.oracle_calls_issued, 0, "no recompute after restart");
    let (_, body) = request(addr, "GET", "/v1/cache", "");
    let report = qapi::CacheReport::from_json(&json(&body)).unwrap();
    assert_eq!(report.backend, "tiered");
    let disk = report.tiers.iter().find(|t| t.tier == "disk").unwrap();
    assert_eq!(disk.hits, 1, "the hit must be attributed to the disk tier");
}
