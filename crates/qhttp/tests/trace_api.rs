//! Loopback tests for the tracing surface: a real server on an ephemeral
//! port, driven over raw `TcpStream`s, proving the PR's acceptance
//! properties end to end — `?trace=1` force-samples and echoes the trace
//! id, `GET /v1/traces/{id}` returns a causally-linked span tree whose
//! spans nest inside the request wall time, the Chrome export parses,
//! and client-supplied request ids are honored (sanitized) or replaced.
//!
//! The trace ring is process-global (like the metrics registry), which is
//! why these tests live in their own integration binary: only forced
//! traces with process-unique ids are asserted on, so tests within this
//! binary can run in parallel.

use benchgen::Family;
use qhttp::api::AppState;
use qhttp::server::{HttpServer, ServerConfig};
use qsvc::{OptimizationService, OracleRegistry, ServiceConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

fn start_server() -> HttpServer {
    let svc = OptimizationService::new(
        OracleRegistry::builtin(),
        ServiceConfig {
            workers: 2,
            threads_per_job: 1,
            cache_capacity: 64,
            cache_shards: 4,
            seg_cache_capacity: 16,
        },
    );
    let state = Arc::new(AppState::new(svc, 80));
    HttpServer::serve("127.0.0.1:0", state, ServerConfig::default()).expect("bind loopback")
}

fn sample_qasm(seed: u64) -> String {
    qcir::qasm::to_qasm(&Family::Vqe.generate(Family::Vqe.ladder(0)[0], seed))
}

/// One-shot request with optional extra headers; returns
/// (status, headers, body).
fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    target: &str,
    extra: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: t\r\n{extra}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let pos = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header/body split");
    let head = std::str::from_utf8(&raw[..pos]).expect("utf-8 headers");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let body = String::from_utf8_lossy(&raw[pos + 4..]).into_owned();
    (status, headers, body)
}

fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    request_with_headers(addr, method, target, "", body)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn parse_report(body: &str) -> qapi::TraceReport {
    let doc = serde_json::from_str(body).expect("trace report JSON");
    qapi::TraceReport::from_json(&doc).expect("trace report DTO")
}

/// The tentpole acceptance property: `?trace=1` forces the sample, the
/// response echoes the id, and the captured trace is one causally-linked
/// tree — root → dispatch → engine → oracle calls — whose spans all nest
/// inside the measured request wall time.
#[test]
fn forced_optimize_trace_returns_a_causal_tree_within_wall_time() {
    let server = start_server();
    let addr = server.local_addr();

    let started = Instant::now();
    let (status, headers, body) = request(addr, "POST", "/v1/optimize?trace=1", &sample_qasm(41));
    let wall_nanos = started.elapsed().as_nanos() as u64;
    assert_eq!(status, 200, "body: {body}");
    let trace_id = header(&headers, "x-popqc-trace-id")
        .expect("?trace=1 must echo x-popqc-trace-id")
        .to_string();
    assert_eq!(trace_id.len(), 16, "canonical 16-hex id: {trace_id}");

    let (status, _, body) = request(addr, "GET", &format!("/v1/traces/{trace_id}"), "");
    assert_eq!(status, 200, "body: {body}");
    let report = parse_report(&body);
    assert_eq!(report.trace_id, trace_id);
    assert_eq!(report.status, 200);
    assert_eq!(report.sampled_because, "forced");

    // Exactly one root (id 1, parent 0, name "request"), and every other
    // span's parent exists — the tree is causally linked, no orphans.
    let root = &report.spans[0];
    assert_eq!(
        (root.id, root.parent, root.name.as_str()),
        (1, 0, "request")
    );
    let ids: std::collections::HashSet<u64> = report.spans.iter().map(|s| s.id).collect();
    assert_eq!(ids.len(), report.spans.len(), "span ids must be unique");
    for span in &report.spans[1..] {
        assert!(
            ids.contains(&span.parent),
            "span `{}` (id {}) has unknown parent {}",
            span.name,
            span.id,
            span.parent
        );
        assert_ne!(span.parent, span.id, "a span cannot parent itself");
    }

    // The layers all contributed: queue wait, engine, at least one
    // oracle call and one round under the engine span.
    let find = |name: &str| report.spans.iter().filter(|s| s.name == name).count();
    assert!(find("job_queue_wait") >= 1, "spans: {:?}", report.spans);
    assert_eq!(find("engine"), 1, "spans: {:?}", report.spans);
    assert!(find("oracle_call") >= 1, "spans: {:?}", report.spans);
    assert!(find("round") >= 1, "spans: {:?}", report.spans);
    let engine_id = report.spans.iter().find(|s| s.name == "engine").unwrap().id;
    assert!(
        report
            .spans
            .iter()
            .filter(|s| s.name == "oracle_call")
            .all(|s| {
                // Oracle calls hang off the engine span directly or under
                // a round/parallel-op descendant of it.
                let mut parent = s.parent;
                for _ in 0..10 {
                    if parent == engine_id {
                        return true;
                    }
                    match report.spans.iter().find(|p| p.id == parent) {
                        Some(p) => parent = p.parent,
                        None => return false,
                    }
                }
                false
            }),
        "oracle calls must descend from the engine span: {:?}",
        report.spans
    );

    // Timing sanity: every span nests inside the trace, and the trace
    // inside the measured wall time.
    assert!(report.duration_nanos <= wall_nanos);
    for span in &report.spans {
        assert!(
            span.start_nanos + span.duration_nanos <= report.duration_nanos,
            "span `{}` [{} + {}] escapes the trace envelope {}",
            span.name,
            span.start_nanos,
            span.duration_nanos,
            report.duration_nanos
        );
    }
    // The category split is attributed time, so each bucket is bounded
    // by the trace duration (oracle calls are serial at width 1 here).
    for (label, nanos) in [
        ("queue", report.queue_nanos),
        ("engine", report.engine_nanos),
        ("store", report.store_nanos),
    ] {
        assert!(
            nanos <= report.duration_nanos,
            "{label} split {nanos} exceeds trace duration {}",
            report.duration_nanos
        );
    }
    assert!(report.engine_nanos > 0, "engine time must be attributed");
    assert!(report.oracle_nanos > 0, "oracle time must be attributed");
}

/// The index lists the forced trace, and the Chrome export parses as
/// `trace_event` JSON with one complete event per span.
#[test]
fn trace_index_and_chrome_export_cover_the_kept_trace() {
    let server = start_server();
    let addr = server.local_addr();

    let (status, headers, body) =
        request(addr, "POST", "/v1/optimize?trace=true", &sample_qasm(43));
    assert_eq!(status, 200, "body: {body}");
    let trace_id = header(&headers, "x-popqc-trace-id")
        .expect("trace id header")
        .to_string();

    let (status, _, body) = request(addr, "GET", "/v1/traces?limit=1024", "");
    assert_eq!(status, 200, "body: {body}");
    let doc = serde_json::from_str(&body).expect("index JSON");
    let index = qapi::TraceIndex::from_json(&doc).expect("index DTO");
    let summary = index
        .traces
        .iter()
        .find(|t| t.trace_id == trace_id)
        .expect("forced trace must be listed in the index");
    assert_eq!(summary.status, 200);
    assert_eq!(summary.sampled_because, "forced");
    assert!(summary.span_count >= 3);

    let (status, _, v1_body) = request(addr, "GET", &format!("/v1/traces/{trace_id}"), "");
    assert_eq!(status, 200);
    let report = parse_report(&v1_body);

    let (status, _, chrome) = request(
        addr,
        "GET",
        &format!("/v1/traces/{trace_id}?format=chrome"),
        "",
    );
    assert_eq!(status, 200, "body: {chrome}");
    let doc = serde_json::from_str(&chrome).expect("chrome export must parse as JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert_eq!(events.len(), report.spans.len());
    for event in events {
        assert_eq!(event.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert!(event.get("ts").and_then(|v| v.as_f64()).is_some());
        assert!(event.get("dur").and_then(|v| v.as_f64()).unwrap() > 0.0);
    }

    // Unknown ids (and unknown formats) answer clean errors.
    let (status, _, _) = request(addr, "GET", "/v1/traces/ffffffffffffffff", "");
    assert_eq!(status, 404);
    let (status, _, _) = request(
        addr,
        "GET",
        &format!("/v1/traces/{trace_id}?format=jaeger"),
        "",
    );
    assert_eq!(status, 400);
}

/// Satellite property: a client-supplied `x-popqc-request-id` is echoed
/// back (it names the request in the access log and any kept trace),
/// while malformed or oversized ids are replaced with minted ones.
#[test]
fn client_request_ids_are_honored_sanitized_and_capped() {
    let server = start_server();
    let addr = server.local_addr();

    let (status, headers, _) = request_with_headers(
        addr,
        "GET",
        "/healthz",
        "x-popqc-request-id: build-7751.retry_2\r\n",
        "",
    );
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "x-popqc-request-id"),
        Some("build-7751.retry_2"),
        "a well-formed client id must be honored"
    );

    for bad in ["spaces are not ok", "shell`injection`", &"x".repeat(65), ""] {
        let (status, headers, _) = request_with_headers(
            addr,
            "GET",
            "/healthz",
            &format!("x-popqc-request-id: {bad}\r\n"),
            "",
        );
        assert_eq!(status, 200);
        let echoed = header(&headers, "x-popqc-request-id").expect("id always echoed");
        assert_ne!(echoed, bad, "malformed id must be replaced, not echoed");
        assert!(
            echoed.contains('-') && echoed.len() <= 64,
            "replacement must be a minted id: {echoed}"
        );
    }
}

/// Unforced cheap requests are mostly NOT kept (tail sampling at the
/// default 1-in-16 leaves fast 200s untraced) — but the forced one next
/// to them always is. The discard side is asserted via the monotone
/// `popqc_traces_discarded_total` counter rather than the index: the
/// trace ring is process-global and parallel tests in this binary also
/// keep forced traces, so "no other trace is forced" would race.
#[test]
fn unforced_fast_requests_are_mostly_discarded_but_forced_is_kept() {
    let server = start_server();
    let addr = server.local_addr();
    let discarded = |body: &str| -> f64 {
        body.lines()
            .find_map(|l| l.strip_prefix("popqc_traces_discarded_total "))
            .expect("discard counter scraped")
            .parse()
            .expect("numeric counter")
    };

    let (status, _, before) = request(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    // Sixteen fast GETs: each survives sampling with probability 1/16,
    // so at least one discard in the batch is a (1 - 16^-16) certainty,
    // and parallel tests can only push the global counter further up.
    for _ in 0..16 {
        let (status, _, _) = request(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
    }
    let (status, headers, body) = request(addr, "POST", "/v1/optimize?trace=1", &sample_qasm(47));
    assert_eq!(status, 200, "body: {body}");
    let forced_id = header(&headers, "x-popqc-trace-id")
        .expect("trace id")
        .to_string();
    let (status, _, after) = request(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    assert!(
        discarded(&after) > discarded(&before),
        "fast unforced requests must feed the discard counter"
    );

    let (status, _, body) = request(addr, "GET", "/v1/traces?limit=1024", "");
    assert_eq!(status, 200);
    let doc = serde_json::from_str(&body).expect("index JSON");
    let index = qapi::TraceIndex::from_json(&doc).expect("index DTO");
    let forced = index
        .traces
        .iter()
        .find(|t| t.trace_id == forced_id)
        .expect("forced trace missing from index");
    assert_eq!(forced.sampled_because, "forced");
}
