//! The threaded acceptor: a `TcpListener` shared by a small pool of
//! connection threads, each running a keep-alive request loop.
//!
//! Sizing model: a connection occupies its thread for as long as it stays
//! open, so `conn_threads` bounds concurrent connections (requests beyond
//! that queue in the kernel accept backlog). Optimization work itself runs
//! on the [`OptimizationService`](qsvc::OptimizationService) worker pool,
//! not on connection threads — a slow circuit blocks only its own
//! connection. Idle keep-alive connections are reaped by a read timeout so
//! they cannot pin threads forever.

use crate::http::{read_request, HttpError, Request, Response};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Routes one parsed request to one response. Implemented by
/// [`crate::api::AppState`]; the separation keeps the socket plumbing
/// testable without the service.
pub trait Handler: Send + Sync + 'static {
    fn handle(&self, req: &Request) -> Response;
}

/// Server sizing knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Connection-handler threads (= max concurrent connections).
    pub conn_threads: usize,
    /// Idle keep-alive connections are closed after this long without a
    /// request.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            conn_threads: 8,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// Connection counters for the threaded frontend, feeding the
/// `frontend` block of `/v1/stats` for parity with the evented path.
/// The admission-control counters (shed, rate-limited, …) stay zero:
/// this frontend has no such machinery — its connection-thread count IS
/// the admission control.
#[derive(Default)]
struct ConnCounters {
    open: AtomicU64,
    accepted: AtomicU64,
}

/// Decrements the open-connection gauge even if the handler loop exits
/// by panic.
struct OpenGuard(Arc<ConnCounters>);

impl Drop for OpenGuard {
    fn drop(&mut self) {
        self.0.open.fetch_sub(1, Relaxed);
    }
}

struct ThreadedProbe(Arc<ConnCounters>);

impl crate::api::FrontendProbe for ThreadedProbe {
    fn report(&self) -> qapi::FrontendReport {
        qapi::FrontendReport {
            frontend: "threads".to_string(),
            connections_open: self.0.open.load(Relaxed),
            connections_accepted: self.0.accepted.load(Relaxed),
            ..qapi::FrontendReport::default()
        }
    }
}

/// A running HTTP server. Dropping it (or calling
/// [`shutdown`](HttpServer::shutdown)) stops accepting, wakes the acceptor
/// threads, and joins them.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    counters: Arc<ConnCounters>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the connection threads.
    pub fn serve<H: Handler>(
        addr: impl ToSocketAddrs,
        handler: Arc<H>,
        config: ServerConfig,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let listener = Arc::new(listener);
        let counters = Arc::new(ConnCounters::default());
        let threads = (0..config.conn_threads.max(1))
            .map(|i| {
                let listener = Arc::clone(&listener);
                let handler = Arc::clone(&handler);
                let stop = Arc::clone(&stop);
                let counters = Arc::clone(&counters);
                let timeout = config.read_timeout;
                std::thread::Builder::new()
                    .name(format!("qhttp-conn-{i}"))
                    .spawn(move || {
                        while !stop.load(SeqCst) {
                            match listener.accept() {
                                Ok((stream, _peer)) => {
                                    if stop.load(SeqCst) {
                                        return;
                                    }
                                    counters.accepted.fetch_add(1, Relaxed);
                                    counters.open.fetch_add(1, Relaxed);
                                    let _open = OpenGuard(Arc::clone(&counters));
                                    // Both directions: a client that stops
                                    // reading its response must not pin
                                    // this thread any longer than an idle
                                    // one.
                                    let _ = stream.set_read_timeout(Some(timeout));
                                    let _ = stream.set_write_timeout(Some(timeout));
                                    let _ = stream.set_nodelay(true);
                                    handle_connection(stream, handler.as_ref(), &stop);
                                }
                                Err(_) => {
                                    // Transient accept errors (EMFILE, reset
                                    // during handshake); back off briefly.
                                    std::thread::sleep(Duration::from_millis(10));
                                }
                            }
                        }
                    })
                    .expect("spawn connection thread")
            })
            .collect();
        Ok(HttpServer {
            addr,
            stop,
            threads,
            counters,
        })
    }

    /// The bound address (resolves the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A [`FrontendProbe`](crate::api::FrontendProbe) over this server's
    /// connection counters, for
    /// [`AppState::set_frontend_probe`](crate::api::AppState::set_frontend_probe).
    pub fn probe(&self) -> Arc<dyn crate::api::FrontendProbe> {
        Arc::new(ThreadedProbe(Arc::clone(&self.counters)))
    }

    /// Stops accepting and joins the connection threads. Connections that
    /// are mid-request finish their current response first; a thread
    /// parked on an idle keep-alive connection exits at its next read
    /// timeout, so shutdown can take up to
    /// [`ServerConfig::read_timeout`] in the worst case.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, SeqCst) {
            return;
        }
        // Wake every thread blocked in `accept` with a no-op connection.
        // A wildcard bind address (0.0.0.0/[::]) is not connectable on
        // every platform; aim the wake-up at loopback instead.
        let ip = match self.addr.ip() {
            std::net::IpAddr::V4(v4) if v4.is_unspecified() => {
                std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST)
            }
            std::net::IpAddr::V6(v6) if v6.is_unspecified() => {
                std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST)
            }
            ip => ip,
        };
        let wake = SocketAddr::new(ip, self.addr.port());
        for _ in 0..self.threads.len() {
            let _ = TcpStream::connect_timeout(&wake, Duration::from_millis(250));
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Keep-alive loop: read a request, dispatch, respond, repeat until the
/// client closes, errs, opts out of keep-alive, or the server stops.
fn handle_connection<H: Handler>(stream: TcpStream, handler: &H, stop: &AtomicBool) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader, &mut writer) {
            Ok(None) => return, // clean close between requests
            Ok(Some(req)) => {
                // A panicking handler must not unwind through this thread:
                // the acceptor pool is fixed-size and never respawned, so a
                // lost thread would permanently shrink the server. Answer
                // 500 and drop the connection instead.
                let response =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler.handle(&req)));
                let (response, keep_alive) = match response {
                    // Stop keeping the connection alive once shutdown begins.
                    Ok(r) => (r, req.keep_alive && !stop.load(SeqCst)),
                    Err(_) => (
                        Response::json(
                            500,
                            &qapi::ApiError::Internal("internal server error".to_string())
                                .to_json(),
                        ),
                        false,
                    ),
                };
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(e) => {
                // Protocol errors get a response when possible; the
                // connection is not reusable afterwards (framing is lost).
                let response = match e {
                    HttpError::BadRequest(msg) => {
                        Response::json(400, &qapi::transport_error_json("bad_request", &msg))
                    }
                    HttpError::PayloadTooLarge => Response::json(
                        413,
                        &qapi::transport_error_json("payload_too_large", "request body too large"),
                    ),
                    HttpError::Io(_) => return, // timeout/reset: nothing to say
                };
                let _ = response.write_to(&mut writer, false);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    /// Panics on `/boom`, otherwise answers 200.
    struct BoomHandler;

    impl Handler for BoomHandler {
        fn handle(&self, req: &Request) -> Response {
            if req.path == "/boom" {
                panic!("handler exploded");
            }
            Response::text(200, "ok")
        }
    }

    fn roundtrip(addr: SocketAddr, target: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        use std::io::Write;
        write!(
            stream,
            "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .expect("send");
        let mut reply = String::new();
        stream.read_to_string(&mut reply).expect("read reply");
        reply
    }

    #[test]
    fn handler_panic_answers_500_and_does_not_kill_the_conn_thread() {
        // One connection thread: if the panic unwound through it, the
        // second and third requests would hang instead of being served.
        let server = HttpServer::serve(
            "127.0.0.1:0",
            Arc::new(BoomHandler),
            ServerConfig {
                conn_threads: 1,
                read_timeout: Duration::from_secs(5),
            },
        )
        .expect("bind loopback");
        let addr = server.local_addr();

        for _ in 0..2 {
            let reply = roundtrip(addr, "/boom");
            assert!(reply.starts_with("HTTP/1.1 500 "), "reply: {reply}");
            assert!(reply.contains("Connection: close"), "reply: {reply}");
        }
        let reply = roundtrip(addr, "/fine");
        assert!(reply.starts_with("HTTP/1.1 200 "), "reply: {reply}");
    }
}
