//! # popqc-http — HTTP frontend for the batch optimization service
//!
//! Wraps [`qsvc::OptimizationService`] in a std-only, dependency-free
//! HTTP/1.1 server so remote clients can submit QASM circuits, poll job
//! progress, and read the cache/oracle counters — the "shared submission
//! front door over a parallel backend" shape the ROADMAP's north star
//! calls for. The `popqc serve` CLI subcommand is a thin wrapper over this
//! crate.
//!
//! Four layers, separated so each is testable on its own:
//!
//! * [`http`] — vendored minimal HTTP/1.1 framing: an incremental
//!   request parser ([`http::RequestParser`], request line, headers,
//!   `Content-Length` and chunked bodies, usable byte-at-a-time by an
//!   event loop or via the blocking [`http::read_request`] wrapper),
//!   response serialization, keep-alive semantics.
//! * [`server`] — the **threaded** frontend: an acceptor over one
//!   `TcpListener`; each connection thread runs a keep-alive loop and
//!   dispatches to a [`Handler`]. Simple and debuggable; concurrent
//!   connections are bounded by the thread count.
//! * [`evented`] — the **readiness-driven** frontend over
//!   [`qnet`]: a few loop threads sweep hundreds of nonblocking
//!   keep-alive connections, with admission control (connection cap,
//!   idle/slowloris deadlines, per-peer rate limiting, queue-depth load
//!   shedding) answered inline before work is enqueued. The `popqc
//!   serve` default.
//! * [`api`] — the v1 JSON routes (`POST /v1/optimize`, `POST /v1/batch`,
//!   `GET /v1/jobs/{id}`, `GET /v1/oracles`, `GET /v1/stats`,
//!   `GET|DELETE /v1/cache`, `GET /v1/version`, `GET /healthz`) over an
//!   [`AppState`] holding the service and the job registry. Every request
//!   and response body is a `popqc-api` DTO; failures map through the
//!   closed `qapi::ApiError` taxonomy and its canonical HTTP statuses.
//!
//! Concurrent identical submissions are deduplicated by the service's
//! in-flight coalescing (one computation, N waiters) and completed
//! duplicates by its result cache — both visible per job (`cache_hit`,
//! `coalesced`) and in `/v1/stats`. The service dispatches over its
//! [`qsvc::OracleRegistry`] per request (`?oracle=`), so one server
//! answers mixed-oracle traffic.
//!
//! ## Example
//!
//! ```no_run
//! use qhttp::api::AppState;
//! use qhttp::server::{HttpServer, ServerConfig};
//! use qsvc::{OptimizationService, OracleRegistry, ServiceConfig};
//! use std::sync::Arc;
//!
//! let svc = OptimizationService::new(
//!     OracleRegistry::builtin(),
//!     ServiceConfig::default(),
//! );
//! let state = Arc::new(AppState::new(svc, 200));
//! let server = HttpServer::serve("127.0.0.1:8080", state, ServerConfig::default())
//!     .expect("bind");
//! println!("listening on http://{}", server.local_addr());
//! // ... server runs until dropped ...
//! ```

pub mod api;
pub mod evented;
pub mod http;
pub mod metrics;
pub mod server;

pub use api::{AppState, FrontendProbe};
pub use evented::{EventedConfig, EventedServer};
pub use http::{Request, Response};
pub use server::{Handler, HttpServer, ServerConfig};
