//! The JSON API over the optimization service.
//!
//! | route | method | body | reply |
//! |-------|--------|------|-------|
//! | `/healthz` | GET | — | `{"status":"ok"}` |
//! | `/v1/stats` | GET | — | service counters (see [`qsvc::report::stats_report`]) |
//! | `/v1/optimize` | POST | QASM text | job document (blocks; `?wait=false` returns 202 + job id) |
//! | `/v1/batch` | POST | `{"circuits":[{"label","qasm"},…],"omega":N}` | batch report (see [`qsvc::report::batch_report`]) |
//! | `/v1/jobs/{id}` | GET | — | job status/progress, result when done |
//!
//! `POST /v1/optimize` options are query parameters: `omega` (engine
//! window, defaults to the server's `--omega`), `label` (echoed in the job
//! document), `wait=false` (submit-and-poll instead of blocking). Only
//! `wait=false` submissions are retained for `/v1/jobs/{id}` polling —
//! blocking requests get their result inline and are not kept around. The
//! polling registry is bounded: when it is full of still-pending jobs, new
//! `wait=false` submissions are refused with 503 instead of growing the
//! queue without limit. A job whose oracle run failed reports the failure
//! in its `result.error` field (and a 500 status when blocking); a batch
//! with any failed job is a 500 whose report carries per-job `error`
//! fields, with `qasm` omitted for the failed entries.
//! Malformed input — unparseable QASM, bad JSON, unknown fields of the
//! wrong type, out-of-range numbers — is a 400 with an `error` message,
//! never a dropped connection.

use crate::http::{Request, Response};
use crate::server::Handler;
use popqc_core::PopqcConfig;
use qcir::{qasm, Gate};
use qoracle::SegmentOracle;
use qsvc::report::{batch_report, job_report, stats_report};
use qsvc::service::{JobHandle, JobResult, OptimizationService};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Cap on the `wait=false` job registry. Completed jobs beyond it are
/// evicted oldest-first; a pending job is never evicted (its client may
/// still be polling toward a live handle), so when eviction cannot bring
/// the registry under the cap, new `wait=false` submissions are refused
/// with 503 — otherwise a flood of distinct circuits would grow the
/// registry and the service queue (each entry holding a full circuit)
/// without bound. Blocking submissions are never stored and are bounded
/// by the connection-thread count instead.
const JOB_HISTORY_CAP: usize = 4096;

struct StoredJob {
    handle: Arc<JobHandle>,
    label: Option<String>,
}

/// Shared server state: the service plus the polling-job registry.
///
/// Generic over the oracle like the service itself; the `popqc serve` CLI
/// monomorphizes one per `--oracle` choice.
pub struct AppState<O: SegmentOracle<Gate> + Send + Sync + 'static> {
    svc: OptimizationService<O>,
    default_omega: usize,
    jobs: Mutex<BTreeMap<u64, StoredJob>>,
    job_cap: usize,
    next_job_id: AtomicU64,
}

impl<O: SegmentOracle<Gate> + Send + Sync + 'static> AppState<O> {
    /// Wraps a running service. `default_omega` applies when a request
    /// does not pass `?omega=`.
    pub fn new(svc: OptimizationService<O>, default_omega: usize) -> AppState<O> {
        AppState::with_job_cap(svc, default_omega, JOB_HISTORY_CAP)
    }

    /// [`new`](Self::new) with an explicit cap on the `wait=false` job
    /// registry (default 4096): completed jobs beyond it are evicted
    /// oldest-first, and when pending jobs alone fill it, new `wait=false`
    /// submissions are refused with 503. Mainly for tests and
    /// memory-constrained deployments.
    pub fn with_job_cap(
        svc: OptimizationService<O>,
        default_omega: usize,
        job_cap: usize,
    ) -> AppState<O> {
        AppState {
            svc,
            default_omega,
            jobs: Mutex::new(BTreeMap::new()),
            job_cap,
            next_job_id: AtomicU64::new(1),
        }
    }

    /// The wrapped service (e.g. for shutdown-time stats logging).
    pub fn service(&self) -> &OptimizationService<O> {
        &self.svc
    }

    /// Evicts oldest *completed* jobs until the registry is under the cap;
    /// never a pending job (its client may still be polling toward a live
    /// handle).
    fn evict_completed(&self, jobs: &mut BTreeMap<u64, StoredJob>) {
        while jobs.len() >= self.job_cap {
            let Some((&oldest_done, _)) =
                jobs.iter().find(|(_, j)| j.handle.try_result().is_some())
            else {
                break;
            };
            jobs.remove(&oldest_done);
        }
    }

    fn handle_optimize(&self, req: &Request) -> Response {
        let qasm_src = match req.body_utf8() {
            Ok(s) => s,
            Err(e) => return error(400, e.to_string()),
        };
        if qasm_src.trim().is_empty() {
            return error(400, "empty request body; POST the QASM program text");
        }
        let circuit = match qasm::parse(qasm_src) {
            Ok(c) => c,
            Err(e) => return error(400, e.to_string()),
        };
        let omega = match req.query_param("omega") {
            None => self.default_omega,
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => return error(400, format!("bad omega `{v}` (need a positive integer)")),
            },
        };
        let wait = match req.query_param("wait") {
            None => true,
            Some("true") | Some("1") => true,
            Some("false") | Some("0") => false,
            Some(v) => return error(400, format!("bad wait `{v}` (need true|false)")),
        };
        let label = req.query_param("label").map(str::to_string);

        let cfg = PopqcConfig::with_omega(omega);
        if wait {
            // Blocking requests deliver their result inline and are not
            // retained: every JobResult holds a full circuit, so keeping
            // jobs nobody will poll would turn the registry cap into an
            // unbounded-bytes cache.
            let handle = self.svc.submit(circuit, &cfg);
            let id = self.next_job_id.fetch_add(1, Relaxed);
            let result = handle.wait();
            let status = if result.error.is_some() { 500 } else { 200 };
            Response::json(
                status,
                &job_json(id, label.as_deref(), Some(&result), &handle),
            )
        } else {
            // Capacity check, submission, and registration form ONE
            // critical section: releasing the lock between the check and
            // the insert would let concurrent submissions overshoot the
            // cap. Holding it across `submit` cannot deadlock — the
            // service never takes this registry lock — and refusing
            // *before* submitting matters because a queued job cannot be
            // taken back.
            let mut jobs = self.jobs.lock().expect("job registry poisoned");
            self.evict_completed(&mut jobs);
            if jobs.len() >= self.job_cap {
                return error(
                    503,
                    "job registry is full of pending jobs; retry later or use wait=true",
                );
            }
            let handle = Arc::new(self.svc.submit(circuit, &cfg));
            let id = self.next_job_id.fetch_add(1, Relaxed);
            jobs.insert(
                id,
                StoredJob {
                    handle: Arc::clone(&handle),
                    label: label.clone(),
                },
            );
            drop(jobs);
            // A submit-time cache hit completes synchronously inside
            // `submit`; report it done (200) rather than claiming the
            // client must poll.
            let result = handle.try_result();
            let status = if result.is_some() { 200 } else { 202 };
            Response::json(
                status,
                &job_json(id, label.as_deref(), result.as_deref(), &handle),
            )
        }
    }

    fn handle_batch(&self, req: &Request) -> Response {
        let body = match req.body_utf8() {
            Ok(s) => s,
            Err(e) => return error(400, e.to_string()),
        };
        let doc = match serde_json::from_str(body) {
            Ok(v) => v,
            Err(e) => return error(400, format!("request body is not valid JSON: {e}")),
        };
        let Some(entries) = doc.get("circuits").and_then(Value::as_array) else {
            return error(400, "missing `circuits` array");
        };
        if entries.is_empty() {
            return error(400, "`circuits` is empty");
        }
        let omega = match doc.get("omega") {
            None => self.default_omega,
            Some(v) => match v.as_u64() {
                Some(n) if n > 0 => n as usize,
                _ => return error(400, "bad `omega` (need a positive integer)"),
            },
        };

        let mut labels = Vec::with_capacity(entries.len());
        let mut circuits = Vec::with_capacity(entries.len());
        for (i, entry) in entries.iter().enumerate() {
            let (label, src) = match entry {
                Value::String(s) => (format!("job-{i}"), s.as_str()),
                obj => {
                    let Some(src) = obj.get("qasm").and_then(Value::as_str) else {
                        return error(400, format!("circuits[{i}]: missing `qasm` string"));
                    };
                    let label = obj
                        .get("label")
                        .and_then(Value::as_str)
                        .map(str::to_string)
                        .unwrap_or_else(|| format!("job-{i}"));
                    (label, src)
                }
            };
            match qasm::parse(src) {
                Ok(c) => {
                    labels.push(label);
                    circuits.push(c);
                }
                Err(e) => return error(400, format!("{label}: {e}")),
            }
        }

        let cfg = PopqcConfig::with_omega(omega);
        let batch = self.svc.submit_batch(circuits, &cfg).wait();
        let mut report = batch_report(&labels, &batch, 1);
        if let Value::Object(pairs) = &mut report {
            // The batch report carries stats, not circuits; attach the
            // optimized QASM per job so the endpoint is self-contained.
            // A failed job (oracle panic) holds its *input* circuit, so no
            // `qasm` is attached there — only its `error` field — and the
            // whole response is a 500 so a client checking the status code
            // alone can never mistake an input echo for an optimization.
            if let Some(jobs) = pairs
                .iter_mut()
                .find(|(k, _)| k == "jobs")
                .and_then(|(_, v)| match v {
                    Value::Array(a) => Some(a),
                    _ => None,
                })
            {
                for (job, result) in jobs.iter_mut().zip(&batch.results) {
                    if let (Value::Object(fields), None) = (job, &result.error) {
                        fields.push(("qasm".to_string(), json!(qasm::to_qasm(&result.circuit))));
                    }
                }
            }
        }
        let any_failed = batch.results.iter().any(|r| r.error.is_some());
        Response::json(if any_failed { 500 } else { 200 }, &report)
    }

    fn handle_job_get(&self, id_str: &str) -> Response {
        let Ok(id) = id_str.parse::<u64>() else {
            return error(400, format!("bad job id `{id_str}`"));
        };
        let job = {
            let jobs = self.jobs.lock().expect("job registry poisoned");
            jobs.get(&id)
                .map(|j| (Arc::clone(&j.handle), j.label.clone()))
        };
        let Some((handle, label)) = job else {
            return error(404, format!("no such job {id}"));
        };
        let result = handle.try_result();
        Response::json(
            200,
            &job_json(id, label.as_deref(), result.as_deref(), &handle),
        )
    }

    fn handle_stats(&self) -> Response {
        let mut stats = stats_report(
            &self.svc.stats(),
            self.svc.workers(),
            self.svc.threads_per_job(),
        );
        if let Value::Object(pairs) = &mut stats {
            pairs.push((
                "jobs_tracked".to_string(),
                json!(self.jobs.lock().expect("job registry poisoned").len()),
            ));
        }
        Response::json(200, &stats)
    }
}

impl<O: SegmentOracle<Gate> + Send + Sync + 'static> Handler for AppState<O> {
    fn handle(&self, req: &Request) -> Response {
        let method = req.method.as_str();
        let path = req.path.as_str();
        match (method, path) {
            ("GET", "/healthz") => Response::json(200, &json!({ "status": "ok" })),
            ("GET", "/v1/stats") => self.handle_stats(),
            ("POST", "/v1/optimize") => self.handle_optimize(req),
            ("POST", "/v1/batch") => self.handle_batch(req),
            (_, "/healthz") | (_, "/v1/stats") => method_not_allowed("GET"),
            (_, "/v1/optimize") | (_, "/v1/batch") => method_not_allowed("POST"),
            _ => match path.strip_prefix("/v1/jobs/") {
                Some(id) if method == "GET" => self.handle_job_get(id),
                Some(_) => method_not_allowed("GET"),
                None => error(404, format!("no route for {path}")),
            },
        }
    }
}

fn error(status: u16, msg: impl Into<String>) -> Response {
    Response::json(status, &json!({ "error": msg.into() }))
}

fn method_not_allowed(allowed: &str) -> Response {
    error(405, format!("method not allowed (use {allowed})"))
}

/// The job document: status + progress always, stats + optimized QASM once
/// the result exists. One schema for `/v1/optimize` and `/v1/jobs/{id}`;
/// the stats fields come from [`job_report`] (same schema as the CLI's
/// batch report), with the optimized QASM appended.
fn job_json(id: u64, label: Option<&str>, result: Option<&JobResult>, handle: &JobHandle) -> Value {
    let mut doc = json!({
        "job_id": id,
        "label": label,
        "done": result.is_some(),
        "rounds_completed": handle.rounds_completed(),
    });
    if let (Some(r), Value::Object(pairs)) = (result, &mut doc) {
        let mut stats = job_report(r);
        if let Value::Object(fields) = &mut stats {
            fields.push(("qasm".to_string(), json!(qasm::to_qasm(&r.circuit))));
        }
        pairs.push(("result".to_string(), stats));
    }
    doc
}
