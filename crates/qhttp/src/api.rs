//! The v1 JSON API over the optimization service.
//!
//! Every request and response body is a `popqc-api` DTO — this module
//! contains no JSON schema of its own, only routing and the translation
//! between HTTP mechanics (bodies, query strings, status codes) and the
//! typed API:
//!
//! | route | method | body | reply |
//! |-------|--------|------|-------|
//! | `/healthz` | GET | — | `{"api_version":"v1","status":"ok"}` |
//! | `/v1/version` | GET | — | [`qapi::VersionInfo`] |
//! | `/v1/oracles` | GET | — | [`qapi::OracleList`] (the registry) |
//! | `/v1/stats` | GET | — | [`qapi::StatsReport`] |
//! | `/v1/metrics` | GET | — | Prometheus text exposition (`text/plain; version=0.0.4`) |
//! | `/v1/cache` | GET | — | [`qapi::CacheReport`] (per-tier store counters) |
//! | `/v1/cache` | DELETE | — | [`qapi::CacheClearResponse`] (drops every stored result) |
//! | `/v1/optimize` | POST | QASM text or [`qapi::OptimizeRequest`] JSON | [`qapi::JobStatus`] |
//! | `/v1/batch` | POST | [`qapi::BatchRequest`] | [`qapi::BatchResponse`] |
//! | `/v1/jobs/{id}` | GET | — | [`qapi::JobStatus`] |
//! | `/v1/traces` | GET | — | [`qapi::TraceIndex`] (recent kept traces; `?limit=N`) |
//! | `/v1/traces/{id}` | GET | — | [`qapi::TraceReport`] (`?format=chrome` for `trace_event` JSON) |
//!
//! Every response carries an `x-popqc-request-id` header — a
//! client-supplied `x-popqc-request-id` (sanitized, length-capped) is
//! echoed so fleet callers can correlate replica logs, otherwise a
//! process-unique id is minted. The id is also printed in the
//! per-request access-log line, a *wide event* that additionally carries
//! the trace id and the request's queue/engine/oracle/store time split.
//!
//! `POST /v1/optimize?trace=1` force-samples the request's trace and
//! echoes its id in the `x-popqc-trace-id` response header for
//! `GET /v1/traces/{id}`.
//!
//! `POST /v1/optimize` accepts either the raw QASM program as the body
//! with options as query parameters — `oracle` (registry id), `omega`
//! (engine window), `label` (echoed back), `wait=false` (submit-and-poll)
//! — or a single [`qapi::OptimizeRequest`] JSON object carrying the same
//! options (the two forms must not be mixed). Only `wait=false`
//! submissions are retained for `/v1/jobs/{id}` polling; the polling
//! registry is bounded, and when it is full of still-pending jobs new
//! `wait=false` submissions are refused with [`qapi::ApiError::Overloaded`].
//!
//! Failures map through the closed [`qapi::ApiError`] taxonomy and its
//! canonical statuses: malformed parameters/JSON are `invalid_config`
//! (400), an unregistered oracle id is `unknown_oracle` (404),
//! unparseable QASM is `invalid_qasm` (422), a full pending registry is
//! `overloaded` (503), and an oracle crash is `oracle_failure` (500, with
//! the failed job's document carrying `result.error`). Malformed input is
//! never a dropped connection.

use crate::http::{Request, Response};
use crate::metrics;
use crate::server::Handler;
use popqc_core::PopqcConfig;
use qapi::ApiError;
use qcir::qasm;
use qsvc::report::{batch_report, cache_report, job_status, stats_report};
use qsvc::service::{JobHandle, JobRequest, OptimizationService};
use serde_json::json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Cap on the `wait=false` job registry. Completed jobs beyond it are
/// evicted oldest-first; a pending job is never evicted (its client may
/// still be polling toward a live handle), so when eviction cannot bring
/// the registry under the cap, new `wait=false` submissions are refused
/// with `overloaded` (503) — otherwise a flood of distinct circuits would
/// grow the registry and the service queue (each entry holding a full
/// circuit) without bound. Blocking submissions are never stored and are
/// bounded by the connection-thread count instead.
const JOB_HISTORY_CAP: usize = 4096;

struct StoredJob {
    handle: Arc<JobHandle>,
    label: Option<String>,
}

/// A window into the connection frontend serving this state, filled into
/// the `frontend` block of `GET /v1/stats`. Implemented by both the
/// threaded [`crate::server::HttpServer`] (connection counts only) and
/// the evented [`crate::evented::EventedServer`] (full admission-control
/// counters), so operators can read one endpoint regardless of
/// `--frontend`.
pub trait FrontendProbe: Send + Sync + 'static {
    /// Point-in-time frontend counters.
    fn report(&self) -> qapi::FrontendReport;
}

/// Shared server state: the service plus the polling-job registry.
///
/// The service is dynamically dispatched over its oracle registry, so one
/// `AppState` (and one `popqc serve` process) answers requests for every
/// registered oracle.
pub struct AppState {
    svc: OptimizationService,
    default_omega: usize,
    jobs: Mutex<BTreeMap<u64, StoredJob>>,
    job_cap: usize,
    next_job_id: AtomicU64,
    /// Set by the serving frontend after it binds (the server needs the
    /// state to start, so this cannot be a constructor argument).
    frontend: Mutex<Option<Arc<dyn FrontendProbe>>>,
}

impl AppState {
    /// Wraps a running service. `default_omega` applies when a request
    /// does not pass `omega`.
    pub fn new(svc: OptimizationService, default_omega: usize) -> AppState {
        AppState::with_job_cap(svc, default_omega, JOB_HISTORY_CAP)
    }

    /// [`new`](Self::new) with an explicit cap on the `wait=false` job
    /// registry (default 4096): completed jobs beyond it are evicted
    /// oldest-first, and when pending jobs alone fill it, new `wait=false`
    /// submissions are refused with 503. Mainly for tests and
    /// memory-constrained deployments.
    pub fn with_job_cap(
        svc: OptimizationService,
        default_omega: usize,
        job_cap: usize,
    ) -> AppState {
        // Register the HTTP metric families up front so the very first
        // `/v1/metrics` scrape already lists the full inventory.
        metrics::describe_metrics();
        qobs::trace::describe_metrics();
        AppState {
            svc,
            default_omega,
            jobs: Mutex::new(BTreeMap::new()),
            job_cap,
            next_job_id: AtomicU64::new(1),
            frontend: Mutex::new(None),
        }
    }

    /// Attaches the serving frontend's counter probe; `/v1/stats` reports
    /// a `frontend` block from then on. Called once by whichever frontend
    /// starts serving this state.
    pub fn set_frontend_probe(&self, probe: Arc<dyn FrontendProbe>) {
        *self.frontend.lock().expect("frontend probe poisoned") = Some(probe);
    }

    /// The wrapped service (e.g. for shutdown-time stats logging).
    pub fn service(&self) -> &OptimizationService {
        &self.svc
    }

    /// Evicts oldest *completed* jobs until the registry is under the cap;
    /// never a pending job (its client may still be polling toward a live
    /// handle).
    fn evict_completed(&self, jobs: &mut BTreeMap<u64, StoredJob>) {
        while jobs.len() >= self.job_cap {
            let Some((&oldest_done, _)) =
                jobs.iter().find(|(_, j)| j.handle.try_result().is_some())
            else {
                break;
            };
            jobs.remove(&oldest_done);
        }
    }

    /// Parses the two accepted `POST /v1/optimize` forms into the one
    /// typed request: a JSON [`qapi::OptimizeRequest`] body (options in
    /// the document, query options rejected), or raw QASM text with
    /// options as query parameters.
    fn parse_optimize(&self, req: &Request) -> Result<qapi::OptimizeRequest, ApiError> {
        let body = req
            .body_utf8()
            .map_err(|e| ApiError::InvalidQasm(e.to_string()))?;
        if body.trim().is_empty() {
            return Err(ApiError::InvalidQasm(
                "empty request body; POST the QASM program text or an OptimizeRequest JSON object"
                    .to_string(),
            ));
        }
        if body.trim_start().starts_with('{') {
            // A QASM program can never start with `{`, so this is
            // unambiguously the JSON form.
            for param in ["oracle", "omega", "label", "wait"] {
                if req.query_param(param).is_some() {
                    return Err(ApiError::InvalidConfig(format!(
                        "`{param}` must be inside the JSON request body, not a query parameter"
                    )));
                }
            }
            let doc = serde_json::from_str(body).map_err(|e| {
                ApiError::InvalidConfig(format!("request body is not valid JSON: {e}"))
            })?;
            return qapi::OptimizeRequest::from_json(&doc);
        }

        let omega = match req.query_param("omega") {
            None => None,
            Some(v) => match v.parse::<u64>() {
                Ok(n) => Some(n),
                Err(_) => {
                    return Err(ApiError::InvalidConfig(format!(
                        "bad omega `{v}` (need a positive integer)"
                    )))
                }
            },
        };
        let wait = match req.query_param("wait") {
            None => true,
            Some("true") | Some("1") => true,
            Some("false") | Some("0") => false,
            Some(v) => {
                return Err(ApiError::InvalidConfig(format!(
                    "bad wait `{v}` (need true|false)"
                )))
            }
        };
        Ok(qapi::OptimizeRequest {
            qasm: body.to_string(),
            oracle: req.query_param("oracle").map(str::to_string),
            omega,
            label: req.query_param("label").map(str::to_string),
            wait,
        })
    }

    /// Resolves the request's omega override against the server default.
    /// `0` and values beyond the platform word size are refused rather
    /// than wrapped (an `as` cast would silently truncate on 32-bit).
    fn resolve_omega(&self, omega: Option<u64>) -> Result<usize, ApiError> {
        match omega {
            None => Ok(self.default_omega),
            Some(n) => match usize::try_from(n) {
                Ok(n) if n > 0 => Ok(n),
                _ => Err(ApiError::InvalidConfig(format!(
                    "bad omega `{n}` (need a positive integer within the platform's word size)"
                ))),
            },
        }
    }

    fn handle_optimize(&self, req: &Request) -> Response {
        let parsed = match self.parse_optimize(req) {
            Ok(p) => p,
            Err(e) => return error(&e),
        };
        let omega = match self.resolve_omega(parsed.omega) {
            Ok(n) => n,
            Err(e) => return error(&e),
        };
        let circuit = match qasm::parse(&parsed.qasm) {
            Ok(c) => c,
            Err(e) => return error(&ApiError::InvalidQasm(e.to_string())),
        };
        let job = JobRequest {
            circuit,
            oracle: parsed.oracle.clone(),
            config: PopqcConfig::with_omega(omega),
        };
        let label = parsed.label.as_deref();

        if parsed.wait {
            // Blocking requests deliver their result inline and are not
            // retained: every JobResult holds a full circuit, so keeping
            // jobs nobody will poll would turn the registry cap into an
            // unbounded-bytes cache.
            let handle = match self.svc.submit_request(job) {
                Ok(h) => h,
                Err(e) => return error(&e.to_api_error()),
            };
            let id = self.next_job_id.fetch_add(1, Relaxed);
            let result = handle.wait();
            let status = match &result.error {
                Some(e) => e.to_api_error().http_status(),
                None => 200,
            };
            let doc = job_status(id, label, handle.rounds_completed(), Some(&result));
            Response::json(status, &doc.to_json())
        } else {
            // Capacity check, submission, and registration form ONE
            // critical section: releasing the lock between the check and
            // the insert would let concurrent submissions overshoot the
            // cap. Holding it across `submit` cannot deadlock — the
            // service never takes this registry lock — and refusing
            // *before* submitting matters because a queued job cannot be
            // taken back.
            let mut jobs = self.jobs.lock().expect("job registry poisoned");
            self.evict_completed(&mut jobs);
            if jobs.len() >= self.job_cap {
                return error(&ApiError::Overloaded(
                    "job registry is full of pending jobs; retry later or use wait=true"
                        .to_string(),
                ));
            }
            let handle = match self.svc.submit_request(job) {
                Ok(h) => Arc::new(h),
                Err(e) => return error(&e.to_api_error()),
            };
            let id = self.next_job_id.fetch_add(1, Relaxed);
            jobs.insert(
                id,
                StoredJob {
                    handle: Arc::clone(&handle),
                    label: parsed.label.clone(),
                },
            );
            drop(jobs);
            // A submit-time cache hit completes synchronously inside
            // `submit`; report it done (200) rather than claiming the
            // client must poll.
            let result = handle.try_result();
            let status = if result.is_some() { 200 } else { 202 };
            let doc = job_status(id, label, handle.rounds_completed(), result.as_deref());
            Response::json(status, &doc.to_json())
        }
    }

    fn handle_batch(&self, req: &Request) -> Response {
        let body = match req.body_utf8() {
            Ok(s) => s,
            Err(e) => return error(&ApiError::InvalidConfig(e.to_string())),
        };
        let doc = match serde_json::from_str(body) {
            Ok(v) => v,
            Err(e) => {
                return error(&ApiError::InvalidConfig(format!(
                    "request body is not valid JSON: {e}"
                )))
            }
        };
        let batch_req = match qapi::BatchRequest::from_json(&doc) {
            Ok(b) => b,
            Err(e) => return error(&e),
        };

        let mut labels = Vec::with_capacity(batch_req.circuits.len());
        let mut jobs = Vec::with_capacity(batch_req.circuits.len());
        for (i, entry) in batch_req.circuits.iter().enumerate() {
            let label = entry.label.clone().unwrap_or_else(|| format!("job-{i}"));
            let omega = match self.resolve_omega(entry.omega.or(batch_req.omega)) {
                Ok(n) => n,
                Err(e) => return error(&e),
            };
            let circuit = match qasm::parse(&entry.qasm) {
                Ok(c) => c,
                Err(e) => return error(&ApiError::InvalidQasm(format!("{label}: {e}"))),
            };
            jobs.push(JobRequest {
                circuit,
                // Per-circuit override, else the batch default, else the
                // server's registry default.
                oracle: entry.oracle.clone().or_else(|| batch_req.oracle.clone()),
                config: PopqcConfig::with_omega(omega),
            });
            labels.push(label);
        }

        // Oracle ids are validated atomically before anything is enqueued.
        let batch = match self.svc.submit_batch_requests(jobs) {
            Ok(handle) => handle.wait(),
            Err(e) => return error(&e.to_api_error()),
        };
        // The batch report carries stats; the optimized QASM is attached
        // per successful job so the endpoint is self-contained. A failed
        // job (oracle crash) holds its *input* circuit, so no `qasm` is
        // attached there — only its `error` field — and the whole response
        // is a 500 so a client checking the status code alone can never
        // mistake an input echo for an optimization.
        let report = batch_report(&labels, &batch, 1, true);
        let any_failed = batch.results.iter().any(|r| r.error.is_some());
        Response::json(if any_failed { 500 } else { 200 }, &report.to_json())
    }

    fn handle_job_get(&self, id_str: &str) -> Response {
        let Ok(id) = id_str.parse::<u64>() else {
            return error(&ApiError::InvalidConfig(format!("bad job id `{id_str}`")));
        };
        let job = {
            let jobs = self.jobs.lock().expect("job registry poisoned");
            jobs.get(&id)
                .map(|j| (Arc::clone(&j.handle), j.label.clone()))
        };
        let Some((handle, label)) = job else {
            return transport_error(404, "not_found", &format!("no such job {id}"));
        };
        let result = handle.try_result();
        let doc = job_status(
            id,
            label.as_deref(),
            handle.rounds_completed(),
            result.as_deref(),
        );
        Response::json(200, &doc.to_json())
    }

    fn handle_stats(&self) -> Response {
        let mut stats = stats_report(
            &self.svc.stats(),
            self.svc.workers(),
            self.svc.threads_per_job(),
        );
        stats.jobs_tracked = Some(self.jobs.lock().expect("job registry poisoned").len() as u64);
        stats.frontend = self
            .frontend
            .lock()
            .expect("frontend probe poisoned")
            .as_ref()
            .map(|p| p.report());
        Response::json(200, &stats.to_json())
    }

    fn handle_oracles(&self) -> Response {
        let list = qapi::OracleList {
            oracles: self.svc.registry().infos(),
        };
        Response::json(200, &list.to_json())
    }

    fn handle_cache_get(&self) -> Response {
        Response::json(200, &cache_report(&self.svc.store().stats()).to_json())
    }

    fn handle_cache_clear(&self) -> Response {
        let removed = self.svc.clear_cache();
        let doc = qapi::CacheClearResponse {
            cleared: true,
            entries_removed: removed,
        };
        Response::json(200, &doc.to_json())
    }

    fn handle_traces_index(&self, req: &Request) -> Response {
        let limit = match req.query_param("limit") {
            None => 50,
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n > 0 => n.min(1024),
                _ => {
                    return error(&ApiError::InvalidConfig(format!(
                        "bad limit `{v}` (need a positive integer)"
                    )))
                }
            },
        };
        let index = qapi::TraceIndex {
            traces: qobs::trace::recent(limit)
                .iter()
                .map(|t| trace_summary(t))
                .collect(),
        };
        Response::json(200, &index.to_json())
    }

    fn handle_trace_get(&self, id_str: &str, req: &Request) -> Response {
        let Some(found) = qobs::trace::parse_id(id_str).and_then(qobs::trace::get) else {
            return transport_error(
                404,
                "not_found",
                &format!("no such trace {id_str} (not kept by sampling, or evicted)"),
            );
        };
        let report = trace_report(&found);
        match req.query_param("format") {
            Some("chrome") => Response::json(200, &report.to_chrome_json()),
            None | Some("v1") => Response::json(200, &report.to_json()),
            Some(other) => error(&ApiError::InvalidConfig(format!(
                "bad format `{other}` (need v1|chrome)"
            ))),
        }
    }

    fn handle_metrics(&self) -> Response {
        // Store occupancy is pull-synced at scrape time (one stats read)
        // instead of being mirrored on every put; everything else in the
        // registry is updated at its event site.
        qsvc::metrics::sync_store_gauges(&self.svc.store().stats());
        Response::text_with_type(200, "text/plain; version=0.0.4", qobs::render())
    }

    /// The routing table proper; [`Handler::handle`] wraps it with
    /// metrics, the access log, and the request id.
    fn route(&self, req: &Request) -> Response {
        let method = req.method.as_str();
        let path = req.path.as_str();
        match (method, path) {
            ("GET", "/healthz") => Response::json(
                200,
                &json!({ "api_version": qapi::API_VERSION, "status": "ok" }),
            ),
            ("GET", "/v1/version") => Response::json(200, &qapi::VersionInfo::current().to_json()),
            ("GET", "/v1/oracles") => self.handle_oracles(),
            ("GET", "/v1/stats") => self.handle_stats(),
            ("GET", "/v1/metrics") => self.handle_metrics(),
            ("GET", "/v1/cache") => self.handle_cache_get(),
            ("DELETE", "/v1/cache") => self.handle_cache_clear(),
            ("GET", "/v1/traces") => self.handle_traces_index(req),
            ("POST", "/v1/optimize") => self.handle_optimize(req),
            ("POST", "/v1/batch") => self.handle_batch(req),
            (_, "/healthz")
            | (_, "/v1/version")
            | (_, "/v1/oracles")
            | (_, "/v1/stats")
            | (_, "/v1/metrics")
            | (_, "/v1/traces") => method_not_allowed("GET"),
            (_, "/v1/cache") => method_not_allowed("GET or DELETE"),
            (_, "/v1/optimize") | (_, "/v1/batch") => method_not_allowed("POST"),
            _ => match path.strip_prefix("/v1/traces/") {
                Some(id) if method == "GET" => self.handle_trace_get(id, req),
                Some(_) => method_not_allowed("GET"),
                None => match path.strip_prefix("/v1/jobs/") {
                    Some(id) if method == "GET" => self.handle_job_get(id),
                    Some(_) => method_not_allowed("GET"),
                    None => transport_error(404, "not_found", &format!("no route for {path}")),
                },
            },
        }
    }
}

/// Decrements the in-flight gauge even when the handler panics (the
/// server converts the panic to a 500; the gauge must not drift up).
struct InFlight;

impl InFlight {
    fn enter() -> InFlight {
        metrics::in_flight().inc();
        InFlight
    }
}

impl Drop for InFlight {
    fn drop(&mut self) {
        metrics::in_flight().dec();
    }
}

impl Handler for AppState {
    fn handle(&self, req: &Request) -> Response {
        let _in_flight = InFlight::enter();
        let request_id = client_request_id(req).unwrap_or_else(metrics::next_request_id);
        let endpoint = metrics::endpoint_label(&req.method, &req.path);

        // The evented frontend starts the trace at parse time and
        // installs it as this thread's ambient context; the threaded
        // frontend has no earlier hook, so its trace starts (and
        // finishes) here and cannot attribute write-flush time.
        let ambient = qobs::trace::current();
        let owned = !ambient.handle.enabled();
        let trace = if owned {
            let t = qobs::trace::start_trace("request");
            t.root_attr("method", req.method.as_str());
            t.root_attr("path", req.path.as_str());
            t
        } else {
            ambient.handle.clone()
        };
        trace.root_attr("request_id", request_id.as_str());
        let forced = req.method == "POST"
            && req.path == "/v1/optimize"
            && matches!(req.query_param("trace"), Some("1") | Some("true"));
        if forced {
            trace.force();
        }

        let start = std::time::Instant::now();
        let response = if owned && trace.enabled() {
            let ctx = qobs::trace::TraceCtx {
                handle: trace.clone(),
                parent: qobs::trace::ROOT_SPAN,
            };
            qobs::trace::with_active(&ctx, || self.route(req))
        } else {
            self.route(req)
        };
        let seconds = start.elapsed().as_secs_f64();
        trace.set_status(response.status);
        trace.mark_handler_done();
        metrics::requests(endpoint, metrics::status_class(response.status)).inc();
        metrics::request_duration(endpoint).observe(seconds);
        let trace_hex = trace.id_hex();
        let (queue_ns, engine_ns, oracle_ns, store_ns) = trace.splits();
        qobs::log_info!(
            target: "qhttp",
            "request",
            id = request_id,
            method = req.method,
            path = req.path,
            status = response.status,
            seconds = format_args!("{seconds:.6}"),
            trace = trace_hex.as_deref().unwrap_or("-"),
            queue_s = format_args!("{:.6}", queue_ns as f64 / 1e9),
            engine_s = format_args!("{:.6}", engine_ns as f64 / 1e9),
            oracle_s = format_args!("{:.6}", oracle_ns as f64 / 1e9),
            store_s = format_args!("{:.6}", store_ns as f64 / 1e9)
        );
        if owned {
            trace.finish(response.status);
        }
        let response = response.with_header("x-popqc-request-id", request_id);
        match trace_hex.filter(|_| forced) {
            Some(hex) => response.with_header("x-popqc-trace-id", hex),
            None => response,
        }
    }
}

/// The client-supplied `x-popqc-request-id`, accepted only when short
/// and from a safe charset (log-injection hygiene). `None` means mint
/// one instead.
pub(crate) fn client_request_id(req: &Request) -> Option<String> {
    let v = req.header("x-popqc-request-id")?.trim();
    let ok = !v.is_empty()
        && v.len() <= 64
        && v.bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'));
    ok.then(|| v.to_string())
}

/// Accounts an admission refusal the evented frontend answers inline on
/// the loop thread: such 429/503s bypass [`Handler::handle`], so the
/// request counter and the access-log line are recorded here, plus a
/// short trace (always kept — shed is a tail-sampling keep rule)
/// carrying the admission verdict. Returns the response with its
/// `x-popqc-request-id` attached.
pub(crate) fn observe_refusal(
    method: &str,
    path: &str,
    peer: &str,
    verdict: &'static str,
    req: Option<&Request>,
    resp: Response,
) -> Response {
    let request_id = req
        .and_then(client_request_id)
        .unwrap_or_else(metrics::next_request_id);
    let endpoint = metrics::endpoint_label(method, path);
    metrics::requests(endpoint, metrics::status_class(resp.status)).inc();
    let trace = qobs::trace::start_trace("request");
    trace.root_attr("method", method);
    trace.root_attr("path", path);
    trace.root_attr("peer", peer);
    trace.root_attr("request_id", request_id.as_str());
    trace.root_attr("admission", verdict);
    trace.finish(resp.status);
    let trace_hex = trace.id_hex();
    qobs::log_info!(
        target: "qhttp",
        "request",
        id = request_id,
        method = method,
        path = path,
        status = resp.status,
        seconds = "0.000000",
        trace = trace_hex.as_deref().unwrap_or("-"),
        refused = verdict
    );
    resp.with_header("x-popqc-request-id", request_id)
}

/// Renders a kept trace as the index-row DTO.
fn trace_summary(t: &qobs::trace::CompletedTrace) -> qapi::TraceSummary {
    qapi::TraceSummary {
        trace_id: t.id_hex(),
        status: t.status,
        sampled_because: t.kept_because.to_string(),
        start_unix_nanos: t.start_unix_nanos,
        duration_nanos: t.duration_nanos,
        span_count: t.spans.len() as u64,
    }
}

/// Renders a kept trace as the full span-tree DTO. Span attributes are
/// sorted by key so the document (and its snapshot) is deterministic.
fn trace_report(t: &qobs::trace::CompletedTrace) -> qapi::TraceReport {
    let spans = t
        .spans
        .iter()
        .map(|s| {
            let mut attrs: Vec<(String, serde_json::Value)> = s
                .attrs
                .iter()
                .map(|(k, v)| (k.to_string(), attr_json(v)))
                .collect();
            attrs.sort_by(|a, b| a.0.cmp(&b.0));
            qapi::TraceSpan {
                id: s.id,
                parent: s.parent,
                name: s.name.to_string(),
                start_nanos: s.start_nanos,
                duration_nanos: s.duration_nanos,
                attrs,
            }
        })
        .collect();
    qapi::TraceReport {
        trace_id: t.id_hex(),
        status: t.status,
        sampled_because: t.kept_because.to_string(),
        start_unix_nanos: t.start_unix_nanos,
        duration_nanos: t.duration_nanos,
        dropped_spans: t.dropped_spans,
        queue_nanos: t.queue_nanos,
        engine_nanos: t.engine_nanos,
        oracle_nanos: t.oracle_nanos,
        store_nanos: t.store_nanos,
        spans,
    }
}

fn attr_json(v: &qobs::trace::AttrValue) -> serde_json::Value {
    use qobs::trace::AttrValue;
    match v {
        AttrValue::U64(n) => json!(*n),
        AttrValue::I64(n) => json!(*n),
        AttrValue::F64(n) => json!(*n),
        AttrValue::Bool(b) => json!(*b),
        AttrValue::Str(s) => json!(s.as_str()),
    }
}

/// An API-taxonomy failure: the variant's canonical status plus its wire
/// document. Refusals that invite a retry (503 overloaded, 429 rate
/// limited) always carry `Retry-After` so well-behaved clients back off
/// instead of hammering — centralized here so no refusal path can forget
/// it.
pub(crate) fn error(e: &ApiError) -> Response {
    let status = e.http_status();
    let resp = Response::json(status, &e.to_json());
    match status {
        503 | 429 => resp.with_header("Retry-After", "1"),
        _ => resp,
    }
}

/// A transport-level failure outside the API taxonomy (routing, method),
/// in the same wire shape.
fn transport_error(status: u16, kind: &str, message: &str) -> Response {
    Response::json(status, &qapi::transport_error_json(kind, message))
}

fn method_not_allowed(allowed: &str) -> Response {
    transport_error(
        405,
        "method_not_allowed",
        &format!("method not allowed (use {allowed})"),
    )
}
