//! Minimal HTTP/1.1 framing: request parsing (request line, headers,
//! `Content-Length` and chunked bodies) and response serialization with
//! keep-alive support.
//!
//! This is deliberately a small vendored subset — just enough protocol for
//! the JSON API in [`crate::api`] — not a general-purpose HTTP
//! implementation. Unsupported constructs are rejected with a clear
//! [`HttpError`] that the server maps to a 4xx response instead of killing
//! the connection silently.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Hard cap on request bodies (16 MiB); larger uploads get a 413.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;
/// Hard cap on a single header line.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Hard cap on the number of request headers.
const MAX_HEADERS: usize = 100;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The request is malformed; the message goes into the 400 body.
    BadRequest(String),
    /// The declared or actual body size exceeds [`MAX_BODY_BYTES`].
    PayloadTooLarge,
    /// The socket failed mid-request (timeout, reset, …).
    Io(io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::PayloadTooLarge => write!(f, "payload too large"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

fn bad(msg: impl Into<String>) -> HttpError {
    HttpError::BadRequest(msg.into())
}

/// A parsed request: method, decoded path + query, headers, raw body.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path without the query string (e.g. `/v1/jobs/7`).
    pub path: String,
    /// Decoded `key=value` query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header name/value pairs as received (names matched case-insensitively).
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open afterwards.
    pub keep_alive: bool,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or a 400-shaped error.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| bad("request body is not valid UTF-8"))
    }
}

/// What [`RequestParser::advance`] produced.
#[derive(Debug)]
pub enum ParseStep {
    /// The buffered bytes do not complete a request yet; feed more.
    NeedMore,
    /// The header section just completed; no body byte has been
    /// consumed and no `100 Continue` interim has been emitted yet.
    /// This is the admission-control hook: a caller that wants to
    /// refuse the request *before* inviting or buffering its body
    /// (rate limiting, load shedding) decides here, using
    /// [`RequestParser::head_method`], [`RequestParser::head_path`],
    /// and [`RequestParser::body_expected`]. Call `advance` again to
    /// continue — the parser has more state transitions to run even if
    /// no new bytes arrived.
    HeadersDone,
    /// Write these bytes to the peer (the `100 Continue` interim
    /// response), then call `advance` again — the parser has more state
    /// transitions to run even if no new bytes arrived.
    Interim(&'static [u8]),
    /// One complete request. The parser has reset itself for the next
    /// request on the same connection.
    Done(Request),
}

enum ParseState {
    RequestLine,
    Headers,
    /// Headers are complete; the body-framing decision (and the
    /// `Expect: 100-continue` interim) runs here. Needs no input.
    BodyStart,
    FixedBody {
        remaining: usize,
    },
    ChunkHeader,
    ChunkData {
        remaining: usize,
    },
    ChunkSep,
    Trailers,
}

/// An incremental HTTP/1.1 request parser: the same grammar, limits, and
/// anti-smuggling checks as the blocking [`read_request`] (which is now a
/// thin loop over this type), but resumable at any byte boundary —
/// `advance` consumes whatever prefix of the input it can and reports
/// [`ParseStep::NeedMore`] instead of blocking. This is what lets the
/// evented frontend keep per-connection parse state in connection-owned
/// buffers while a single loop thread multiplexes hundreds of sockets.
pub struct RequestParser {
    state: ParseState,
    /// Partial-line accumulator (request line, headers, chunk framing).
    line: Vec<u8>,
    method: String,
    path: String,
    query: Vec<(String, String)>,
    version_11: bool,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
    interim_sent: bool,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestParser {
    /// A parser ready for the first byte of a request.
    pub fn new() -> RequestParser {
        RequestParser {
            state: ParseState::RequestLine,
            line: Vec::new(),
            method: String::new(),
            path: String::new(),
            query: Vec::new(),
            version_11: true,
            headers: Vec::new(),
            body: Vec::new(),
            interim_sent: false,
        }
    }

    /// True when no byte of a request has been consumed — EOF here is a
    /// clean keep-alive teardown, not a truncated request.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, ParseState::RequestLine) && self.line.is_empty()
    }

    /// The in-flight request's method — valid from
    /// [`ParseStep::HeadersDone`] until [`ParseStep::Done`].
    pub fn head_method(&self) -> &str {
        &self.method
    }

    /// The in-flight request's path (query string stripped) — valid from
    /// [`ParseStep::HeadersDone`] until [`ParseStep::Done`].
    pub fn head_path(&self) -> &str {
        &self.path
    }

    /// Whether the request whose headers just completed still has body
    /// bytes to arrive (or expects a `100 Continue` invitation to send
    /// them). A header-presence heuristic, deliberately conservative:
    /// full framing validation still happens on the next `advance`.
    /// Only meaningful right after [`ParseStep::HeadersDone`].
    pub fn body_expected(&self) -> bool {
        self.header("Transfer-Encoding").is_some()
            || self
                .header("Content-Length")
                .is_some_and(|cl| cl.trim() != "0")
            || self
                .header("Expect")
                .is_some_and(|e| e.eq_ignore_ascii_case("100-continue"))
    }

    /// The error a mid-request EOF amounts to, matching the blocking
    /// reader's messages state for state.
    pub fn eof_error(&self) -> HttpError {
        if !self.line.is_empty() {
            return bad("connection closed mid-line");
        }
        match self.state {
            ParseState::RequestLine | ParseState::BodyStart => bad("connection closed mid-line"),
            ParseState::Headers => bad("connection closed in headers"),
            ParseState::FixedBody { .. } | ParseState::ChunkData { .. } => HttpError::Io(
                io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed mid-body"),
            ),
            ParseState::ChunkHeader => bad("connection closed in chunk header"),
            ParseState::ChunkSep => bad("connection closed after chunk"),
            ParseState::Trailers => bad("connection closed in trailers"),
        }
    }

    /// Consumes as much of `input` as possible; returns how many bytes
    /// were consumed (the caller drains them) and what happened. On
    /// `NeedMore` the whole input was consumed. After an error the
    /// parser, like the connection, is done for.
    pub fn advance(&mut self, input: &[u8]) -> Result<(usize, ParseStep), HttpError> {
        let mut pos = 0;
        loop {
            match self.state {
                ParseState::RequestLine => match self.take_line(input, &mut pos)? {
                    None => return Ok((pos, ParseStep::NeedMore)),
                    Some(line) => {
                        self.parse_request_line(&line)?;
                        self.state = ParseState::Headers;
                    }
                },
                ParseState::Headers => match self.take_line(input, &mut pos)? {
                    None => return Ok((pos, ParseStep::NeedMore)),
                    Some(line) if line.is_empty() => {
                        self.state = ParseState::BodyStart;
                        return Ok((pos, ParseStep::HeadersDone));
                    }
                    Some(line) => {
                        let (name, value) = line
                            .split_once(':')
                            .ok_or_else(|| bad(format!("malformed header line `{line}`")))?;
                        self.headers
                            .push((name.trim().to_string(), value.trim().to_string()));
                        if self.headers.len() > MAX_HEADERS {
                            return Err(bad("too many headers"));
                        }
                    }
                },
                ParseState::BodyStart => {
                    if !self.interim_sent
                        && self
                            .header("Expect")
                            .is_some_and(|e| e.eq_ignore_ascii_case("100-continue"))
                    {
                        self.interim_sent = true;
                        return Ok((pos, ParseStep::Interim(b"HTTP/1.1 100 Continue\r\n\r\n")));
                    }
                    match self.body_framing()? {
                        Framing::None => return Ok((pos, ParseStep::Done(self.finish()))),
                        Framing::Fixed(0) => return Ok((pos, ParseStep::Done(self.finish()))),
                        Framing::Fixed(len) => {
                            self.body.reserve(len.min(MAX_BODY_BYTES));
                            self.state = ParseState::FixedBody { remaining: len };
                        }
                        Framing::Chunked => self.state = ParseState::ChunkHeader,
                    }
                }
                ParseState::FixedBody { remaining } => {
                    let take = remaining.min(input.len() - pos);
                    self.body.extend_from_slice(&input[pos..pos + take]);
                    pos += take;
                    if take == remaining {
                        return Ok((pos, ParseStep::Done(self.finish())));
                    }
                    self.state = ParseState::FixedBody {
                        remaining: remaining - take,
                    };
                    return Ok((pos, ParseStep::NeedMore));
                }
                ParseState::ChunkHeader => match self.take_line(input, &mut pos)? {
                    None => return Ok((pos, ParseStep::NeedMore)),
                    Some(line) => {
                        // Chunk extensions (after ';') are allowed and ignored.
                        let size_str = line.split(';').next().unwrap_or("").trim();
                        // Strictly 1*HEXDIG (RFC 9112): `from_str_radix`
                        // alone would also accept a leading `+`.
                        if size_str.is_empty() || !size_str.bytes().all(|b| b.is_ascii_hexdigit()) {
                            return Err(bad(format!("bad chunk size `{size_str}`")));
                        }
                        let size = usize::from_str_radix(size_str, 16)
                            .map_err(|_| bad(format!("bad chunk size `{size_str}`")))?;
                        if size == 0 {
                            self.state = ParseState::Trailers;
                        } else {
                            // `body.len() <= MAX_BODY_BYTES` is invariant
                            // here, so the subtraction cannot underflow —
                            // and unlike `body.len() + size`, this cannot
                            // overflow for an attacker-chosen 16-digit
                            // hex size.
                            if size > MAX_BODY_BYTES - self.body.len() {
                                return Err(HttpError::PayloadTooLarge);
                            }
                            self.state = ParseState::ChunkData { remaining: size };
                        }
                    }
                },
                ParseState::ChunkData { remaining } => {
                    let take = remaining.min(input.len() - pos);
                    self.body.extend_from_slice(&input[pos..pos + take]);
                    pos += take;
                    if take == remaining {
                        self.state = ParseState::ChunkSep;
                    } else {
                        self.state = ParseState::ChunkData {
                            remaining: remaining - take,
                        };
                        return Ok((pos, ParseStep::NeedMore));
                    }
                }
                ParseState::ChunkSep => match self.take_line(input, &mut pos)? {
                    None => return Ok((pos, ParseStep::NeedMore)),
                    Some(line) if line.is_empty() => self.state = ParseState::ChunkHeader,
                    Some(_) => return Err(bad("missing CRLF after chunk data")),
                },
                ParseState::Trailers => match self.take_line(input, &mut pos)? {
                    None => return Ok((pos, ParseStep::NeedMore)),
                    Some(line) if line.is_empty() => {
                        return Ok((pos, ParseStep::Done(self.finish())))
                    }
                    Some(_) => {} // trailers are discarded
                },
            }
        }
    }

    /// Pulls one CRLF- (or LF-) terminated line out of `input` starting
    /// at `pos`, buffering partial lines across calls. `None` means the
    /// line is not complete yet (all input consumed).
    fn take_line(&mut self, input: &[u8], pos: &mut usize) -> Result<Option<String>, HttpError> {
        match input[*pos..].iter().position(|&b| b == b'\n') {
            Some(nl) => {
                self.line.extend_from_slice(&input[*pos..*pos + nl]);
                *pos += nl + 1;
                if self.line.last() == Some(&b'\r') {
                    self.line.pop();
                }
                if self.line.len() > MAX_LINE_BYTES {
                    return Err(bad("header line too long"));
                }
                let s = String::from_utf8(std::mem::take(&mut self.line))
                    .map_err(|_| bad("non-UTF-8 header line"))?;
                Ok(Some(s))
            }
            None => {
                self.line.extend_from_slice(&input[*pos..]);
                *pos = input.len();
                if self.line.len() > MAX_LINE_BYTES {
                    return Err(bad("header line too long"));
                }
                Ok(None)
            }
        }
    }

    fn parse_request_line(&mut self, request_line: &str) -> Result<(), HttpError> {
        let mut parts = request_line.split_whitespace();
        let method = parts.next().ok_or_else(|| bad("empty request line"))?;
        let target = parts
            .next()
            .ok_or_else(|| bad("request line missing target"))?;
        let version = parts
            .next()
            .ok_or_else(|| bad("request line missing HTTP version"))?;
        if parts.next().is_some() {
            return Err(bad("malformed request line"));
        }
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(bad(format!("unsupported HTTP version `{version}`")));
        }
        self.version_11 = version == "HTTP/1.1";
        self.method = method.to_string();
        match target.split_once('?') {
            Some((p, q)) => {
                self.path = p.to_string();
                self.query = parse_query(q);
            }
            None => {
                self.path = target.to_string();
                self.query = Vec::new();
            }
        }
        Ok(())
    }

    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The anti-smuggling body-framing decision: a Transfer-Encoding this
    /// server does not decode, Transfer-Encoding combined with
    /// Content-Length, or conflicting duplicate Content-Length headers
    /// are each rejected outright — silently picking one interpretation
    /// is how request smuggling happens once a proxy sits in front.
    /// Every repeated field line counts: per RFC 7230 duplicates combine
    /// into one list, so the coding check must see them all.
    fn body_framing(&self) -> Result<Framing, HttpError> {
        let content_lengths: Vec<&str> = self
            .headers
            .iter()
            .filter(|(k, _)| k.eq_ignore_ascii_case("Content-Length"))
            .map(|(_, v)| v.trim())
            .collect();
        let transfer_encodings: Vec<&str> = self
            .headers
            .iter()
            .filter(|(k, _)| k.eq_ignore_ascii_case("Transfer-Encoding"))
            .map(|(_, v)| v.as_str())
            .collect();
        if !transfer_encodings.is_empty() {
            let mut codings = transfer_encodings
                .iter()
                .flat_map(|v| v.split(','))
                .map(str::trim)
                .filter(|t| !t.is_empty());
            let only_chunked = codings
                .next()
                .is_some_and(|t| t.eq_ignore_ascii_case("chunked"))
                && codings.next().is_none();
            if !only_chunked {
                return Err(bad(format!(
                    "unsupported Transfer-Encoding `{}`",
                    transfer_encodings.join(", ")
                )));
            }
            if !content_lengths.is_empty() {
                return Err(bad("Transfer-Encoding combined with Content-Length"));
            }
            return Ok(Framing::Chunked);
        }
        if let Some(&cl) = content_lengths.first() {
            if content_lengths.iter().any(|&c| c != cl) {
                return Err(bad("conflicting Content-Length headers"));
            }
            // Strictly 1*DIGIT (RFC 9110): Rust's `parse` would also
            // accept a leading `+`, which a stricter front proxy may
            // reject or reinterpret — the same parser-disagreement class
            // as the Transfer-Encoding checks above.
            if cl.is_empty() || !cl.bytes().all(|b| b.is_ascii_digit()) {
                return Err(bad(format!("bad Content-Length `{cl}`")));
            }
            let len: usize = cl
                .parse()
                .map_err(|_| bad(format!("bad Content-Length `{cl}`")))?;
            if len > MAX_BODY_BYTES {
                return Err(HttpError::PayloadTooLarge);
            }
            return Ok(Framing::Fixed(len));
        }
        Ok(Framing::None)
    }

    /// Builds the finished request and resets for the next one.
    fn finish(&mut self) -> Request {
        let keep_alive = match self.header("Connection") {
            Some(c) if c.eq_ignore_ascii_case("close") => false,
            Some(c) if c.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version_11, // 1.1 defaults to keep-alive
        };
        let req = Request {
            method: std::mem::take(&mut self.method),
            path: std::mem::take(&mut self.path),
            query: std::mem::take(&mut self.query),
            headers: std::mem::take(&mut self.headers),
            body: std::mem::take(&mut self.body),
            keep_alive,
        };
        self.state = ParseState::RequestLine;
        self.line.clear();
        self.version_11 = true;
        self.interim_sent = false;
        req
    }
}

enum Framing {
    None,
    Fixed(usize),
    Chunked,
}

/// Decodes `%XX` escapes and `+` (as space) in a query component.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                match bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

/// Reads one request off the stream. `Ok(None)` means the client closed the
/// connection cleanly between requests (normal keep-alive teardown).
///
/// `w` is the response side of the same connection: a client sending
/// `Expect: 100-continue` (curl does for bodies over 1 KiB) waits for the
/// interim `100 Continue` line before transmitting the body, so it must be
/// written between the headers and the body read. Pass
/// [`std::io::sink()`] when parsing from a buffer.
pub fn read_request(
    r: &mut impl BufRead,
    w: &mut impl Write,
) -> Result<Option<Request>, HttpError> {
    let mut parser = RequestParser::new();
    loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            if parser.is_idle() {
                return Ok(None); // clean EOF between requests
            }
            return Err(parser.eof_error());
        }
        // Consume exactly what the parser took: pipelined bytes beyond
        // this request stay in the BufRead for the next call.
        let (consumed, mut step) = parser.advance(buf)?;
        r.consume(consumed);
        // Drain the zero-input transitions (HeadersDone → Interim →
        // Done for a bodyless request) before blocking on more input —
        // the peer may already have sent everything it will send.
        loop {
            match step {
                ParseStep::NeedMore => break,
                ParseStep::Done(req) => return Ok(Some(req)),
                ParseStep::HeadersDone => {}
                ParseStep::Interim(bytes) => {
                    w.write_all(bytes)?;
                    w.flush()?;
                }
            }
            let (more, next) = parser.advance(&[])?;
            debug_assert_eq!(more, 0);
            step = next;
        }
    }
}

/// An outgoing response. Construct with [`Response::json`] /
/// [`Response::text`] and send with [`Response::write_to`].
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    /// Extra header name/value pairs beyond the framing headers that
    /// [`write_to`](Response::write_to) always emits (`Content-Type`,
    /// `Content-Length`, `Connection`). Values must not contain CR/LF.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    pub fn json(status: u16, value: &serde_json::Value) -> Response {
        let body = serde_json::to_string(value)
            .expect("serialize response JSON")
            .into_bytes();
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body,
        }
    }

    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Text response with an explicit content type (e.g. the Prometheus
    /// exposition format's `text/plain; version=0.0.4`).
    pub fn text_with_type(status: u16, content_type: &'static str, body: String) -> Response {
        Response {
            status,
            content_type,
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Attaches one extra response header (builder style).
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes the response; `keep_alive` controls the `Connection`
    /// header (the server closes the socket when it is false).
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), &mut std::io::sink())
    }

    #[test]
    fn parses_request_with_content_length() {
        let req = parse(
            "POST /v1/optimize?omega=80 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/optimize");
        assert_eq!(req.query_param("omega"), Some("80"));
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive);
    }

    #[test]
    fn parses_chunked_body() {
        let raw = "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                   4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n";
        let req = parse(raw).unwrap().unwrap();
        assert_eq!(req.body, b"Wikipedia");
    }

    #[test]
    fn huge_chunk_size_is_payload_too_large_not_overflow() {
        // A chunk size crafted so `body.len() + size` wraps around usize
        // must hit the 413 path, not bypass the cap and panic in
        // `read_exact` (regression: remote DoS via integer overflow).
        let raw = format!(
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
             10\r\n0123456789abcdef\r\n{:x}\r\n",
            usize::MAX - 14
        );
        assert!(matches!(parse(&raw), Err(HttpError::PayloadTooLarge)));
        // Same for a single oversized (but non-wrapping) chunk.
        let raw = format!(
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n{:x}\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&raw), Err(HttpError::PayloadTooLarge)));
    }

    #[test]
    fn ambiguous_body_framing_is_rejected() {
        // Transfer-Encoding we cannot decode: never fall back to
        // Content-Length framing.
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\nContent-Length: 2\r\n\r\nhi"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nTransfer-Encoding: gzip, chunked\r\n\r\n0\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        // Both framings at once.
        assert!(matches!(
            parse(
                "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 5\r\n\r\n\
                 0\r\n\r\n"
            ),
            Err(HttpError::BadRequest(_))
        ));
        // A second Transfer-Encoding field line combines with the first
        // (RFC 7230): `chunked` + `gzip` across two lines is as ambiguous
        // as `chunked, gzip` in one.
        assert!(matches!(
            parse(
                "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\nTransfer-Encoding: gzip\r\n\r\n\
                 0\r\n\r\n"
            ),
            Err(HttpError::BadRequest(_))
        ));
        // Conflicting duplicate Content-Length headers.
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nhi "),
            Err(HttpError::BadRequest(_))
        ));
        // Agreeing duplicates are harmless and accepted.
        let req = parse("POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn eof_between_requests_is_clean() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            parse("garbage\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/3.0\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: zonk\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        // Signed numbers are not 1*DIGIT / 1*HEXDIG, even though Rust's
        // integer parsers would accept the `+`.
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: +2\r\n\r\nhi"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n+2\r\nhi\r\n0\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn connection_close_header_wins() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn query_decoding() {
        let req = parse("GET /p?label=a%20b+c&flag HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.query_param("label"), Some("a b c"));
        assert_eq!(req.query_param("flag"), Some(""));
    }

    #[test]
    fn expect_100_continue_gets_the_interim_response_before_the_body() {
        let raw = "POST /x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\nhi";
        let mut interim = Vec::new();
        let req = read_request(&mut BufReader::new(raw.as_bytes()), &mut interim)
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"hi");
        assert_eq!(interim, b"HTTP/1.1 100 Continue\r\n\r\n");

        // No Expect header: nothing interim is written.
        let mut interim = Vec::new();
        let raw = "GET / HTTP/1.1\r\n\r\n";
        read_request(&mut BufReader::new(raw.as_bytes()), &mut interim)
            .unwrap()
            .unwrap();
        assert!(interim.is_empty());
    }

    /// Drives the incremental parser one byte at a time — the shape the
    /// evented frontend sees under a slow client — and returns the
    /// request plus any interim bytes.
    fn parse_byte_at_a_time(raw: &[u8]) -> Result<(Request, Vec<u8>), HttpError> {
        let mut parser = RequestParser::new();
        let mut interim = Vec::new();
        let mut buf: Vec<u8> = Vec::new();
        let mut fed = 0;
        loop {
            let (consumed, step) = parser.advance(&buf)?;
            buf.drain(..consumed);
            match step {
                ParseStep::Done(req) => return Ok((req, interim)),
                ParseStep::HeadersDone => {}
                ParseStep::Interim(bytes) => interim.extend_from_slice(bytes),
                ParseStep::NeedMore => {
                    assert!(buf.is_empty(), "NeedMore must consume everything");
                    assert!(fed < raw.len(), "parser starved: wants more than the input");
                    buf.push(raw[fed]);
                    fed += 1;
                }
            }
        }
    }

    #[test]
    fn incremental_parser_handles_byte_at_a_time_content_length() {
        let raw =
            b"POST /v1/optimize?omega=80 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let (req, interim) = parse_byte_at_a_time(raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/optimize");
        assert_eq!(req.query_param("omega"), Some("80"));
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive);
        assert!(interim.is_empty());
    }

    #[test]
    fn incremental_parser_handles_byte_at_a_time_chunked() {
        let raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    4\r\nWiki\r\n5\r\npedia\r\n0\r\nX-Trailer: ignored\r\n\r\n";
        let (req, _) = parse_byte_at_a_time(raw).unwrap();
        assert_eq!(req.body, b"Wikipedia");
    }

    #[test]
    fn incremental_parser_emits_interim_exactly_once() {
        let raw = b"POST /x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\nhi";
        let (req, interim) = parse_byte_at_a_time(raw).unwrap();
        assert_eq!(req.body, b"hi");
        assert_eq!(interim, b"HTTP/1.1 100 Continue\r\n\r\n");

        // Expect + empty body: the request must complete without the
        // parser demanding bytes that will never come.
        let raw = b"POST /x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 0\r\n\r\n";
        let (req, interim) = parse_byte_at_a_time(raw).unwrap();
        assert!(req.body.is_empty());
        assert_eq!(interim, b"HTTP/1.1 100 Continue\r\n\r\n");
    }

    /// Advances through the zero-input steps (HeadersDone, Interim)
    /// until `Done`, returning how much of `input` was consumed.
    fn drive(parser: &mut RequestParser, input: &[u8]) -> (usize, Request) {
        let mut consumed = 0;
        loop {
            let (n, step) = parser.advance(&input[consumed..]).unwrap();
            consumed += n;
            match step {
                ParseStep::Done(r) => return (consumed, r),
                ParseStep::NeedMore => panic!("parser starved at {consumed}"),
                ParseStep::HeadersDone | ParseStep::Interim(_) => {}
            }
        }
    }

    #[test]
    fn incremental_parser_leaves_pipelined_bytes_unconsumed() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut parser = RequestParser::new();
        let (consumed, req) = drive(&mut parser, raw);
        assert_eq!(req.path, "/a");
        assert!(consumed < raw.len(), "second request must stay buffered");
        // The same parser instance, reset by `finish`, parses the rest.
        let (consumed2, req) = drive(&mut parser, &raw[consumed..]);
        assert_eq!(req.path, "/b");
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn headers_done_precedes_the_interim_and_exposes_the_head() {
        // The admission hook must fire BEFORE the 100 Continue interim —
        // a refused client must not be invited to upload its body.
        let raw = b"POST /v1/optimize?omega=80 HTTP/1.1\r\nHost: t\r\n\
                    Expect: 100-continue\r\nContent-Length: 2\r\n\r\n";
        let mut parser = RequestParser::new();
        let (consumed, step) = parser.advance(raw).unwrap();
        assert_eq!(consumed, raw.len());
        assert!(matches!(step, ParseStep::HeadersDone), "got {step:?}");
        assert_eq!(parser.head_method(), "POST");
        assert_eq!(parser.head_path(), "/v1/optimize");
        assert!(parser.body_expected());
        let (_, step) = parser.advance(&[]).unwrap();
        assert!(matches!(step, ParseStep::Interim(_)), "got {step:?}");

        // Bodyless requests report no body to wait for.
        let mut parser = RequestParser::new();
        let (_, step) = parser.advance(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert!(matches!(step, ParseStep::HeadersDone), "got {step:?}");
        assert!(!parser.body_expected());
        let mut parser = RequestParser::new();
        let (_, step) = parser
            .advance(b"POST /x HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
        assert!(matches!(step, ParseStep::HeadersDone), "got {step:?}");
        assert!(!parser.body_expected());
    }

    #[test]
    fn incremental_parser_enforces_line_and_body_limits_mid_stream() {
        // An unterminated request line must fail as soon as the limit is
        // crossed — not only once a newline arrives (slowloris defense).
        let mut parser = RequestParser::new();
        let chunk = vec![b'a'; 4096];
        let mut crossed = false;
        for _ in 0..4 {
            match parser.advance(&chunk) {
                Ok((n, ParseStep::NeedMore)) => assert_eq!(n, chunk.len()),
                Ok((_, other)) => panic!("unexpected step {other:?}"),
                Err(HttpError::BadRequest(msg)) => {
                    assert!(msg.contains("too long"), "msg: {msg}");
                    crossed = true;
                    break;
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(crossed, "oversized line must be rejected without a newline");

        // Declared oversized body is refused at the framing decision
        // (the step after the headers-complete admission hook).
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let mut parser = RequestParser::new();
        let (n, step) = parser.advance(raw.as_bytes()).unwrap();
        assert!(matches!(step, ParseStep::HeadersDone), "got {step:?}");
        assert!(matches!(
            parser.advance(&raw.as_bytes()[n..]),
            Err(HttpError::PayloadTooLarge)
        ));
    }

    #[test]
    fn response_serializes_with_length() {
        let mut out = Vec::new();
        Response::text(200, "ok").write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nok"));
    }

    #[test]
    fn extra_headers_land_before_the_body() {
        let mut out = Vec::new();
        Response::text(200, "ok")
            .with_header("x-popqc-request-id", "req-1-2")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
        assert!(head.contains("x-popqc-request-id: req-1-2"), "head: {head}");
        assert_eq!(body, "ok");
    }
}
