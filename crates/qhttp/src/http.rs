//! Minimal HTTP/1.1 framing: request parsing (request line, headers,
//! `Content-Length` and chunked bodies) and response serialization with
//! keep-alive support.
//!
//! This is deliberately a small vendored subset — just enough protocol for
//! the JSON API in [`crate::api`] — not a general-purpose HTTP
//! implementation. Unsupported constructs are rejected with a clear
//! [`HttpError`] that the server maps to a 4xx response instead of killing
//! the connection silently.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Hard cap on request bodies (16 MiB); larger uploads get a 413.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;
/// Hard cap on a single header line.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Hard cap on the number of request headers.
const MAX_HEADERS: usize = 100;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The request is malformed; the message goes into the 400 body.
    BadRequest(String),
    /// The declared or actual body size exceeds [`MAX_BODY_BYTES`].
    PayloadTooLarge,
    /// The socket failed mid-request (timeout, reset, …).
    Io(io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::PayloadTooLarge => write!(f, "payload too large"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

fn bad(msg: impl Into<String>) -> HttpError {
    HttpError::BadRequest(msg.into())
}

/// A parsed request: method, decoded path + query, headers, raw body.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path without the query string (e.g. `/v1/jobs/7`).
    pub path: String,
    /// Decoded `key=value` query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header name/value pairs as received (names matched case-insensitively).
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open afterwards.
    pub keep_alive: bool,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or a 400-shaped error.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| bad("request body is not valid UTF-8"))
    }
}

/// Reads one CRLF- (or LF-) terminated line, bounded by [`MAX_LINE_BYTES`].
fn read_line(r: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None); // clean EOF between requests
                }
                return Err(bad("connection closed mid-line"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    let s = String::from_utf8(buf).map_err(|_| bad("non-UTF-8 header line"))?;
                    return Ok(Some(s));
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE_BYTES {
                    return Err(bad("header line too long"));
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Decodes `%XX` escapes and `+` (as space) in a query component.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                match bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

/// Reads one request off the stream. `Ok(None)` means the client closed the
/// connection cleanly between requests (normal keep-alive teardown).
///
/// `w` is the response side of the same connection: a client sending
/// `Expect: 100-continue` (curl does for bodies over 1 KiB) waits for the
/// interim `100 Continue` line before transmitting the body, so it must be
/// written between the headers and the body read. Pass
/// [`std::io::sink()`] when parsing from a buffer.
pub fn read_request(
    r: &mut impl BufRead,
    w: &mut impl Write,
) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line(r)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?;
    let target = parts
        .next()
        .ok_or_else(|| bad("request line missing target"))?;
    let version = parts
        .next()
        .ok_or_else(|| bad("request line missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(bad("malformed request line"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(bad(format!("unsupported HTTP version `{version}`")));
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?.ok_or_else(|| bad("connection closed in headers"))?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(format!("malformed header line `{line}`")))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
        if headers.len() > MAX_HEADERS {
            return Err(bad("too many headers"));
        }
    }

    let header = |name: &str| -> Option<&str> {
        headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    };

    if header("Expect").is_some_and(|e| e.eq_ignore_ascii_case("100-continue")) {
        w.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        w.flush()?;
    }

    // Body framing must be unambiguous: a Transfer-Encoding this server
    // does not decode, Transfer-Encoding combined with Content-Length, or
    // conflicting duplicate Content-Length headers are each rejected
    // outright — silently picking one interpretation is how request
    // smuggling happens once a proxy sits in front. Every repeated field
    // line counts: per RFC 7230 duplicates combine into one list, so the
    // coding check must see them all, not just the first header.
    let content_lengths: Vec<&str> = headers
        .iter()
        .filter(|(k, _)| k.eq_ignore_ascii_case("Content-Length"))
        .map(|(_, v)| v.trim())
        .collect();
    let transfer_encodings: Vec<&str> = headers
        .iter()
        .filter(|(k, _)| k.eq_ignore_ascii_case("Transfer-Encoding"))
        .map(|(_, v)| v.as_str())
        .collect();
    let body = if !transfer_encodings.is_empty() {
        let mut codings = transfer_encodings
            .iter()
            .flat_map(|v| v.split(','))
            .map(str::trim)
            .filter(|t| !t.is_empty());
        let only_chunked = codings
            .next()
            .is_some_and(|t| t.eq_ignore_ascii_case("chunked"))
            && codings.next().is_none();
        if !only_chunked {
            return Err(bad(format!(
                "unsupported Transfer-Encoding `{}`",
                transfer_encodings.join(", ")
            )));
        }
        if !content_lengths.is_empty() {
            return Err(bad("Transfer-Encoding combined with Content-Length"));
        }
        read_chunked_body(r)?
    } else if let Some(&cl) = content_lengths.first() {
        if content_lengths.iter().any(|&c| c != cl) {
            return Err(bad("conflicting Content-Length headers"));
        }
        // Strictly 1*DIGIT (RFC 9110): Rust's `parse` would also accept a
        // leading `+`, which a stricter front proxy may reject or
        // reinterpret — the same parser-disagreement class as the
        // Transfer-Encoding checks above.
        if cl.is_empty() || !cl.bytes().all(|b| b.is_ascii_digit()) {
            return Err(bad(format!("bad Content-Length `{cl}`")));
        }
        let len: usize = cl
            .parse()
            .map_err(|_| bad(format!("bad Content-Length `{cl}`")))?;
        if len > MAX_BODY_BYTES {
            return Err(HttpError::PayloadTooLarge);
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        body
    } else {
        Vec::new()
    };

    let keep_alive = match header("Connection") {
        Some(c) if c.eq_ignore_ascii_case("close") => false,
        Some(c) if c.eq_ignore_ascii_case("keep-alive") => true,
        _ => version == "HTTP/1.1", // 1.1 defaults to keep-alive
    };

    Ok(Some(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
        keep_alive,
    }))
}

/// Reads a `Transfer-Encoding: chunked` body, including discarding any
/// trailer section.
fn read_chunked_body(r: &mut impl BufRead) -> Result<Vec<u8>, HttpError> {
    let mut body = Vec::new();
    loop {
        let line = read_line(r)?.ok_or_else(|| bad("connection closed in chunk header"))?;
        // Chunk extensions (after ';') are allowed and ignored.
        let size_str = line.split(';').next().unwrap_or("").trim();
        // Strictly 1*HEXDIG (RFC 9112): `from_str_radix` alone would also
        // accept a leading `+`.
        if size_str.is_empty() || !size_str.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(bad(format!("bad chunk size `{size_str}`")));
        }
        let size = usize::from_str_radix(size_str, 16)
            .map_err(|_| bad(format!("bad chunk size `{size_str}`")))?;
        if size == 0 {
            // Discard trailers until the blank line.
            loop {
                let t = read_line(r)?.ok_or_else(|| bad("connection closed in trailers"))?;
                if t.is_empty() {
                    return Ok(body);
                }
            }
        }
        // `body.len() <= MAX_BODY_BYTES` is invariant here, so the
        // subtraction cannot underflow — and unlike `body.len() + size`,
        // this cannot overflow for an attacker-chosen 16-digit hex size.
        if size > MAX_BODY_BYTES - body.len() {
            return Err(HttpError::PayloadTooLarge);
        }
        let start = body.len();
        body.resize(start + size, 0);
        r.read_exact(&mut body[start..])?;
        // Each chunk is followed by CRLF.
        let sep = read_line(r)?.ok_or_else(|| bad("connection closed after chunk"))?;
        if !sep.is_empty() {
            return Err(bad("missing CRLF after chunk data"));
        }
    }
}

/// An outgoing response. Construct with [`Response::json`] /
/// [`Response::text`] and send with [`Response::write_to`].
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    /// Extra header name/value pairs beyond the framing headers that
    /// [`write_to`](Response::write_to) always emits (`Content-Type`,
    /// `Content-Length`, `Connection`). Values must not contain CR/LF.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    pub fn json(status: u16, value: &serde_json::Value) -> Response {
        let body = serde_json::to_string(value)
            .expect("serialize response JSON")
            .into_bytes();
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body,
        }
    }

    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Text response with an explicit content type (e.g. the Prometheus
    /// exposition format's `text/plain; version=0.0.4`).
    pub fn text_with_type(status: u16, content_type: &'static str, body: String) -> Response {
        Response {
            status,
            content_type,
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Attaches one extra response header (builder style).
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes the response; `keep_alive` controls the `Connection`
    /// header (the server closes the socket when it is false).
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), &mut std::io::sink())
    }

    #[test]
    fn parses_request_with_content_length() {
        let req = parse(
            "POST /v1/optimize?omega=80 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/optimize");
        assert_eq!(req.query_param("omega"), Some("80"));
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive);
    }

    #[test]
    fn parses_chunked_body() {
        let raw = "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                   4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n";
        let req = parse(raw).unwrap().unwrap();
        assert_eq!(req.body, b"Wikipedia");
    }

    #[test]
    fn huge_chunk_size_is_payload_too_large_not_overflow() {
        // A chunk size crafted so `body.len() + size` wraps around usize
        // must hit the 413 path, not bypass the cap and panic in
        // `read_exact` (regression: remote DoS via integer overflow).
        let raw = format!(
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
             10\r\n0123456789abcdef\r\n{:x}\r\n",
            usize::MAX - 14
        );
        assert!(matches!(parse(&raw), Err(HttpError::PayloadTooLarge)));
        // Same for a single oversized (but non-wrapping) chunk.
        let raw = format!(
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n{:x}\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&raw), Err(HttpError::PayloadTooLarge)));
    }

    #[test]
    fn ambiguous_body_framing_is_rejected() {
        // Transfer-Encoding we cannot decode: never fall back to
        // Content-Length framing.
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\nContent-Length: 2\r\n\r\nhi"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nTransfer-Encoding: gzip, chunked\r\n\r\n0\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        // Both framings at once.
        assert!(matches!(
            parse(
                "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 5\r\n\r\n\
                 0\r\n\r\n"
            ),
            Err(HttpError::BadRequest(_))
        ));
        // A second Transfer-Encoding field line combines with the first
        // (RFC 7230): `chunked` + `gzip` across two lines is as ambiguous
        // as `chunked, gzip` in one.
        assert!(matches!(
            parse(
                "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\nTransfer-Encoding: gzip\r\n\r\n\
                 0\r\n\r\n"
            ),
            Err(HttpError::BadRequest(_))
        ));
        // Conflicting duplicate Content-Length headers.
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nhi "),
            Err(HttpError::BadRequest(_))
        ));
        // Agreeing duplicates are harmless and accepted.
        let req = parse("POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn eof_between_requests_is_clean() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            parse("garbage\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/3.0\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: zonk\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        // Signed numbers are not 1*DIGIT / 1*HEXDIG, even though Rust's
        // integer parsers would accept the `+`.
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: +2\r\n\r\nhi"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n+2\r\nhi\r\n0\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn connection_close_header_wins() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn query_decoding() {
        let req = parse("GET /p?label=a%20b+c&flag HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.query_param("label"), Some("a b c"));
        assert_eq!(req.query_param("flag"), Some(""));
    }

    #[test]
    fn expect_100_continue_gets_the_interim_response_before_the_body() {
        let raw = "POST /x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\nhi";
        let mut interim = Vec::new();
        let req = read_request(&mut BufReader::new(raw.as_bytes()), &mut interim)
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"hi");
        assert_eq!(interim, b"HTTP/1.1 100 Continue\r\n\r\n");

        // No Expect header: nothing interim is written.
        let mut interim = Vec::new();
        let raw = "GET / HTTP/1.1\r\n\r\n";
        read_request(&mut BufReader::new(raw.as_bytes()), &mut interim)
            .unwrap()
            .unwrap();
        assert!(interim.is_empty());
    }

    #[test]
    fn response_serializes_with_length() {
        let mut out = Vec::new();
        Response::text(200, "ok").write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nok"));
    }

    #[test]
    fn extra_headers_land_before_the_body() {
        let mut out = Vec::new();
        Response::text(200, "ok")
            .with_header("x-popqc-request-id", "req-1-2")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
        assert!(head.contains("x-popqc-request-id: req-1-2"), "head: {head}");
        assert_eq!(body, "ok");
    }
}
