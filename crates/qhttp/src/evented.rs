//! The evented frontend: the v1 API served through `qnet`'s
//! readiness-driven connection layer instead of thread-per-connection.
//!
//! `HttpDriver` is the per-connection protocol state machine the qnet
//! loop threads run: it feeds arriving bytes through the incremental
//! [`RequestParser`], answers admission
//! refusals *inline on the loop thread* (never touching the dispatcher
//! pool), and hands admitted requests to the dispatcher as a closure
//! over [`AppState::handle`]. Refusals stay fast under load by
//! construction — a shed 503 costs one parse plus one small serialized
//! body, regardless of how many oracle jobs are in flight.
//!
//! Admission control order, per parsed request:
//!
//! 0. **Headers-complete pre-check** — for a request that still has a
//!    body to upload, the rate-limit and shed decisions run as soon as
//!    the headers finish, *before* the parser's `100 Continue` interim
//!    or any body buffering: a refused client gets its 429/503
//!    immediately instead of an invitation to upload `MAX_BODY_BYTES`
//!    first. The unread body makes the connection's framing unusable,
//!    so these early refusals close the connection.
//! 1. **Rate limit** — the per-peer-IP token bucket (`--rate-limit`).
//!    A refusal answers 429 `rate_limited` with a computed
//!    `Retry-After`, keeps the connection alive (bodyless requests),
//!    and counts into `popqc_net_rate_limited_total`. A request
//!    admitted at the pre-check is not charged a second token here.
//! 2. **Load shedding** — requests that would enqueue oracle work
//!    (`POST /v1/optimize`, `POST /v1/batch`) are refused with 503
//!    `overloaded` + `Retry-After` when the service's job queue is at
//!    `--shed-queue-depth` (`popqc_net_shed_total`). Cheap reads
//!    (stats, metrics, health, job polling) are never shed — they are
//!    exactly what an operator needs during an overload.
//! 3. **Dispatch** — everything else runs on the qnet dispatcher pool,
//!    which bounds concurrently *executing* requests the way
//!    `conn_threads` bounds them on the threaded frontend.
//!
//! Connection-level admission (the `--max-conns` accept gate, idle and
//! slowloris read deadlines, output buffering for stalled readers)
//! lives in `qnet` itself; this module only decides per-request fates.

use crate::api::{AppState, FrontendProbe};
use crate::http::{HttpError, ParseStep, Request, RequestParser, Response};
use crate::server::Handler;
use qapi::ApiError;
use qnet::{Action, Driver, DriverFactory, NetConfig, NetServer, NetStats, RateLimiter};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// Tuning for an [`EventedServer`]. The connection-layer knobs map onto
/// [`NetConfig`]; `rate_limit` and `shed_queue_depth` are HTTP-level
/// admission control and default to off.
#[derive(Clone, Debug)]
pub struct EventedConfig {
    /// Event-loop threads (each owns its connections).
    pub loop_threads: usize,
    /// Dispatcher threads running handler work; bounds concurrently
    /// executing requests.
    pub dispatch_threads: usize,
    /// Open-connection cap; at the cap the acceptor stops accepting and
    /// excess clients wait in the kernel backlog.
    pub max_conns: usize,
    /// A connection must complete a request within this window or it is
    /// closed (covers both idle keep-alive and slowloris).
    pub read_deadline: Duration,
    /// Per-peer-IP requests/second (burst of one second's worth);
    /// `0.0` disables rate limiting.
    pub rate_limit: f64,
    /// Refuse work-enqueueing requests with 503 once the service queue
    /// holds this many waiting jobs; `0` disables shedding.
    pub shed_queue_depth: usize,
}

impl Default for EventedConfig {
    fn default() -> EventedConfig {
        let net = NetConfig::default();
        EventedConfig {
            loop_threads: net.loop_threads,
            dispatch_threads: net.dispatch_threads,
            max_conns: net.max_conns,
            read_deadline: net.read_deadline,
            rate_limit: 0.0,
            shed_queue_depth: 0,
        }
    }
}

/// The v1 API on the readiness-driven frontend. Construction attaches a
/// [`FrontendProbe`] to the state, so `/v1/stats` reports the `frontend`
/// block immediately.
pub struct EventedServer {
    inner: NetServer,
    stats: Arc<NetStats>,
}

impl EventedServer {
    /// Binds `addr` (port 0 for ephemeral) and starts serving `state`.
    pub fn serve(
        addr: impl ToSocketAddrs,
        state: Arc<AppState>,
        cfg: EventedConfig,
    ) -> std::io::Result<EventedServer> {
        let stats = Arc::new(NetStats::default());
        let factory = Arc::new(HttpDriverFactory {
            state: Arc::clone(&state),
            limiter: Arc::new(RateLimiter::new(cfg.rate_limit)),
            shed_queue_depth: cfg.shed_queue_depth,
            stats: Arc::clone(&stats),
        });
        let net_cfg = NetConfig {
            loop_threads: cfg.loop_threads,
            dispatch_threads: cfg.dispatch_threads,
            max_conns: cfg.max_conns,
            read_deadline: cfg.read_deadline,
            ..NetConfig::default()
        };
        let inner = NetServer::serve_with_stats(addr, factory, net_cfg, Arc::clone(&stats))?;
        state.set_frontend_probe(Arc::new(EventedProbe(Arc::clone(&stats))));
        Ok(EventedServer { inner, stats })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// This server's connection/admission counters.
    pub fn stats(&self) -> Arc<NetStats> {
        Arc::clone(&self.stats)
    }

    /// Stops accepting, closes every connection, joins all threads.
    /// Idempotent (also runs on drop).
    pub fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

struct EventedProbe(Arc<NetStats>);

impl FrontendProbe for EventedProbe {
    fn report(&self) -> qapi::FrontendReport {
        qapi::FrontendReport {
            frontend: "evented".to_string(),
            connections_open: self.0.connections_open(),
            connections_accepted: self.0.connections_accepted(),
            requests_shed: self.0.requests_shed(),
            rate_limited: self.0.rate_limited(),
            deadline_closes: self.0.deadline_closes(),
            write_stalls: self.0.write_stalls(),
        }
    }
}

struct HttpDriverFactory {
    state: Arc<AppState>,
    limiter: Arc<RateLimiter>,
    shed_queue_depth: usize,
    stats: Arc<NetStats>,
}

impl DriverFactory for HttpDriverFactory {
    fn make(&self, peer: SocketAddr) -> Box<dyn Driver> {
        Box::new(HttpDriver {
            state: Arc::clone(&self.state),
            peer,
            parser: RequestParser::new(),
            limiter: Arc::clone(&self.limiter),
            shed_queue_depth: self.shed_queue_depth,
            stats: Arc::clone(&self.stats),
            rate_admitted: false,
            trace: None,
        })
    }
}

/// One connection's HTTP state machine (see the module docs for the
/// admission-control order).
struct HttpDriver {
    state: Arc<AppState>,
    peer: SocketAddr,
    parser: RequestParser,
    limiter: Arc<RateLimiter>,
    shed_queue_depth: usize,
    stats: Arc<NetStats>,
    /// The in-flight request already paid its rate-limit token at the
    /// headers-complete pre-check; don't charge it again at `Done`.
    rate_admitted: bool,
    /// The dispatched request's trace, opened at parse time and finished
    /// on the loop thread once its response flushes (or at connection
    /// reap, as `aborted`).
    trace: Option<qobs::trace::TraceHandle>,
}

/// Serializes a response into bytes for the connection's output buffer.
fn serialize(resp: &Response, keep_alive: bool) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(256);
    resp.write_to(&mut bytes, keep_alive)
        .expect("serializing a response into memory cannot fail");
    bytes
}

/// Whether this request would enqueue oracle work — the only traffic
/// load shedding applies to.
fn enqueues_work(method: &str, path: &str) -> bool {
    method == "POST" && matches!(path, "/v1/optimize" | "/v1/batch")
}

impl HttpDriver {
    /// The 429 for `peer`'s bucket, with its computed `Retry-After`.
    fn rate_limit_refusal(&self) -> Response {
        self.stats.rate_limit_hit();
        let secs = self.limiter.retry_after_secs(self.peer.ip());
        let e = ApiError::RateLimited(format!("per-peer rate limit exceeded; retry in {secs}s"));
        Response::json(e.http_status(), &e.to_json()).with_header("Retry-After", secs.to_string())
    }

    /// The 503 for a shed work-enqueueing request.
    fn shed_refusal(&self) -> Response {
        self.stats.shed();
        let e = ApiError::Overloaded(format!(
            "job queue is at the shed threshold ({}); retry later",
            self.shed_queue_depth
        ));
        crate::api::error(&e)
    }

    /// Whether the shed predicate refuses `method path` right now.
    fn sheds(&self, method: &str, path: &str) -> bool {
        self.shed_queue_depth > 0
            && enqueues_work(method, path)
            && self.state.service().queue_depth() >= self.shed_queue_depth
    }

    /// Counts and logs an inline refusal — these responses never reach
    /// [`Handler::handle`], so without this the request counter and the
    /// access log would miss every 429/503 answered on the loop thread.
    fn account_refusal(
        &self,
        resp: Response,
        verdict: &'static str,
        method: &str,
        path: &str,
        req: Option<&Request>,
    ) -> Response {
        crate::api::observe_refusal(method, path, &self.peer.to_string(), verdict, req, resp)
    }

    /// The headers-complete pre-check for a request with a body still
    /// to arrive: admission runs *before* the parser emits the
    /// `100 Continue` interim or buffers a single body byte. Returns
    /// the refusal response, or `None` if the request may proceed (a
    /// consumed rate token is remembered in `rate_admitted`).
    fn refuse_before_body(&mut self) -> Option<Response> {
        let method = self.parser.head_method().to_string();
        let path = self.parser.head_path().to_string();
        if self.limiter.enabled() && !self.rate_admitted {
            if self.limiter.admit(self.peer.ip()) {
                self.rate_admitted = true;
            } else {
                let resp = self.rate_limit_refusal();
                return Some(self.account_refusal(resp, "rate_limited", &method, &path, None));
            }
        }
        if self.sheds(&method, &path) {
            let resp = self.shed_refusal();
            return Some(self.account_refusal(resp, "shed", &method, &path, None));
        }
        None
    }

    /// Decides one parsed request's fate. Returns `true` when the
    /// request was dispatched (the connection is now busy and the driver
    /// must stop consuming input).
    fn handle_request(&mut self, req: Request, out: &mut Vec<Action>) -> bool {
        let rate_admitted = std::mem::take(&mut self.rate_admitted);
        if self.limiter.enabled() && !rate_admitted && !self.limiter.admit(self.peer.ip()) {
            let resp = self.rate_limit_refusal();
            let resp =
                self.account_refusal(resp, "rate_limited", &req.method, &req.path, Some(&req));
            out.push(Action::Respond {
                bytes: serialize(&resp, req.keep_alive),
                keep_alive: req.keep_alive,
            });
            return false;
        }
        if self.sheds(&req.method, &req.path) {
            let resp = self.shed_refusal();
            let resp = self.account_refusal(resp, "shed", &req.method, &req.path, Some(&req));
            out.push(Action::Respond {
                bytes: serialize(&resp, req.keep_alive),
                keep_alive: req.keep_alive,
            });
            return false;
        }
        let state = Arc::clone(&self.state);
        let keep_alive = req.keep_alive;

        // The root span opens here, at parse/admission time on the loop
        // thread; the dispatch closure joins it from the dispatcher pool
        // and the loop thread finishes it once the response flushes.
        if let Some(old) = self.trace.take() {
            // A pipelined successor overtook the previous response's
            // flush notification; close the old trace without its
            // write-flush span rather than losing it.
            old.finish(old.status());
        }
        let trace = qobs::trace::start_trace("request");
        if trace.enabled() {
            trace.root_attr("method", req.method.as_str());
            trace.root_attr("path", req.path.as_str());
            trace.root_attr("peer", self.peer.to_string());
            self.trace = Some(trace.clone());
        }
        let enqueued = std::time::Instant::now();
        out.push(Action::Dispatch(Box::new(move || {
            let waited_nanos = enqueued.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            trace.span_closed(
                "dispatch_wait",
                qobs::trace::ROOT_SPAN,
                trace.now_nanos().saturating_sub(waited_nanos),
                waited_nanos,
                Vec::new(),
            );
            let ctx = qobs::trace::TraceCtx {
                handle: trace.clone(),
                parent: qobs::trace::ROOT_SPAN,
            };
            // Same panic policy as the threaded frontend: a handler
            // panic answers 500 and closes the connection; it must
            // never take a dispatcher thread down.
            let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                qobs::trace::with_active(&ctx, || state.handle(&req))
            }));
            match response {
                Ok(r) => (serialize(&r, keep_alive), keep_alive),
                Err(_) => {
                    trace.set_status(500);
                    trace.mark_handler_done();
                    let r = Response::json(
                        500,
                        &ApiError::Internal("internal server error".to_string()).to_json(),
                    );
                    (serialize(&r, false), false)
                }
            }
        })));
        true
    }
}

impl Driver for HttpDriver {
    fn on_data(&mut self, input: &mut Vec<u8>, out: &mut Vec<Action>) {
        loop {
            let (consumed, step) = match self.parser.advance(input) {
                Ok(x) => x,
                Err(e) => {
                    // Protocol errors get a best-effort response when
                    // possible; the connection is never reusable (its
                    // framing is lost).
                    input.clear();
                    let resp = match e {
                        HttpError::BadRequest(msg) => Some(Response::json(
                            400,
                            &qapi::transport_error_json("bad_request", &msg),
                        )),
                        HttpError::PayloadTooLarge => Some(Response::json(
                            413,
                            &qapi::transport_error_json(
                                "payload_too_large",
                                "request body too large",
                            ),
                        )),
                        HttpError::Io(_) => None,
                    };
                    match resp {
                        Some(r) => out.push(Action::Respond {
                            bytes: serialize(&r, false),
                            keep_alive: false,
                        }),
                        None => out.push(Action::Close),
                    }
                    return;
                }
            };
            input.drain(..consumed);
            match step {
                ParseStep::NeedMore => return,
                ParseStep::HeadersDone => {
                    // Admission pre-check before the body: a refused
                    // client must not be invited (via 100 Continue) to
                    // upload its payload first. The unread body makes
                    // the framing unusable, so the refusal closes the
                    // connection. Bodyless requests reach `Done`
                    // immediately and are checked there instead.
                    if self.parser.body_expected() {
                        if let Some(resp) = self.refuse_before_body() {
                            input.clear();
                            out.push(Action::Respond {
                                bytes: serialize(&resp, false),
                                keep_alive: false,
                            });
                            return;
                        }
                    }
                }
                // The parser has a zero-input transition queued after an
                // interim response, so loop again even with empty input.
                ParseStep::Interim(bytes) => out.push(Action::Interim(bytes.to_vec())),
                ParseStep::Done(req) => {
                    if self.handle_request(req, out) {
                        // Dispatched: the connection is busy. Leftover
                        // pipelined bytes replay when the completion
                        // posts back.
                        return;
                    }
                }
            }
        }
    }

    fn on_output_drained(&mut self) {
        // Fires whenever queued bytes finish flushing (interim responses
        // included); only a response whose handler has completed closes
        // the trace — everything from handler-done to here is the
        // write-flush time the dispatcher never sees.
        if let Some(t) = &self.trace {
            if let Some(done) = t.handler_done_nanos() {
                let now = t.now_nanos();
                t.span_closed(
                    "write_flush",
                    qobs::trace::ROOT_SPAN,
                    done,
                    now.saturating_sub(done),
                    Vec::new(),
                );
                t.finish(t.status());
                self.trace = None;
            }
        }
    }
}

impl Drop for HttpDriver {
    fn drop(&mut self) {
        // A reaped connection (peer gone, write stall, shutdown) still
        // finishes its in-flight trace: status 0 marks it aborted, which
        // the tail sampler always keeps.
        if let Some(t) = self.trace.take() {
            t.root_attr("aborted", true);
            t.finish(t.status());
        }
    }
}
