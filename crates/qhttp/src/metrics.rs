//! HTTP-layer metric families and per-request ids.
//!
//! Label cardinality is kept bounded on purpose: the `endpoint` label is
//! the *route template* (`/v1/jobs/{id}`, never the concrete path — job
//! ids are unbounded) and the `status` label is the status *class*
//! (`2xx`/`4xx`/`5xx`), so a scrape's series inventory is fixed no matter
//! what traffic the server has seen.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, OnceLock};

fn requests_vec() -> &'static qobs::CounterVec {
    qobs::static_counter_vec!(
        "popqc_http_requests_total",
        "HTTP requests served, by route template and status class.",
        &["endpoint", "status"]
    )
}

fn duration_vec() -> &'static qobs::HistogramVec {
    qobs::static_histogram_vec!(
        "popqc_http_request_duration_seconds",
        "Wall time from parsed request to serialized response, by route template.",
        &["endpoint"],
        &qobs::LATENCY_BUCKETS
    )
}

/// Requests currently inside a handler.
pub(crate) fn in_flight() -> &'static qobs::Gauge {
    qobs::static_gauge!(
        "popqc_http_requests_in_flight",
        "Requests currently being handled."
    )
}

pub(crate) fn requests(endpoint: &str, status_class: &str) -> Arc<qobs::Counter> {
    requests_vec().with(&[endpoint, status_class])
}

pub(crate) fn request_duration(endpoint: &str) -> Arc<qobs::Histogram> {
    duration_vec().with(&[endpoint])
}

/// Registers every HTTP family so `/v1/metrics` exposes the full
/// inventory (with typed headers) before the first request arrives.
pub fn describe_metrics() {
    requests_vec();
    duration_vec();
    in_flight();
}

/// Maps a request path to its bounded route-template label.
pub(crate) fn endpoint_label(method: &str, path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/v1/version" => "/v1/version",
        "/v1/oracles" => "/v1/oracles",
        "/v1/stats" => "/v1/stats",
        "/v1/cache" => "/v1/cache",
        "/v1/metrics" => "/v1/metrics",
        "/v1/optimize" => "/v1/optimize",
        "/v1/batch" => "/v1/batch",
        "/v1/traces" => "/v1/traces",
        _ if path.starts_with("/v1/jobs/") => "/v1/jobs/{id}",
        _ if path.starts_with("/v1/traces/") => "/v1/traces/{id}",
        // Unknown routes collapse into one label so path probing cannot
        // mint unbounded series.
        _ => {
            let _ = method;
            "other"
        }
    }
}

/// The status class label for a numeric status (`2xx`, `4xx`, …).
pub(crate) fn status_class(status: u16) -> &'static str {
    match status / 100 {
        1 => "1xx",
        2 => "2xx",
        3 => "3xx",
        4 => "4xx",
        5 => "5xx",
        _ => "other",
    }
}

/// A process-unique request id: a per-process prefix (pid + start time)
/// plus a monotonically increasing sequence number. Cheap, collision-free
/// within one machine's lifetime, and grep-friendly in access logs.
pub(crate) fn next_request_id() -> String {
    static PREFIX: OnceLock<String> = OnceLock::new();
    static SEQ: AtomicU64 = AtomicU64::new(1);
    let prefix = PREFIX.get_or_init(|| {
        let pid = std::process::id();
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        format!("{pid:x}-{now:x}")
    });
    format!("{prefix}-{:x}", SEQ.fetch_add(1, Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_labels_are_bounded() {
        assert_eq!(endpoint_label("GET", "/v1/jobs/12345"), "/v1/jobs/{id}");
        assert_eq!(endpoint_label("GET", "/v1/metrics"), "/v1/metrics");
        assert_eq!(endpoint_label("GET", "/nope/deep/path"), "other");
    }

    #[test]
    fn status_classes_cover_the_taxonomy() {
        assert_eq!(status_class(200), "2xx");
        assert_eq!(status_class(202), "2xx");
        assert_eq!(status_class(404), "4xx");
        assert_eq!(status_class(503), "5xx");
    }

    #[test]
    fn request_ids_are_distinct_and_share_a_prefix() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, b);
        let stem = |s: &str| s.rsplit_once('-').map(|(p, _)| p.to_string()).unwrap();
        assert_eq!(stem(&a), stem(&b));
    }
}
