//! Loopback tests for the readiness loop itself, protocol-free: a toy
//! line-echo driver proves the sweep/dispatch/completion path, and the
//! admission controls (connection cap, read deadline, partial-write
//! buffering) are exercised with raw sockets doing deliberately
//! antisocial things.

use qnet::{Action, Driver, DriverFactory, NetConfig, NetServer};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Echoes each `\n`-terminated line through the dispatcher pool;
/// `quit` answers inline and closes; `big` answers with `BIG_BYTES` of
/// payload (the partial-write test); `empty` answers with zero bytes
/// (a dispatch that legitimately writes nothing).
struct EchoDriver;

const BIG_BYTES: usize = 8 * 1024 * 1024;

impl Driver for EchoDriver {
    fn on_data(&mut self, input: &mut Vec<u8>, out: &mut Vec<Action>) {
        while let Some(pos) = input.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = input.drain(..=pos).collect();
            line.pop(); // trailing \n
            if line == b"quit" {
                out.push(Action::Respond {
                    bytes: b"bye\n".to_vec(),
                    keep_alive: false,
                });
            } else if line == b"big" {
                out.push(Action::Dispatch(Box::new(move || {
                    (vec![b'x'; BIG_BYTES], true)
                })));
                break; // busy until the completion posts back
            } else if line == b"empty" {
                out.push(Action::Dispatch(Box::new(move || (Vec::new(), true))));
                break;
            } else {
                line.push(b'\n');
                out.push(Action::Dispatch(Box::new(move || (line, true))));
                break;
            }
        }
    }
}

struct EchoFactory;

impl DriverFactory for EchoFactory {
    fn make(&self, _peer: SocketAddr) -> Box<dyn Driver> {
        Box::new(EchoDriver)
    }
}

fn start(config: NetConfig) -> NetServer {
    NetServer::serve("127.0.0.1:0", Arc::new(EchoFactory), config).expect("bind loopback")
}

fn read_line(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(std::io::Error::new(ErrorKind::UnexpectedEof, "peer closed"));
        }
        if byte[0] == b'\n' {
            return Ok(String::from_utf8_lossy(&line).into_owned());
        }
        line.push(byte[0]);
    }
}

#[test]
fn echo_roundtrips_with_keepalive_and_inline_close() {
    let server = start(NetConfig::default());
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    // Several requests on one connection: the dispatch → completion →
    // write path, repeatedly.
    for i in 0..5 {
        writeln!(s, "hello-{i}").unwrap();
        assert_eq!(read_line(&mut s).unwrap(), format!("hello-{i}"));
    }
    // Inline response + close.
    writeln!(s, "quit").unwrap();
    assert_eq!(read_line(&mut s).unwrap(), "bye");
    let mut rest = Vec::new();
    assert_eq!(s.read_to_end(&mut rest).unwrap(), 0, "server must close");
    assert_eq!(server.stats().connections_accepted(), 1);
}

#[test]
fn pipelined_requests_answer_in_order() {
    let server = start(NetConfig::default());
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // All three requests land in one write before any response is read;
    // the busy gate must replay the leftover bytes after each completion.
    s.write_all(b"a\nb\nc\n").unwrap();
    for expect in ["a", "b", "c"] {
        assert_eq!(read_line(&mut s).unwrap(), expect);
    }
}

#[test]
fn connection_cap_applies_accept_backpressure() {
    let server = start(NetConfig {
        max_conns: 2,
        ..NetConfig::default()
    });
    let addr = server.local_addr();

    let mut held: Vec<TcpStream> = (0..2)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            writeln!(s, "warm").unwrap();
            assert_eq!(read_line(&mut s).unwrap(), "warm");
            s
        })
        .collect();

    // Third connection: connect() succeeds (kernel backlog) but the
    // server must not service it while the cap is reached.
    let mut third = TcpStream::connect(addr).unwrap();
    third
        .set_read_timeout(Some(Duration::from_millis(300)))
        .unwrap();
    writeln!(third, "ping").unwrap();
    match read_line(&mut third) {
        Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
        other => panic!("capped connection must not be served yet: {other:?}"),
    }

    // Freeing a slot lets the acceptor drain the backlog and serve it.
    drop(held.pop());
    third
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    assert_eq!(read_line(&mut third).unwrap(), "ping");
    drop(held);
}

#[test]
fn read_deadline_reaps_idle_and_slowloris_connections() {
    let server = start(NetConfig {
        read_deadline: Duration::from_millis(250),
        ..NetConfig::default()
    });
    let addr = server.local_addr();

    // Idle connection: never sends a byte.
    let mut idle = TcpStream::connect(addr).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    // Slowloris: trickles bytes without ever completing a line. Steady
    // traffic must NOT reset the deadline — only a completed request
    // does.
    let mut slow = TcpStream::connect(addr).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let start_t = Instant::now();
    let mut buf = [0u8; 1];
    let mut closed = false;
    for _ in 0..40 {
        if slow.write_all(b"x").is_err() {
            closed = true;
            break;
        }
        match slow.read(&mut buf) {
            Ok(0) => {
                closed = true;
                break;
            }
            Ok(_) => panic!("no response expected for a partial line"),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => {
                closed = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        closed,
        "slowloris trickle must be closed by the deadline, not served forever"
    );
    assert!(
        start_t.elapsed() < Duration::from_secs(3),
        "close must come from the deadline, not a hang"
    );

    // The idle connection is reaped too.
    let n = idle.read(&mut buf).expect("idle close is a clean EOF");
    assert_eq!(n, 0);
    assert!(server.stats().deadline_closes() >= 2);
}

#[test]
fn completed_requests_reset_the_deadline() {
    let server = start(NetConfig {
        read_deadline: Duration::from_millis(400),
        ..NetConfig::default()
    });
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // Each round-trip completes a request well inside the deadline; the
    // connection must survive 1s of such traffic.
    for i in 0..10 {
        writeln!(s, "tick-{i}").unwrap();
        assert_eq!(read_line(&mut s).unwrap(), format!("tick-{i}"));
        std::thread::sleep(Duration::from_millis(100));
    }
    assert_eq!(server.stats().deadline_closes(), 0);
}

#[test]
fn partial_writes_buffer_without_blocking_the_loop() {
    let server = start(NetConfig {
        loop_threads: 1, // the stalled write and the probe share a loop
        ..NetConfig::default()
    });
    let addr = server.local_addr();

    // A client that requests BIG_BYTES and then refuses to read: the
    // kernel windows fill and the loop must park the remainder in the
    // connection's write buffer.
    let mut stalled = TcpStream::connect(addr).unwrap();
    stalled
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    writeln!(stalled, "big").unwrap();
    std::thread::sleep(Duration::from_millis(400));

    // The same loop thread must still serve other connections while the
    // big response is parked.
    let mut probe = TcpStream::connect(addr).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let t0 = Instant::now();
    writeln!(probe, "alive").unwrap();
    assert_eq!(read_line(&mut probe).unwrap(), "alive");
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "probe must not wait behind the stalled write"
    );
    assert!(
        server.stats().write_stalls() >= 1,
        "the parked response must be counted as a stall"
    );

    // Now drain: the full payload arrives intact.
    let mut total = 0usize;
    let mut buf = vec![0u8; 64 * 1024];
    while total < BIG_BYTES {
        let n = stalled.read(&mut buf).expect("drain big response");
        assert!(n > 0, "connection closed mid-payload at {total} bytes");
        for &b in &buf[..n] {
            assert_eq!(b, b'x');
        }
        total += n;
    }
    assert_eq!(total, BIG_BYTES);
}

#[test]
fn write_stalled_peer_is_reaped_and_frees_its_slot() {
    // max_conns: 1 makes the leak observable — a pinned slot would
    // stop the acceptor entirely, exactly the failure mode at scale.
    let server = start(NetConfig {
        max_conns: 1,
        read_deadline: Duration::from_millis(300),
        ..NetConfig::default()
    });
    let addr = server.local_addr();

    // Request a response far larger than the kernel's socket buffers
    // and then never read a byte: writes stop progressing (WouldBlock)
    // with the output buffer undrained, which exempts the connection
    // from every drained-output reap. The write-stall deadline must
    // close it anyway.
    let mut hog = TcpStream::connect(addr).unwrap();
    writeln!(hog, "big").unwrap();
    let t0 = Instant::now();
    while server.stats().deadline_closes() == 0 && t0.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(
        server.stats().deadline_closes() >= 1,
        "a peer that never reads must be reaped as a deadline close"
    );

    // The reap released the only slot: a fresh client is served.
    let mut probe = TcpStream::connect(addr).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    writeln!(probe, "alive").unwrap();
    assert_eq!(read_line(&mut probe).unwrap(), "alive");
    drop(hog);
}

#[test]
fn empty_dispatch_response_keeps_the_connection() {
    // A dispatch that legitimately returns zero bytes is not the
    // panic-teardown path: the connection must stay open and serve the
    // next request.
    let server = start(NetConfig::default());
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    writeln!(s, "empty").unwrap();
    writeln!(s, "still-here").unwrap();
    assert_eq!(read_line(&mut s).unwrap(), "still-here");
}

#[test]
fn shutdown_closes_connections_and_is_idempotent() {
    let mut server = start(NetConfig::default());
    let addr = server.local_addr();
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    writeln!(s, "hello").unwrap();
    assert_eq!(read_line(&mut s).unwrap(), "hello");

    server.shutdown();
    server.shutdown(); // no-op
    let mut buf = [0u8; 16];
    assert_eq!(s.read(&mut buf).unwrap_or(0), 0, "open conns are severed");
    assert_eq!(server.stats().connections_open(), 0);
}
