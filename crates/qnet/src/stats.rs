//! Per-server connection counters.
//!
//! Each [`NetServer`](crate::NetServer) owns one `Arc<NetStats>` so tests
//! (and `/v1/stats`) can observe a *single* frontend even when several run
//! in one process; every increment is mirrored into the process-wide
//! `popqc_net_*` series in [`crate::metrics`] for Prometheus scrapes.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Cumulative counters for one server instance. All methods are cheap
/// relaxed atomics; the loop and dispatcher threads update them without
/// coordination.
#[derive(Debug, Default)]
pub struct NetStats {
    connections_open: AtomicU64,
    connections_accepted: AtomicU64,
    requests_shed: AtomicU64,
    rate_limited: AtomicU64,
    deadline_closes: AtomicU64,
    write_stalls: AtomicU64,
}

impl NetStats {
    /// Records an accepted connection (open gauge + lifetime total).
    pub fn conn_opened(&self) {
        self.connections_open.fetch_add(1, Relaxed);
        self.connections_accepted.fetch_add(1, Relaxed);
        crate::metrics::connections_open().inc();
        crate::metrics::connections_total().inc();
    }

    /// Records a closed connection.
    pub fn conn_closed(&self) {
        self.connections_open.fetch_sub(1, Relaxed);
        crate::metrics::connections_open().add(-1);
    }

    /// Records a request refused by queue-depth load shedding (driver
    /// answered inline instead of dispatching).
    pub fn shed(&self) {
        self.requests_shed.fetch_add(1, Relaxed);
        crate::metrics::shed_total().inc();
    }

    /// Records a request refused by the per-peer rate limiter.
    pub fn rate_limit_hit(&self) {
        self.rate_limited.fetch_add(1, Relaxed);
        crate::metrics::rate_limited_total().inc();
    }

    /// Records a connection closed by the read deadline (slowloris or
    /// idle keep-alive).
    pub fn deadline_close(&self) {
        self.deadline_closes.fetch_add(1, Relaxed);
        crate::metrics::deadline_closes_total().inc();
    }

    /// Records a write that could not complete in one sweep (peer not
    /// draining; the response stays buffered without blocking the loop).
    pub fn write_stall(&self) {
        self.write_stalls.fetch_add(1, Relaxed);
        crate::metrics::write_stalls_total().inc();
    }

    /// Connections currently open.
    pub fn connections_open(&self) -> u64 {
        self.connections_open.load(Relaxed)
    }

    /// Connections accepted over the server's lifetime.
    pub fn connections_accepted(&self) -> u64 {
        self.connections_accepted.load(Relaxed)
    }

    /// Requests refused by load shedding.
    pub fn requests_shed(&self) -> u64 {
        self.requests_shed.load(Relaxed)
    }

    /// Requests refused by the rate limiter.
    pub fn rate_limited(&self) -> u64 {
        self.rate_limited.load(Relaxed)
    }

    /// Connections closed by the read deadline.
    pub fn deadline_closes(&self) -> u64 {
        self.deadline_closes.load(Relaxed)
    }

    /// Partial-write stall events.
    pub fn write_stalls(&self) -> u64 {
        self.write_stalls.load(Relaxed)
    }
}
