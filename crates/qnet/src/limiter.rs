//! Per-peer token-bucket rate limiting.
//!
//! One bucket per peer IP: capacity `burst` tokens, refilled at `rate`
//! tokens/second. A request costs one token; an empty bucket means the
//! request should be refused (the HTTP driver answers 429 with
//! `Retry-After`). Keying by IP rather than connection stops a client
//! from escaping the limit by opening more keep-alive connections —
//! exactly the population the evented frontend invites.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Mutex;
use std::time::Instant;

/// Floor for the sweep high-water mark: growing past it triggers a sweep
/// of full (i.e. long-idle) buckets, bounding memory under peer churn
/// without a background task.
const SWEEP_THRESHOLD: usize = 4096;

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// The bucket map plus its sweep high-water mark, guarded together.
#[derive(Debug)]
struct Buckets {
    map: HashMap<IpAddr, Bucket>,
    /// Sweep only when the map has *grown* past this since the last
    /// sweep. After a sweep the mark is raised to twice the surviving
    /// (active) bucket count, so a map full of live peers pays the O(n)
    /// retain once per doubling — not on every admit under the global
    /// mutex the loop threads share.
    sweep_at: usize,
}

/// A token-bucket rate limiter keyed by peer IP address.
///
/// Thread-safe; the evented loop threads share one limiter per server.
#[derive(Debug)]
pub struct RateLimiter {
    rate: f64,
    burst: f64,
    buckets: Mutex<Buckets>,
}

impl RateLimiter {
    /// A limiter allowing `rate` requests/second per peer with a burst
    /// capacity of one second's worth (at least 1). `rate <= 0` builds a
    /// limiter that admits everything.
    pub fn new(rate: f64) -> Self {
        RateLimiter {
            rate,
            burst: rate.max(1.0),
            buckets: Mutex::new(Buckets {
                map: HashMap::new(),
                sweep_at: SWEEP_THRESHOLD,
            }),
        }
    }

    /// Whether this limiter enforces anything at all.
    pub fn enabled(&self) -> bool {
        self.rate > 0.0
    }

    /// Takes one token for `peer`; `false` means the request must be
    /// refused.
    pub fn admit(&self, peer: IpAddr) -> bool {
        self.admit_at(peer, Instant::now())
    }

    fn admit_at(&self, peer: IpAddr, now: Instant) -> bool {
        if !self.enabled() {
            return true;
        }
        let mut buckets = self.buckets.lock().expect("rate limiter poisoned");
        if buckets.map.len() > buckets.sweep_at {
            let (rate, burst) = (self.rate, self.burst);
            buckets.map.retain(|_, b| {
                (b.tokens + now.duration_since(b.last).as_secs_f64() * rate) < burst
            });
            buckets.sweep_at = SWEEP_THRESHOLD.max(buckets.map.len() * 2);
        }
        let bucket = buckets.map.entry(peer).or_insert(Bucket {
            tokens: self.burst,
            last: now,
        });
        let refill = now.duration_since(bucket.last).as_secs_f64() * self.rate;
        bucket.tokens = (bucket.tokens + refill).min(self.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Seconds until `peer` would next be admitted (for `Retry-After`),
    /// rounded up to at least 1.
    pub fn retry_after_secs(&self, peer: IpAddr) -> u64 {
        if !self.enabled() {
            return 0;
        }
        let buckets = self.buckets.lock().expect("rate limiter poisoned");
        match buckets.map.get(&peer) {
            Some(b) if b.tokens < 1.0 => (((1.0 - b.tokens) / self.rate).ceil() as u64).max(1),
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use std::time::Duration;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
    }

    #[test]
    fn burst_then_refusal_then_refill() {
        let limiter = RateLimiter::new(2.0);
        let t0 = Instant::now();
        // Burst capacity = 2 tokens: two admits, then refusal.
        assert!(limiter.admit_at(ip(1), t0));
        assert!(limiter.admit_at(ip(1), t0));
        assert!(!limiter.admit_at(ip(1), t0));
        assert!(limiter.retry_after_secs(ip(1)) >= 1);
        // 500ms refills one token at 2/s.
        let t1 = t0 + Duration::from_millis(500);
        assert!(limiter.admit_at(ip(1), t1));
        assert!(!limiter.admit_at(ip(1), t1));
    }

    #[test]
    fn peers_have_independent_buckets() {
        let limiter = RateLimiter::new(1.0);
        let t0 = Instant::now();
        assert!(limiter.admit_at(ip(1), t0));
        assert!(!limiter.admit_at(ip(1), t0));
        assert!(limiter.admit_at(ip(2), t0), "peer 2 has its own bucket");
    }

    #[test]
    fn zero_rate_admits_everything() {
        let limiter = RateLimiter::new(0.0);
        let t0 = Instant::now();
        for _ in 0..1000 {
            assert!(limiter.admit_at(ip(3), t0));
        }
        assert_eq!(limiter.retry_after_secs(ip(3)), 0);
    }

    #[test]
    fn sweep_is_amortized_over_active_buckets() {
        let limiter = RateLimiter::new(1000.0);
        let t0 = Instant::now();
        // Fill past the threshold with *active* (non-full) buckets:
        // every admit below takes a token, so nothing is sweepable.
        for i in 0..(SWEEP_THRESHOLD + 2) {
            let peer = IpAddr::V4(Ipv4Addr::from((i as u32) + 1));
            assert!(limiter.admit_at(peer, t0));
        }
        let (len, sweep_at) = {
            let b = limiter.buckets.lock().unwrap();
            (b.map.len(), b.sweep_at)
        };
        assert_eq!(len, SWEEP_THRESHOLD + 2, "active buckets must survive");
        assert!(
            sweep_at > SWEEP_THRESHOLD && sweep_at >= 2 * (len - 1),
            "the mark must double past the live count so steady-state \
             admits skip the O(n) retain: sweep_at={sweep_at} len={len}"
        );
        // Idle buckets still get reclaimed once growth re-crosses the
        // (raised) mark: after everyone refills to full, new-peer growth
        // past sweep_at evicts them.
        let t1 = t0 + Duration::from_secs(10);
        for i in 0..(sweep_at + 1) {
            let peer = IpAddr::V4(Ipv4Addr::from(0x0a00_0000 + i as u32));
            assert!(limiter.admit_at(peer, t1));
        }
        let len_after = limiter.buckets.lock().unwrap().map.len();
        assert!(
            len_after <= sweep_at + 1,
            "idle buckets from the first wave must be swept: {len_after}"
        );
    }

    #[test]
    fn tokens_cap_at_burst() {
        let limiter = RateLimiter::new(2.0);
        let t0 = Instant::now();
        assert!(limiter.admit_at(ip(4), t0));
        // A long idle period must not bank unbounded tokens.
        let t1 = t0 + Duration::from_secs(3600);
        assert!(limiter.admit_at(ip(4), t1));
        assert!(limiter.admit_at(ip(4), t1));
        assert!(!limiter.admit_at(ip(4), t1));
    }
}
