//! # popqc-net — readiness-driven connection layer for the serving edge
//!
//! `qhttp`'s original acceptor parks one OS thread per connection, so the
//! number of concurrent keep-alive clients is capped at the pool size long
//! before the optimizer is the bottleneck. This crate separates the
//! *many-idle-connections* problem from the *N-optimize-jobs* problem the
//! executor already solves: a small fixed set of event-loop threads drives
//! nonblocking sockets through per-connection state machines
//! (accept → read → dispatch → buffered write → keep-alive or close),
//! and slow handler work runs on a separate dispatcher pool whose
//! completions re-enter the loop through a wakeable mailbox — the loop
//! itself never blocks on a socket or a handler.
//!
//! ## Std-only readiness
//!
//! The workspace is dependency-free and forbids `unsafe`, so there is no
//! `epoll`/`kqueue` binding. Readiness is emulated with an adaptive
//! sweep: each loop thread polls its connections with nonblocking
//! reads/writes, then parks on a loopback `UdpSocket` waker with a small
//! timeout (sub-millisecond when traffic is flowing, a few milliseconds
//! when idle). Cross-thread events — new connections, dispatch
//! completions, shutdown — post to the thread's mailbox and send a wake
//! datagram, so completions are picked up immediately rather than on the
//! next poll tick. The sweep is a drop-in seam for a real readiness
//! syscall later; everything above it (state machines, admission control,
//! dispatch) is already readiness-shaped.
//!
//! ## Admission control
//!
//! The loop is also where overload policy lives, *before* work is queued:
//!
//! * **Connection cap** — the acceptor stops calling `accept()` at
//!   `max_conns`; excess connections queue in the kernel backlog
//!   (backpressure, not RST storms).
//! * **Read deadlines** — a connection that has not *completed* a request
//!   within `read_deadline` is closed. Anchoring the deadline to request
//!   completion (not last byte) kills slowloris trickles and reaps idle
//!   keep-alive connections with one rule.
//! * **Per-peer rate limiting** — [`RateLimiter`] is a token bucket keyed
//!   by peer IP for drivers that answer 429 instead of dispatching.
//! * **Load shedding** — drivers can consult any queue-depth probe and
//!   answer inline (e.g. a 503 with `Retry-After`) on the loop thread,
//!   so shed responses cost microseconds even when the dispatcher pool
//!   is saturated.
//!
//! The crate is protocol-agnostic: a [`Driver`] consumes raw bytes and
//! emits [`Action`]s. `popqc-http` layers its vendored HTTP/1.1 framing
//! on top (`qhttp::evented`).

pub mod limiter;
pub mod metrics;
mod server;
mod stats;

pub use limiter::RateLimiter;
pub use server::{Action, DispatchFn, Driver, DriverFactory, NetConfig, NetServer};
pub use stats::NetStats;
