//! The readiness loop: nonblocking connection sweeps, a gated acceptor,
//! and a dispatcher pool feeding completions back through wakeable
//! mailboxes.
//!
//! Threading model (for a `loop_threads = L`, `dispatch_threads = D`
//! config):
//!
//! * **1 acceptor** — blocking `accept()`, gated by the connection cap:
//!   at `max_conns` it simply stops accepting, so excess connections wait
//!   in the kernel backlog (backpressure) instead of being reset or
//!   pinning threads. New connections are handed round-robin to a loop
//!   thread's mailbox.
//! * **L loop threads** — each owns its connections outright (no shared
//!   connection state, no locks on the data path). A sweep drains the
//!   mailbox, polls each connection with nonblocking reads/writes, runs
//!   the [`Driver`] state machine on new bytes, enforces the read
//!   deadline, then parks on a loopback UDP waker with an adaptive
//!   timeout (spins at sub-millisecond while traffic flows, backs off to
//!   a few milliseconds when idle).
//! * **D dispatcher threads** — run [`Action::Dispatch`] closures (the
//!   blocking handler path: oracle work, coalesced waits). A connection
//!   with a dispatch in flight is *busy*: the loop feeds it no further
//!   input, which both preserves pipeline order and applies natural
//!   backpressure. Completions post `(bytes, keep_alive)` back to the
//!   owning loop's mailbox and fire its waker, so responses leave on the
//!   next sweep, not the next poll tick.

use crate::stats::NetStats;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs, UdpSocket};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Work handed to the dispatcher pool; returns the serialized response
/// bytes and whether the connection should stay open.
pub type DispatchFn = Box<dyn FnOnce() -> (Vec<u8>, bool) + Send + 'static>;

/// What a [`Driver`] wants done after consuming input.
pub enum Action {
    /// Queue bytes that do *not* complete a request (e.g. a
    /// `100 Continue` interim response). Does not reset the read
    /// deadline.
    Interim(Vec<u8>),
    /// A complete response produced inline on the loop thread
    /// (admission refusals, protocol errors). Completes the current
    /// request: resets the read deadline and, with `keep_alive: false`,
    /// closes after the write drains.
    Respond {
        /// Serialized response bytes.
        bytes: Vec<u8>,
        /// Whether the connection stays open for the next request.
        keep_alive: bool,
    },
    /// Run the closure on the dispatcher pool; the connection is busy
    /// (no further reads) until the completion posts back.
    Dispatch(DispatchFn),
    /// Protocol-fatal: close the connection once pending writes drain.
    Close,
}

/// A per-connection protocol state machine.
///
/// The loop calls [`Driver::on_data`] whenever the connection has
/// unconsumed input and is not busy. The driver drains what it can from
/// the *front* of `input` (leaving partial frames in place) and pushes
/// actions in order. After an [`Action::Dispatch`] the driver must stop
/// consuming — remaining pipelined bytes are replayed once the dispatch
/// completes.
pub trait Driver: Send + 'static {
    /// Consume bytes and emit actions.
    fn on_data(&mut self, input: &mut Vec<u8>, out: &mut Vec<Action>);

    /// Called on the event loop once the connection's output buffer has
    /// fully drained to the kernel — i.e. the last queued response has
    /// been handed off. Drivers that account write-flush time (tracing)
    /// hook this; the default is a no-op.
    fn on_output_drained(&mut self) {}
}

/// Builds one [`Driver`] per accepted connection.
pub trait DriverFactory: Send + Sync + 'static {
    /// Called on the acceptor thread for each new connection.
    fn make(&self, peer: SocketAddr) -> Box<dyn Driver>;
}

/// Tuning for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Event-loop threads. Each owns its connections; 4 covers hundreds
    /// of keep-alive clients.
    pub loop_threads: usize,
    /// Dispatcher threads running blocking handler work. Bounds the
    /// number of concurrently *executing* (not open) requests.
    pub dispatch_threads: usize,
    /// Open-connection cap; the acceptor stops accepting at the cap.
    pub max_conns: usize,
    /// A connection must complete a request within this window (measured
    /// from accept or from its previous completed request) or it is
    /// closed — one knob covering both idle keep-alive and slowloris.
    /// The same window bounds write stalls: a peer whose responses make
    /// no write progress for this long (it stopped reading) is closed
    /// too.
    pub read_deadline: Duration,
    /// Per-connection input buffer cap; must exceed the largest request
    /// the protocol driver accepts. Also bounds the *output* backlog a
    /// non-reading peer can accumulate: at `max_buffer` of undrained
    /// responses the connection gets no further reads until the peer
    /// drains some.
    pub max_buffer: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            loop_threads: 4,
            dispatch_threads: 8,
            max_conns: 1024,
            read_deadline: Duration::from_secs(30),
            max_buffer: 32 * 1024 * 1024,
        }
    }
}

/// Sweep read cap per connection so one firehose peer cannot starve the
/// rest of the sweep (the loop re-sweeps immediately while progressing).
const READ_SLICE: usize = 256 * 1024;

/// Adaptive park: start here after a busy sweep…
const PARK_MIN: Duration = Duration::from_micros(500);
/// …and back off to here when idle. Bounds worst-case first-byte
/// latency for data that arrives while parked (no readiness syscall).
const PARK_MAX: Duration = Duration::from_millis(4);

enum Mail {
    NewConn(u64, TcpStream, Box<dyn Driver>),
    Complete {
        conn: u64,
        /// `None` means the dispatch panicked inside qnet (driver bug):
        /// there is nothing sane to send and the connection is dropped.
        /// An explicit variant rather than an empty byte vector, so a
        /// driver whose dispatch legitimately produces no bytes keeps
        /// its connection.
        bytes: Option<Vec<u8>>,
        keep_alive: bool,
    },
    Shutdown,
}

/// Cross-thread postbox: one mailbox + waker address per loop thread.
struct Router {
    mailboxes: Vec<Mutex<VecDeque<Mail>>>,
    waker_addrs: Vec<SocketAddr>,
    wake_tx: UdpSocket,
}

impl Router {
    fn post(&self, idx: usize, mail: Mail) {
        self.mailboxes[idx]
            .lock()
            .expect("mailbox poisoned")
            .push_back(mail);
        self.wake(idx);
    }

    fn wake(&self, idx: usize) {
        let _ = self.wake_tx.send_to(&[1], self.waker_addrs[idx]);
    }
}

/// The connection-cap gate shared by the acceptor (waits) and the loop
/// threads (decrement + notify on close).
struct Gate {
    open: Mutex<usize>,
    changed: Condvar,
}

struct DispatchJob {
    loop_idx: usize,
    conn: u64,
    f: DispatchFn,
}

struct DispatchShared {
    queue: Mutex<VecDeque<DispatchJob>>,
    ready: Condvar,
    stop: AtomicBool,
}

struct Conn {
    stream: TcpStream,
    driver: Box<dyn Driver>,
    input: Vec<u8>,
    output: Vec<u8>,
    out_pos: usize,
    busy: bool,
    closing: bool,
    read_closed: bool,
    stalled: bool,
    last_request: Instant,
    /// Last time the peer made write progress (or the backlog was
    /// empty). A peer that stops reading its responses is reaped when
    /// this goes stale — see the write-stall reap in the sweep.
    last_write: Instant,
}

impl Conn {
    fn queue_output(&mut self, bytes: Vec<u8>) {
        if self.output_drained() {
            self.output = bytes;
            self.out_pos = 0;
            // A fresh backlog starts its stall clock now, not at the
            // last write of some long-gone earlier response.
            self.last_write = Instant::now();
        } else {
            // Compact the already-written prefix so a long-lived
            // connection's buffer holds only unsent bytes.
            if self.out_pos > 0 {
                self.output.drain(..self.out_pos);
                self.out_pos = 0;
            }
            self.output.extend_from_slice(&bytes);
        }
    }

    fn output_drained(&self) -> bool {
        self.out_pos >= self.output.len()
    }

    /// Bytes queued but not yet accepted by the kernel.
    fn pending_output(&self) -> usize {
        self.output.len() - self.out_pos
    }
}

/// A running readiness-driven server. Dropping it shuts everything down.
pub struct NetServer {
    local_addr: SocketAddr,
    stats: Arc<NetStats>,
    router: Arc<Router>,
    gate: Arc<Gate>,
    dispatch: Arc<DispatchShared>,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` and starts the acceptor, loop, and dispatcher
    /// threads.
    pub fn serve<A: ToSocketAddrs>(
        addr: A,
        factory: Arc<dyn DriverFactory>,
        config: NetConfig,
    ) -> std::io::Result<NetServer> {
        NetServer::serve_with_stats(addr, factory, config, Arc::new(NetStats::default()))
    }

    /// [`serve`](Self::serve) with caller-provided counters, so a
    /// protocol driver that refuses requests itself (rate limiting, load
    /// shedding) can record into the same [`NetStats`] the server
    /// updates — one coherent report per server.
    pub fn serve_with_stats<A: ToSocketAddrs>(
        addr: A,
        factory: Arc<dyn DriverFactory>,
        config: NetConfig,
        stats: Arc<NetStats>,
    ) -> std::io::Result<NetServer> {
        crate::metrics::describe_metrics();
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let loop_threads = config.loop_threads.max(1);
        let dispatch_threads = config.dispatch_threads.max(1);
        let max_conns = config.max_conns.max(1);
        let stop = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(Gate {
            open: Mutex::new(0),
            changed: Condvar::new(),
        });
        let dispatch = Arc::new(DispatchShared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
        });

        // One waker socket per loop thread; the router keeps a shared
        // sender. Loopback UDP only — nothing leaves the host.
        let mut wakers = Vec::with_capacity(loop_threads);
        let mut waker_addrs = Vec::with_capacity(loop_threads);
        for _ in 0..loop_threads {
            let sock = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
            waker_addrs.push(sock.local_addr()?);
            wakers.push(sock);
        }
        let router = Arc::new(Router {
            mailboxes: (0..loop_threads)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            waker_addrs,
            wake_tx: UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?,
        });

        let mut threads = Vec::new();
        for (idx, waker) in wakers.into_iter().enumerate() {
            let router = Arc::clone(&router);
            let gate = Arc::clone(&gate);
            let stats = Arc::clone(&stats);
            let dispatch = Arc::clone(&dispatch);
            let cfg = config.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("qnet-loop-{idx}"))
                    .spawn(move || event_loop(idx, waker, router, gate, stats, dispatch, cfg))
                    .expect("spawn loop thread"),
            );
        }
        for idx in 0..dispatch_threads {
            let dispatch = Arc::clone(&dispatch);
            let router = Arc::clone(&router);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("qnet-dispatch-{idx}"))
                    .spawn(move || dispatch_loop(dispatch, router))
                    .expect("spawn dispatch thread"),
            );
        }
        {
            let router = Arc::clone(&router);
            let gate = Arc::clone(&gate);
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            threads.push(
                std::thread::Builder::new()
                    .name("qnet-accept".into())
                    .spawn(move || {
                        accept_loop(
                            listener,
                            factory,
                            router,
                            gate,
                            stats,
                            stop,
                            max_conns,
                            loop_threads,
                        )
                    })
                    .expect("spawn accept thread"),
            );
        }

        Ok(NetServer {
            local_addr,
            stats,
            router,
            gate,
            dispatch,
            stop,
            threads,
        })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// This server's connection counters.
    pub fn stats(&self) -> Arc<NetStats> {
        Arc::clone(&self.stats)
    }

    /// Stops accepting, closes every connection, and joins all threads.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, SeqCst) {
            return;
        }
        // Unblock the acceptor: the cap gate first, then a throwaway
        // connection in case it is parked inside accept().
        self.gate.changed.notify_all();
        let target = match self.local_addr.ip() {
            ip if ip.is_unspecified() => match ip {
                IpAddr::V4(_) => {
                    SocketAddr::new(Ipv4Addr::LOCALHOST.into(), self.local_addr.port())
                }
                IpAddr::V6(_) => {
                    SocketAddr::new(std::net::Ipv6Addr::LOCALHOST.into(), self.local_addr.port())
                }
            },
            _ => self.local_addr,
        };
        let _ = TcpStream::connect_timeout(&target, Duration::from_millis(200));
        for idx in 0..self.router.mailboxes.len() {
            self.router.post(idx, Mail::Shutdown);
        }
        self.dispatch.stop.store(true, SeqCst);
        self.dispatch.ready.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    factory: Arc<dyn DriverFactory>,
    router: Arc<Router>,
    gate: Arc<Gate>,
    stats: Arc<NetStats>,
    stop: Arc<AtomicBool>,
    max_conns: usize,
    loop_threads: usize,
) {
    let mut next_id: u64 = 0;
    loop {
        // Cap gate BEFORE accept: at the cap we stop accepting entirely
        // and let the kernel backlog hold excess connections.
        {
            let mut open = gate.open.lock().expect("gate poisoned");
            while *open >= max_conns && !stop.load(SeqCst) {
                let (guard, _) = gate
                    .changed
                    .wait_timeout(open, Duration::from_millis(100))
                    .expect("gate poisoned");
                open = guard;
            }
        }
        if stop.load(SeqCst) {
            return;
        }
        let (stream, peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                if stop.load(SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if stop.load(SeqCst) {
            return; // the wake-up connection from shutdown()
        }
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        *gate.open.lock().expect("gate poisoned") += 1;
        stats.conn_opened();
        // Driver construction happens here (acceptor thread) so the loop
        // sweep never runs user setup code.
        let driver = factory.make(peer);
        let id = next_id;
        next_id += 1;
        router.post(
            (id as usize) % loop_threads,
            Mail::NewConn(id, stream, driver),
        );
    }
}

fn close_conn(gate: &Gate, stats: &NetStats) {
    {
        let mut open = gate.open.lock().expect("gate poisoned");
        *open = open.saturating_sub(1);
    }
    gate.changed.notify_all();
    stats.conn_closed();
}

fn event_loop(
    idx: usize,
    waker: UdpSocket,
    router: Arc<Router>,
    gate: Arc<Gate>,
    stats: Arc<NetStats>,
    dispatch: Arc<DispatchShared>,
    cfg: NetConfig,
) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut scratch = vec![0u8; 16 * 1024];
    let mut actions: Vec<Action> = Vec::new();
    let mut dead: Vec<u64> = Vec::new();
    let mut park = PARK_MIN;
    let mut wake_buf = [0u8; 8];

    'outer: loop {
        // 1. Mailbox: new connections, dispatch completions, shutdown.
        let mail: Vec<Mail> = {
            let mut mbox = router.mailboxes[idx].lock().expect("mailbox poisoned");
            mbox.drain(..).collect()
        };
        for m in mail {
            match m {
                Mail::NewConn(id, stream, driver) => {
                    conns.insert(
                        id,
                        Conn {
                            stream,
                            driver,
                            input: Vec::new(),
                            output: Vec::new(),
                            out_pos: 0,
                            busy: false,
                            closing: false,
                            read_closed: false,
                            stalled: false,
                            last_request: Instant::now(),
                            last_write: Instant::now(),
                        },
                    );
                }
                Mail::Complete {
                    conn,
                    bytes,
                    keep_alive,
                } => {
                    if let Some(c) = conns.get_mut(&conn) {
                        c.busy = false;
                        c.last_request = Instant::now();
                        match bytes {
                            Some(bytes) => c.queue_output(bytes),
                            // Dispatch panicked inside qnet: nothing sane
                            // to send; drop the connection.
                            None => c.closing = true,
                        }
                        if !keep_alive {
                            c.closing = true;
                        }
                        // Pipelined bytes that arrived with the previous
                        // request are replayed now.
                        if !c.closing && !c.input.is_empty() {
                            run_driver(conn, c, &dispatch, idx, &mut actions);
                        }
                    }
                }
                Mail::Shutdown => break 'outer,
            }
        }

        // 2. Sweep every connection: read → driver → flush → reap.
        let now = Instant::now();
        let mut progress = false;
        for (&id, c) in conns.iter_mut() {
            // Read while the driver is ready for more input. A peer
            // with `max_buffer` of undrained responses gets no further
            // reads (pipelining backpressure): the output backlog stays
            // bounded instead of growing with every pipelined request
            // the peer refuses to read the answer to.
            if !c.busy
                && !c.closing
                && !c.read_closed
                && c.input.len() < cfg.max_buffer
                && c.pending_output() < cfg.max_buffer
            {
                let mut got = 0usize;
                loop {
                    match c.stream.read(&mut scratch) {
                        Ok(0) => {
                            c.read_closed = true;
                            break;
                        }
                        Ok(n) => {
                            c.input.extend_from_slice(&scratch[..n]);
                            got += n;
                            if got >= READ_SLICE || c.input.len() >= cfg.max_buffer {
                                break;
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            c.read_closed = true;
                            c.closing = true;
                            break;
                        }
                    }
                }
                if got > 0 {
                    progress = true;
                    run_driver(id, c, &dispatch, idx, &mut actions);
                }
            }

            // Flush buffered output without blocking.
            if !c.output_drained() {
                loop {
                    match c.stream.write(&c.output[c.out_pos..]) {
                        Ok(0) => {
                            c.closing = true;
                            c.output.clear();
                            c.out_pos = 0;
                            break;
                        }
                        Ok(n) => {
                            c.out_pos += n;
                            c.last_write = now;
                            progress = true;
                            if c.output_drained() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            if !c.stalled {
                                c.stalled = true;
                                stats.write_stall();
                            }
                            break;
                        }
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            c.closing = true;
                            c.output.clear();
                            c.out_pos = 0;
                            break;
                        }
                    }
                }
                if c.output_drained() {
                    c.output.clear();
                    c.out_pos = 0;
                    c.stalled = false;
                    c.driver.on_output_drained();
                }
            }

            // Reap: explicit close after flush, or a peer that went away.
            if c.closing && c.output_drained() && !c.busy {
                dead.push(id);
                continue;
            }
            if c.read_closed && !c.busy && c.input.is_empty() && c.output_drained() {
                dead.push(id);
                continue;
            }
            // Read deadline: anchored to the last *completed* request, so
            // both a slowloris trickle and an idle keep-alive connection
            // hit it. Connections waiting on a dispatched job or still
            // draining a response are exempt.
            if !c.busy
                && c.output_drained()
                && now.duration_since(c.last_request) > cfg.read_deadline
            {
                stats.deadline_close();
                dead.push(id);
                continue;
            }
            // Write-stall deadline: every reap above exempts a
            // connection with undrained output, so a peer that sends
            // requests and then never reads the responses (kernel send
            // buffer full, writes return WouldBlock) would otherwise
            // pin a max_conns slot forever. No write progress for a
            // whole read_deadline means the peer is gone or hostile;
            // reap it even mid-dispatch (the completion for a removed
            // connection is dropped harmlessly).
            if !c.output_drained() && now.duration_since(c.last_write) > cfg.read_deadline {
                stats.deadline_close();
                dead.push(id);
            }
        }
        for id in dead.drain(..) {
            if conns.remove(&id).is_some() {
                close_conn(&gate, &stats);
            }
        }

        // 3. Park. Progress resets the backoff; otherwise double it up
        // to PARK_MAX. A waker datagram (completion, new conn) ends the
        // park early.
        if progress {
            park = PARK_MIN;
        } else {
            park = (park * 2).min(PARK_MAX);
            let _ = waker.set_read_timeout(Some(park));
            let _ = waker.recv_from(&mut wake_buf);
        }
    }

    // Shutdown: every owned connection closes now.
    for (_, _c) in conns.drain() {
        close_conn(&gate, &stats);
    }
}

/// Runs the driver over the connection's buffered input and applies the
/// resulting actions.
fn run_driver(
    id: u64,
    c: &mut Conn,
    dispatch: &DispatchShared,
    loop_idx: usize,
    actions: &mut Vec<Action>,
) {
    debug_assert!(actions.is_empty());
    c.driver.on_data(&mut c.input, actions);
    for action in actions.drain(..) {
        match action {
            Action::Interim(bytes) => c.queue_output(bytes),
            Action::Respond { bytes, keep_alive } => {
                c.queue_output(bytes);
                c.last_request = Instant::now();
                if !keep_alive {
                    c.closing = true;
                }
            }
            Action::Dispatch(f) => {
                c.busy = true;
                c.last_request = Instant::now();
                let mut queue = dispatch.queue.lock().expect("dispatch queue poisoned");
                queue.push_back(DispatchJob {
                    loop_idx,
                    conn: id,
                    f,
                });
                drop(queue);
                dispatch.ready.notify_one();
            }
            Action::Close => c.closing = true,
        }
    }
}

fn dispatch_loop(shared: Arc<DispatchShared>, router: Arc<Router>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("dispatch queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.stop.load(SeqCst) {
                    return;
                }
                queue = shared.ready.wait(queue).expect("dispatch queue poisoned");
            }
        };
        // A panic here is a driver bug (drivers wrap handler panics
        // themselves); answer by closing the connection.
        let (bytes, keep_alive) = match catch_unwind(AssertUnwindSafe(|| (job.f)())) {
            Ok((bytes, keep_alive)) => (Some(bytes), keep_alive),
            Err(_) => (None, false),
        };
        router.post(
            job.loop_idx,
            Mail::Complete {
                conn: job.conn,
                bytes,
                keep_alive,
            },
        );
    }
}
