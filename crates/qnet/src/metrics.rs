//! Process-wide `popqc_net_*` metric families.
//!
//! These mirror the per-server [`NetStats`](crate::NetStats) counters
//! into the `popqc-obs` registry so `GET /v1/metrics` exposes the
//! connection layer next to the job, cache, and executor series. When
//! several servers run in one process (e.g. the differential test suite)
//! the global series aggregate across them; per-server numbers come from
//! `NetStats`.

/// Connections currently open across all servers in this process.
pub fn connections_open() -> &'static qobs::Gauge {
    qobs::static_gauge!(
        "popqc_net_connections_open",
        "Connections currently open on the evented frontend."
    )
}

/// Lifetime accepted-connection count.
pub fn connections_total() -> &'static qobs::Counter {
    qobs::static_counter!(
        "popqc_net_connections_total",
        "Connections accepted by the evented frontend."
    )
}

/// Requests refused by queue-depth load shedding.
pub fn shed_total() -> &'static qobs::Counter {
    qobs::static_counter!(
        "popqc_net_shed_total",
        "Requests shed at the edge (503 + Retry-After) because the job \
         queue exceeded the configured depth."
    )
}

/// Requests refused by the per-peer token bucket.
pub fn rate_limited_total() -> &'static qobs::Counter {
    qobs::static_counter!(
        "popqc_net_rate_limited_total",
        "Requests refused with 429 by the per-peer rate limiter."
    )
}

/// Connections closed by the read deadline.
pub fn deadline_closes_total() -> &'static qobs::Counter {
    qobs::static_counter!(
        "popqc_net_deadline_closes_total",
        "Connections closed for not completing a request within the read \
         deadline (idle keep-alive or slowloris)."
    )
}

/// Partial-write stall events.
pub fn write_stalls_total() -> &'static qobs::Counter {
    qobs::static_counter!(
        "popqc_net_write_stalls_total",
        "Responses that could not be written in one sweep because the \
         peer was not draining its receive window."
    )
}

/// Registers every `popqc_net_*` family so a scrape shows the full
/// inventory (with typed headers) before the first connection arrives.
pub fn describe_metrics() {
    connections_open();
    connections_total();
    shed_total();
    rate_limited_total();
    deadline_closes_total();
    write_stalls_total();
}
