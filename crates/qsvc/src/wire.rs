//! The remote result-store wire protocol: small, versioned,
//! length-prefixed frames over TCP.
//!
//! One frame is:
//!
//! ```text
//! +-----------------+-----------+----------+------------------+
//! | length: u32 BE  | version:  | opcode:  | payload          |
//! | (of the rest)   | u8 (= 1)  | u8       | (length-2 bytes) |
//! +-----------------+-----------+----------+------------------+
//! ```
//!
//! | opcode | dir | payload |
//! |--------|-----|---------|
//! | `GET    0x01` | → | key document (JSON) |
//! | `PUT    0x02` | → | entry document (JSON, [`crate::store::encode_entry`]) |
//! | `REMOVE 0x03` | → | key document (JSON) |
//! | `CLEAR  0x04` | → | empty |
//! | `STATS  0x05` | → | empty |
//! | `PING   0x06` | → | empty |
//! | `HIT    0x81` | ← | entry document (JSON) |
//! | `MISS   0x82` | ← | empty |
//! | `ACK    0x83` | ← | 1 byte (`REMOVE`: 1 = removed; `PUT`: empty) |
//! | `COUNT  0x84` | ← | u64 BE (entries removed by `CLEAR`) |
//! | `REPORT 0x85` | ← | `qapi::CacheReport` document (JSON) |
//! | `PONG   0x86` | ← | empty |
//! | `ERROR  0xC0` | ← | UTF-8 diagnostic |
//!
//! The key document repeats every field of [`JobKey`] plus the oracle
//! version, and the PUT payload is byte-identical to a `DiskStore`
//! `.entry` file — `store_format` and `oracle_version` travel end to
//! end, so the server (and every other replica reading through it) can
//! refuse stale entries exactly like a local disk tier does.
//!
//! Robustness rules, enforced by [`read_frame`]:
//! * a declared length above [`MAX_FRAME_BYTES`] is refused **before any
//!   allocation** (a hostile or corrupt peer cannot OOM the reader);
//! * a length too small for the version+opcode header is a [`WireError::Runt`];
//! * EOF cleanly between frames is [`WireError::Closed`], EOF mid-frame
//!   is [`WireError::Truncated`] — callers treat both as "drop the
//!   connection", never as data.

use crate::service::JobKey;
use qcir::Fingerprint;
use serde_json::{json, Value};
use std::io::{self, Read, Write};

/// Protocol version byte; bump on any frame-layout change. A reader
/// refuses frames from any other version, so mixed-version fleets fail
/// closed (to a local miss) instead of misparsing.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard ceiling on one frame's declared length (version + opcode +
/// payload). Checked against the length prefix *before* the payload
/// buffer is allocated.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Frame opcodes: requests in the low range, responses with the high bit
/// set, `ERROR` on its own. See the module docs for the payload table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Op {
    Get = 0x01,
    Put = 0x02,
    Remove = 0x03,
    Clear = 0x04,
    Stats = 0x05,
    Ping = 0x06,
    Hit = 0x81,
    Miss = 0x82,
    Ack = 0x83,
    Count = 0x84,
    Report = 0x85,
    Pong = 0x86,
    Error = 0xC0,
}

impl Op {
    fn from_u8(b: u8) -> Option<Op> {
        Some(match b {
            0x01 => Op::Get,
            0x02 => Op::Put,
            0x03 => Op::Remove,
            0x04 => Op::Clear,
            0x05 => Op::Stats,
            0x06 => Op::Ping,
            0x81 => Op::Hit,
            0x82 => Op::Miss,
            0x83 => Op::Ack,
            0x84 => Op::Count,
            0x85 => Op::Report,
            0x86 => Op::Pong,
            0xC0 => Op::Error,
            _ => return None,
        })
    }

    /// The label this opcode carries in metrics and logs.
    pub fn name(self) -> &'static str {
        match self {
            Op::Get => "get",
            Op::Put => "put",
            Op::Remove => "remove",
            Op::Clear => "clear",
            Op::Stats => "stats",
            Op::Ping => "ping",
            Op::Hit => "hit",
            Op::Miss => "miss",
            Op::Ack => "ack",
            Op::Count => "count",
            Op::Report => "report",
            Op::Pong => "pong",
            Op::Error => "error",
        }
    }
}

/// One decoded frame: opcode + raw payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// What the frame asks for or answers with.
    pub op: Op,
    /// Opcode-specific payload (see the module table).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with no payload.
    pub fn empty(op: Op) -> Frame {
        Frame {
            op,
            payload: Vec::new(),
        }
    }

    /// A frame carrying `payload`.
    pub fn new(op: Op, payload: Vec<u8>) -> Frame {
        Frame { op, payload }
    }

    /// Serializes to the on-wire byte layout (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let len = (self.payload.len() + 2) as u32;
        let mut buf = Vec::with_capacity(self.payload.len() + 6);
        buf.extend_from_slice(&len.to_be_bytes());
        buf.push(PROTOCOL_VERSION);
        buf.push(self.op as u8);
        buf.extend_from_slice(&self.payload);
        buf
    }

    /// Decodes exactly one frame from `buf` (trailing bytes are an
    /// error — the streaming reader is [`read_frame`]).
    pub fn decode(buf: &[u8]) -> Result<Frame, WireError> {
        let mut cursor = io::Cursor::new(buf);
        let frame = read_frame(&mut cursor)?;
        if (cursor.position() as usize) != buf.len() {
            return Err(WireError::Truncated);
        }
        Ok(frame)
    }
}

/// Why a frame could not be read or understood. Every variant means the
/// same thing operationally — drop the connection and (client side)
/// degrade to a local miss — but the split keeps diagnostics and tests
/// precise.
#[derive(Debug)]
pub enum WireError {
    /// EOF cleanly on a frame boundary: the peer is done, not broken.
    Closed,
    /// EOF (or short buffer) in the middle of a frame.
    Truncated,
    /// Declared length exceeds [`MAX_FRAME_BYTES`]; refused before
    /// allocating the payload buffer.
    Oversized(u32),
    /// Declared length too small to hold the version + opcode header.
    Runt(u32),
    /// Version byte is not [`PROTOCOL_VERSION`].
    Version(u8),
    /// Opcode byte not in the table.
    UnknownOpcode(u8),
    /// A payload that does not parse as its opcode requires.
    Malformed(&'static str),
    /// The underlying stream failed (timeout, reset, ...).
    Io(io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Oversized(len) => {
                write!(
                    f,
                    "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"
                )
            }
            WireError::Runt(len) => write!(f, "frame length {len} below the 2-byte header"),
            WireError::Version(v) => {
                write!(
                    f,
                    "protocol version {v} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            WireError::UnknownOpcode(b) => write!(f, "unknown opcode 0x{b:02X}"),
            WireError::Malformed(what) => write!(f, "malformed {what} payload"),
            WireError::Io(e) => write!(f, "stream error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Reads one frame off `r`, enforcing the robustness rules in the module
/// docs. Blocks per the stream's own read timeout; a timeout surfaces as
/// [`WireError::Io`].
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    // The length prefix is read byte-wise so EOF *before the first byte*
    // (the peer hung up between frames: `Closed`) is distinguishable
    // from EOF *inside* the prefix (a cut mid-frame: `Truncated`) —
    // `read_exact` alone cannot tell the two apart.
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    WireError::Closed
                } else {
                    WireError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversized(len));
    }
    if len < 2 {
        return Err(WireError::Runt(len));
    }
    let mut body = vec![0u8; len as usize];
    match r.read_exact(&mut body) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(WireError::Truncated),
        Err(e) => return Err(WireError::Io(e)),
    }
    if body[0] != PROTOCOL_VERSION {
        return Err(WireError::Version(body[0]));
    }
    let op = Op::from_u8(body[1]).ok_or(WireError::UnknownOpcode(body[1]))?;
    Ok(Frame {
        op,
        payload: body.split_off(2),
    })
}

/// Writes one frame to `w` and flushes it.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()
}

/// Serializes a `(key, oracle_version)` lookup as the GET/REMOVE payload.
pub fn encode_key(key: &JobKey, oracle_version: &str) -> Vec<u8> {
    encode_key_traced(key, oracle_version, None, false)
}

/// [`encode_key`], optionally stamping the client's trace id onto the
/// key document so the `popqc cached` server's spans join the same
/// trace. The fields are additive: [`decode_key`] looks fields up by
/// name and ignores unknown ones, so traced GETs interoperate with
/// pre-trace servers (and vice versa) without a protocol version bump.
pub fn encode_key_traced(
    key: &JobKey,
    oracle_version: &str,
    trace_id: Option<&str>,
    trace_forced: bool,
) -> Vec<u8> {
    let mut doc = json!({
        "fingerprint": key.fingerprint.to_hex().as_str(),
        "oracle_id": key.oracle_id.as_str(),
        "omega": key.config.omega as u64,
        "max_rounds": key.config.max_rounds as u64,
        "oracle_version": oracle_version,
    });
    if let (Some(id), Value::Object(fields)) = (trace_id, &mut doc) {
        fields.push(("trace_id".to_string(), json!(id)));
        if trace_forced {
            fields.push(("trace_forced".to_string(), json!(true)));
        }
    }
    serde_json::to_string(&doc)
        .expect("serialize key document")
        .into_bytes()
}

/// Pulls the optional trace propagation fields off a GET payload:
/// `(trace_id, trace_forced)`. Absent or unparseable fields read as
/// "untraced" — propagation is best-effort and never fails a lookup.
pub fn decode_key_trace(payload: &[u8]) -> (Option<u64>, bool) {
    let Ok(text) = std::str::from_utf8(payload) else {
        return (None, false);
    };
    let Ok(doc) = serde_json::from_str(text) else {
        return (None, false);
    };
    let id = doc
        .get("trace_id")
        .and_then(Value::as_str)
        .and_then(qobs::trace::parse_id);
    let forced = doc
        .get("trace_forced")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    (id, forced)
}

/// Parses a GET/REMOVE payload back into `(key, oracle_version)`.
pub fn decode_key(payload: &[u8]) -> Result<(JobKey, String), WireError> {
    let malformed = WireError::Malformed("key");
    let text = std::str::from_utf8(payload).map_err(|_| WireError::Malformed("key"))?;
    let doc: Value = serde_json::from_str(text).map_err(|_| WireError::Malformed("key"))?;
    let field = |name: &str| doc.get(name).and_then(Value::as_str);
    let num = |name: &str| doc.get(name).and_then(Value::as_u64);
    let fp_hex = field("fingerprint").ok_or(WireError::Malformed("key"))?;
    if fp_hex.len() != 32 {
        return Err(malformed);
    }
    let fingerprint = u128::from_str_radix(fp_hex, 16)
        .map(Fingerprint)
        .map_err(|_| WireError::Malformed("key"))?;
    let key = JobKey {
        fingerprint,
        oracle_id: field("oracle_id")
            .ok_or(WireError::Malformed("key"))?
            .to_string(),
        config: popqc_core::PopqcConfig {
            omega: num("omega").ok_or(WireError::Malformed("key"))? as usize,
            max_rounds: num("max_rounds").ok_or(WireError::Malformed("key"))? as usize,
        },
    };
    let version = field("oracle_version")
        .ok_or(WireError::Malformed("key"))?
        .to_string();
    Ok((key, version))
}
