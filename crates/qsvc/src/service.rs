//! The batch optimization service: a fixed worker pool over the POPQC
//! engine with memoization and per-request oracle selection.
//!
//! Architecture (one process, no network — the HTTP frontend wraps this
//! API without this crate knowing about sockets):
//!
//! ```text
//!  submit/submit_batch ──▶ FIFO queue ──▶ N worker threads
//!        │     │                              │  (each scopes a
//!        │     └─ OracleRegistry lookup       │   threads-per-job width on
//!        │ store probe                        ▼   the shared qexec pool)
//!        ▼                                 optimize_circuit_observed
//!  Arc<dyn ResultStore> ◀──── put ────────────┘
//!   (memory │ disk │ tiered │ null)
//!        │
//!        └────────▶ JobHandle::wait
//! ```
//!
//! * **Outer parallelism** — `workers` jobs run concurrently, one per
//!   worker thread.
//! * **Inner parallelism** — each worker enters the engine under a
//!   [`qexec::with_width`] scope of `threads_per_job`. The engine's
//!   parallel operations all run on the shared `popqc-exec`
//!   work-stealing pool (persistent threads, no per-operation
//!   spawning), which the service pre-grows to `workers ×
//!   threads_per_job` at construction so every job's budget is
//!   provisioned even when all workers run at once. The width scopes a
//!   job's *splitting granularity* (how many leaf tasks its rounds
//!   produce), not a hard thread partition: the pool is
//!   work-conserving, so capacity idle in one job's rounds is lent to
//!   another's instead of sitting parked. The pool's counters are
//!   surfaced via [`ServiceStats::executor`].
//! * **Per-request oracles** — the service owns an [`OracleRegistry`] of
//!   named `Arc<dyn SegmentOracle<Gate>>` entries; every submission picks
//!   an oracle (and engine config) per job, so one running service answers
//!   mixed-oracle traffic. The registry id is the cache key's oracle id.
//! * **Memoization** — results live in a pluggable
//!   [`ResultStore`] (memory LRU by default;
//!   disk and tiered backends survive restarts) keyed by
//!   `(circuit fingerprint, oracle id, engine config)`. Identical
//!   resubmissions are answered from cache with zero oracle calls, and the
//!   per-job [`JobResult::cache_hit`] flag plus the service-level counters
//!   make hits auditable end to end.
//! * **In-flight coalescing** — identical jobs submitted while a duplicate
//!   is still queued or running attach as waiters to that one computation
//!   (per-key in-flight table) instead of each computing; the finishing
//!   worker fulfils all of them. Coalesced jobs are flagged via
//!   [`JobResult::coalesced`] and counted in [`ServiceStats::coalesced`].
//! * **Structured failures** — every way a job can fail is a
//!   [`ServiceError`] variant, not a panic or an ad-hoc string: unknown
//!   oracle ids are refused at submission, and a panic in the oracle (a
//!   client-implemented trait) is caught as
//!   [`ServiceError::OracleFailure`] — the lead job completes with
//!   [`JobResult::error`] set, coalesced waiters are re-enqueued as
//!   independent retries, and the worker thread survives.

use crate::cache::CacheStats;
use crate::metrics;
use crate::segcache::{SegCacheStats, SegmentCacheLayer};
use crate::store::{CachedRun, MemoryStore, ResultStore, StoreStats};
use popqc_core::{optimize_circuit_cached, PopqcConfig, PopqcStats, RoundObserver, RoundRecord};
use qcir::{Circuit, Fingerprint, Gate};
use qoracle::{GateCount, RuleBasedOptimizer, SearchOptimizer, SegmentOracle, StructuralOptimizer};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A shared, dynamically dispatched segment oracle — the unit the
/// [`OracleRegistry`] stores and every queued job carries.
pub type DynOracle = Arc<dyn SegmentOracle<Gate> + Send + Sync>;

/// Everything that can go wrong in the service, as a closed enum instead
/// of panics or ad-hoc strings. Convert to the wire taxonomy with
/// [`to_api_error`](ServiceError::to_api_error).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The requested oracle id is not in the registry. Carries the
    /// requested id and the ids that are available.
    UnknownOracle {
        /// The id the request asked for.
        requested: String,
        /// Every id the registry currently holds.
        available: Vec<String>,
    },
    /// An oracle id was registered twice.
    DuplicateOracle(String),
    /// The oracle panicked while optimizing; the job failed and nothing
    /// was cached — resubmitting retries the computation.
    OracleFailure(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownOracle {
                requested,
                available,
            } => write!(
                f,
                "unknown oracle `{requested}` (available: {})",
                available.join(", ")
            ),
            ServiceError::DuplicateOracle(id) => {
                write!(f, "oracle id `{id}` is already registered")
            }
            ServiceError::OracleFailure(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl ServiceError {
    /// The canonical [`qapi::ApiError`] for this failure (which fixes the
    /// HTTP status every frontend must answer with).
    pub fn to_api_error(&self) -> qapi::ApiError {
        match self {
            ServiceError::UnknownOracle { .. } => qapi::ApiError::UnknownOracle(self.to_string()),
            ServiceError::DuplicateOracle(_) => qapi::ApiError::InvalidConfig(self.to_string()),
            ServiceError::OracleFailure(_) => qapi::ApiError::OracleFailure(self.to_string()),
        }
    }
}

struct RegisteredOracle {
    id: String,
    description: String,
    /// The oracle's persistence-invalidation tag
    /// ([`SegmentOracle::version`]), captured once at registration so the
    /// disk tier can stamp (and later verify) entries without re-asking
    /// the oracle on every probe.
    version: String,
    oracle: DynOracle,
}

/// A named set of oracles the service dispatches over per request.
///
/// The registry id — not [`SegmentOracle::name`] — is the cache key's
/// oracle id, so two entries may wrap the same oracle type with different
/// parameters without sharing cache entries, and the ids are what
/// `GET /v1/oracles` advertises to clients.
pub struct OracleRegistry {
    entries: Vec<RegisteredOracle>,
    default_id: String,
}

impl OracleRegistry {
    /// A registry holding only `oracle`, registered and defaulted under
    /// its [`SegmentOracle::name`]. The smallest useful registry — what
    /// single-oracle deployments and most tests want.
    pub fn single(oracle: impl SegmentOracle<Gate> + Send + 'static) -> OracleRegistry {
        let id = oracle.name().to_string();
        OracleRegistry::single_with_id(oracle, id)
    }

    /// [`single`](Self::single) with an explicit registry id, for oracles
    /// whose name does not pin their behaviour (custom-parameterized
    /// pipelines).
    pub fn single_with_id(
        oracle: impl SegmentOracle<Gate> + Send + 'static,
        id: impl Into<String>,
    ) -> OracleRegistry {
        let id = id.into();
        OracleRegistry {
            entries: vec![RegisteredOracle {
                id: id.clone(),
                description: "single-oracle registry".to_string(),
                version: oracle.version(),
                oracle: Arc::new(oracle),
            }],
            default_id: id,
        }
    }

    /// The workspace's built-in oracles: `rule_based` (the paper's primary
    /// VOQC-style configuration, the default), `rule_single_pass` (one
    /// bounded pipeline pass — the whole-circuit baseline ablation), and
    /// `search` (Quartz-style bounded best-first search on gate count).
    pub fn builtin() -> OracleRegistry {
        let mut registry =
            OracleRegistry::single_with_id(RuleBasedOptimizer::oracle(), "rule_based");
        registry.entries[0].description =
            "Nam-style rule pipeline iterated to fixpoint (the paper's primary oracle)".to_string();
        registry
            .register(
                "rule_single_pass",
                "one bounded pass of the rule pipeline (whole-circuit baseline ablation)",
                Arc::new(RuleBasedOptimizer::modern_baseline()),
            )
            .expect("builtin ids are distinct");
        registry
            .register(
                "search",
                "bounded best-first search over verified rewrites, minimizing gate count",
                Arc::new(SearchOptimizer::new(GateCount, 2000)),
            )
            .expect("builtin ids are distinct");
        registry
            .register(
                "structural",
                "value-blind self-inverse cancellation to fixpoint (angle-independent: \
                 parameterized resubmissions reuse segment-cache templates)",
                Arc::new(StructuralOptimizer::new()),
            )
            .expect("builtin ids are distinct");
        registry
    }

    /// Registers `oracle` under `id`. Fails with
    /// [`ServiceError::DuplicateOracle`] if the id is taken.
    pub fn register(
        &mut self,
        id: impl Into<String>,
        description: impl Into<String>,
        oracle: DynOracle,
    ) -> Result<(), ServiceError> {
        let id = id.into();
        if self.contains(&id) {
            return Err(ServiceError::DuplicateOracle(id));
        }
        self.entries.push(RegisteredOracle {
            id,
            description: description.into(),
            version: oracle.version(),
            oracle,
        });
        Ok(())
    }

    /// Makes `id` the oracle used when a request names none. Fails with
    /// [`ServiceError::UnknownOracle`] if `id` is not registered.
    pub fn set_default(&mut self, id: &str) -> Result<(), ServiceError> {
        if !self.contains(id) {
            return Err(self.unknown(id));
        }
        self.default_id = id.to_string();
        Ok(())
    }

    /// Resolves an optional request id (`None` = the default) to the
    /// registry id plus the oracle itself.
    pub fn resolve(&self, id: Option<&str>) -> Result<(String, DynOracle), ServiceError> {
        self.resolve_versioned(id)
            .map(|(id, _version, oracle)| (id, oracle))
    }

    /// [`resolve`](Self::resolve) plus the oracle's persistence version
    /// tag — what the store layer stamps disk entries with.
    pub fn resolve_versioned(
        &self,
        id: Option<&str>,
    ) -> Result<(String, String, DynOracle), ServiceError> {
        let id = id.unwrap_or(&self.default_id);
        self.entries
            .iter()
            .find(|e| e.id == id)
            .map(|e| (e.id.clone(), e.version.clone(), Arc::clone(&e.oracle)))
            .ok_or_else(|| self.unknown(id))
    }

    /// The oracle registered under `id`, if any.
    pub fn get(&self, id: &str) -> Option<DynOracle> {
        self.entries
            .iter()
            .find(|e| e.id == id)
            .map(|e| Arc::clone(&e.oracle))
    }

    /// Whether `id` is registered.
    pub fn contains(&self, id: &str) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// The id used when a request names no oracle.
    pub fn default_id(&self) -> &str {
        &self.default_id
    }

    /// Registered ids, in registration order.
    pub fn ids(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.id.as_str()).collect()
    }

    /// Registered oracle count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The registry contents as the `GET /v1/oracles` DTO.
    pub fn infos(&self) -> Vec<qapi::OracleInfo> {
        self.entries
            .iter()
            .map(|e| qapi::OracleInfo {
                id: e.id.clone(),
                description: e.description.clone(),
                default: e.id == self.default_id,
            })
            .collect()
    }

    fn unknown(&self, requested: &str) -> ServiceError {
        ServiceError::UnknownOracle {
            requested: requested.to_string(),
            available: self.entries.iter().map(|e| e.id.clone()).collect(),
        }
    }
}

/// One typed submission: the circuit plus its per-job oracle selection
/// and engine config. The `None` oracle means the registry default.
#[derive(Clone)]
pub struct JobRequest {
    /// The circuit to optimize.
    pub circuit: Circuit,
    /// Oracle id from the registry; `None` selects the default.
    pub oracle: Option<String>,
    /// Engine parameters for this job.
    pub config: PopqcConfig,
}

impl JobRequest {
    /// A request for the registry's default oracle.
    pub fn new(circuit: Circuit, config: PopqcConfig) -> JobRequest {
        JobRequest {
            circuit,
            oracle: None,
            config,
        }
    }

    /// A request pinned to a specific oracle id.
    pub fn with_oracle(
        circuit: Circuit,
        oracle: impl Into<String>,
        config: PopqcConfig,
    ) -> JobRequest {
        JobRequest {
            circuit,
            oracle: Some(oracle.into()),
            config,
        }
    }
}

/// The memoization key: everything that determines an optimization result.
///
/// The engine is deterministic, so `(structural input, oracle, config)`
/// fully determines `(output circuit, call counts)` — timing fields in the
/// cached stats are from the original run.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct JobKey {
    /// Structural fingerprint of the input circuit.
    pub fingerprint: Fingerprint,
    /// The registry id the job ran under (two registry entries never share
    /// cache entries, even when they wrap the same oracle type).
    pub oracle_id: String,
    /// Engine parameters the result depends on.
    pub config: PopqcConfig,
}

/// Service sizing knobs.
///
/// Defaults (`0`) resolve through the workspace-wide thread-count
/// precedence ([`qexec::resolve_threads`]): `POPQC_NUM_THREADS` >
/// explicit config > available parallelism.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads (concurrent jobs). `0` = the resolved core budget.
    pub workers: usize,
    /// Engine parallelism each job runs at (a `qexec` width scope on the
    /// shared pool, provisioned as `workers × threads_per_job` pool
    /// threads). `0` = `max(1, cores / workers)`, dividing the resolved
    /// core budget across the workers. Note `POPQC_NUM_THREADS` pins
    /// each *per-operation width* (it outranks this knob, like every
    /// explicit width — see [`qexec::resolve_threads`]); it does not cap
    /// the `workers ×` product, which is the `workers` knob's job.
    pub threads_per_job: usize,
    /// Total result-cache entries before LRU eviction.
    pub cache_capacity: usize,
    /// Cache shards (lock granularity).
    pub cache_shards: usize,
    /// Total *segment*-cache entries before LRU eviction (see
    /// [`crate::segcache`]). `0` disables the segment cache entirely —
    /// the library default, so embedding services opt in; the `popqc`
    /// CLI enables it by default (`--seg-cache-capacity`).
    pub seg_cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 0,
            threads_per_job: 0,
            cache_capacity: 1024,
            cache_shards: 16,
            seg_cache_capacity: 0,
        }
    }
}

impl ServiceConfig {
    fn resolved(&self) -> (usize, usize) {
        // The one documented precedence, shared with qexec and the rayon
        // shim facade: POPQC_NUM_THREADS > explicit width > available
        // parallelism. Before this lived in qexec, every call site decided
        // "available threads" ad hoc.
        let cores = qexec::resolve_threads(None);
        let workers = if self.workers == 0 {
            cores
        } else {
            self.workers
        };
        let threads_per_job = if self.threads_per_job == 0 {
            (cores / workers).max(1)
        } else {
            self.threads_per_job
        };
        (workers, threads_per_job)
    }
}

/// A finished job: the optimized circuit plus full accounting.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The optimized circuit (bit-identical to a direct
    /// `optimize_circuit` call with the same inputs).
    pub circuit: Circuit,
    /// Engine statistics. For cache hits these are the *original* run's
    /// stats; no new oracle work happened.
    pub stats: PopqcStats,
    /// Whether this result was served from the cache.
    pub cache_hit: bool,
    /// Whether this result came from attaching to an identical job that was
    /// already queued or running when this one was submitted (in-flight
    /// coalescing). Coalesced results are also counted as cache hits.
    pub coalesced: bool,
    /// `Some` when the job failed instead of producing a result (the
    /// oracle panicked mid-computation). `circuit` is then the *input*
    /// circuit unchanged, `stats` is zeroed, and nothing was cached —
    /// resubmitting retries the computation.
    pub error: Option<ServiceError>,
    /// The memoization key the job ran (or hit) under.
    pub key: JobKey,
    /// Nanoseconds from submission to a worker picking the job up
    /// (zero for submit-time cache hits).
    pub queue_nanos: u64,
    /// Nanoseconds the worker spent producing the result
    /// (zero for submit-time cache hits).
    pub run_nanos: u64,
}

enum SlotState {
    Pending,
    Done(Arc<JobResult>),
}

/// Shared completion slot between a [`JobHandle`] and the worker pool.
struct JobSlot {
    state: Mutex<SlotState>,
    done: Condvar,
    rounds: AtomicUsize,
}

impl JobSlot {
    fn new() -> Arc<JobSlot> {
        Arc::new(JobSlot {
            state: Mutex::new(SlotState::Pending),
            done: Condvar::new(),
            rounds: AtomicUsize::new(0),
        })
    }

    fn fulfil(&self, result: Arc<JobResult>) {
        let mut st = self.state.lock().expect("job slot poisoned");
        *st = SlotState::Done(result);
        self.done.notify_all();
    }
}

/// Handle to a submitted job.
pub struct JobHandle {
    slot: Arc<JobSlot>,
}

impl JobHandle {
    /// Blocks until the job completes.
    pub fn wait(&self) -> Arc<JobResult> {
        let mut st = self.slot.state.lock().expect("job slot poisoned");
        loop {
            match &*st {
                SlotState::Done(r) => return Arc::clone(r),
                SlotState::Pending => {
                    st = self.slot.done.wait(st).expect("job slot poisoned");
                }
            }
        }
    }

    /// The result if the job already finished, without blocking.
    pub fn try_result(&self) -> Option<Arc<JobResult>> {
        match &*self.slot.state.lock().expect("job slot poisoned") {
            SlotState::Done(r) => Some(Arc::clone(r)),
            SlotState::Pending => None,
        }
    }

    /// Engine rounds completed so far (live progress via the core
    /// [`RoundObserver`] hook; cache hits jump straight to the final
    /// count).
    pub fn rounds_completed(&self) -> usize {
        self.slot.rounds.load(Relaxed)
    }
}

/// Handles for one batch submission, in submission order.
pub struct BatchHandle {
    handles: Vec<JobHandle>,
    submitted_at: Instant,
}

impl BatchHandle {
    /// Blocks until every job in the batch completes.
    pub fn wait(self) -> BatchResult {
        let results: Vec<Arc<JobResult>> = self.handles.iter().map(JobHandle::wait).collect();
        BatchResult {
            wall_nanos: self.submitted_at.elapsed().as_nanos() as u64,
            results,
        }
    }

    /// Per-job handles (e.g. for live progress polling before `wait`).
    pub fn handles(&self) -> &[JobHandle] {
        &self.handles
    }

    pub fn len(&self) -> usize {
        self.handles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }
}

/// All results of a batch, in submission order, with aggregates.
pub struct BatchResult {
    /// One result per submitted job, in submission order.
    pub results: Vec<Arc<JobResult>>,
    /// Submission-to-last-completion wall time.
    pub wall_nanos: u64,
}

impl BatchResult {
    /// Jobs answered from the cache.
    pub fn cache_hits(&self) -> usize {
        self.results.iter().filter(|r| r.cache_hit).count()
    }

    /// Oracle calls actually issued by this batch (cache hits contribute
    /// zero — their stats describe the original run).
    pub fn oracle_calls_issued(&self) -> u64 {
        self.results
            .iter()
            .filter(|r| !r.cache_hit)
            .map(|r| r.stats.oracle_calls)
            .sum()
    }

    /// Total input and output gate counts.
    pub fn gate_totals(&self) -> (usize, usize) {
        self.results.iter().fold((0, 0), |(i, o), r| {
            (i + r.stats.initial_units, o + r.stats.final_units)
        })
    }

    /// Completed jobs per second of batch wall time.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.results.len() as f64 / (self.wall_nanos as f64 / 1e9)
        }
    }
}

/// Monotonic service-wide counters.
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Jobs accepted by `submit`/`submit_batch`.
    pub submitted: u64,
    /// Jobs completed (including cache hits).
    pub completed: u64,
    /// Jobs answered from the cache (at submit or dequeue time) or by
    /// coalescing onto an in-flight duplicate.
    pub cache_hits: u64,
    /// Jobs that attached as waiters to an identical in-flight job instead
    /// of computing (a subset of `cache_hits`).
    pub coalesced: u64,
    /// Jobs that completed with [`JobResult::error`] set (oracle panic)
    /// instead of an optimized circuit (a subset of `completed`).
    pub failed: u64,
    /// Oracle calls issued by cache-missing jobs.
    pub oracle_calls_issued: u64,
    /// Store-layer counters aggregated across tiers (logical hits and
    /// misses; entries in the authoritative tier). Kept for callers that
    /// predate tiering — `store` has the per-tier breakdown.
    pub cache: CacheStats,
    /// Per-tier store counters (backend name + one entry per tier).
    pub store: StoreStats,
    /// Segment-cache counters (see [`crate::segcache`]); all-zero with
    /// `enabled: false` when [`ServiceConfig::seg_cache_capacity`] is 0.
    pub seg_cache: SegCacheStats,
    /// Work-stealing executor counters (process-wide `popqc-exec` pool
    /// the engine's parallel rounds run on). Process-global and
    /// monotonic — NOT per-service or per-job; diff two snapshots with
    /// [`qexec::ExecStats::delta_since`] to attribute work to an
    /// interval.
    pub executor: qexec::ExecStats,
    /// Seconds since this service was constructed.
    pub uptime_seconds: f64,
}

struct QueuedJob {
    circuit: Circuit,
    key: JobKey,
    oracle: DynOracle,
    /// The oracle's persistence version tag; stamps disk-tier writes and
    /// gates disk-tier reads (see [`ResultStore`]).
    oracle_version: String,
    slot: Arc<JobSlot>,
    enqueued_at: Instant,
    /// The submitting request's trace position, carried across the queue
    /// so the worker's spans land in the request's trace.
    trace: qobs::trace::TraceCtx,
}

/// A duplicate submission parked on an in-flight computation.
struct Waiter {
    slot: Arc<JobSlot>,
    attached_at: Instant,
    /// The waiter's own request trace; its coalesce-attach span is
    /// recorded when the lead computation settles it.
    trace: qobs::trace::TraceCtx,
    /// Attach instant as an offset in the waiter's own trace timeline.
    attached_offset: u64,
}

/// Failure protection for the in-flight entry: if the oracle (a public
/// trait clients implement) panics mid-computation, the entry must not
/// leak — a leaked entry would park every future submission of the same
/// circuit as a waiter that is never fulfilled. `run_job` catches the
/// unwind and drops the still-armed guard, which removes the entry and
/// re-enqueues each waiter as an independent job (the pre-coalescing
/// behaviour for duplicates); the guard is disarmed on the normal path,
/// where `settle_waiters` removes the entry instead.
struct InflightGuard<'a> {
    inflight: &'a Mutex<HashMap<JobKey, Vec<Waiter>>>,
    queue: &'a Mutex<VecDeque<QueuedJob>>,
    work_ready: &'a Condvar,
    circuit: &'a Circuit,
    key: &'a JobKey,
    oracle: &'a DynOracle,
    oracle_version: &'a str,
    armed: bool,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let waiters: Vec<Waiter> = self
            .inflight
            .lock()
            .expect("inflight table poisoned")
            .remove(self.key)
            .into_iter()
            .flatten()
            .collect();
        if waiters.is_empty() {
            return;
        }
        let mut q = self.queue.lock().expect("job queue poisoned");
        for w in waiters {
            q.push_back(QueuedJob {
                circuit: self.circuit.clone(),
                key: self.key.clone(),
                oracle: Arc::clone(self.oracle),
                oracle_version: self.oracle_version.to_string(),
                slot: w.slot,
                enqueued_at: w.attached_at,
                trace: w.trace,
            });
            metrics::queue_depth().inc();
            self.work_ready.notify_one();
        }
    }
}

struct Inner {
    threads_per_job: usize,
    store: Arc<dyn ResultStore>,
    /// The segment-rewrite cache shared by every job (null-backed when
    /// disabled, making the per-segment hook a cheap early return).
    segcache: SegmentCacheLayer,
    queue: Mutex<VecDeque<QueuedJob>>,
    work_ready: Condvar,
    /// In-flight table: one entry per key that is queued or running, holding
    /// the duplicate submissions parked on it. The entry is created by the
    /// `submit` that enqueues the computation and removed (waiters drained)
    /// by the worker that finishes it.
    inflight: Mutex<HashMap<JobKey, Vec<Waiter>>>,
    shutdown: AtomicBool,
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    failed: AtomicU64,
    oracle_calls_issued: AtomicU64,
    /// Construction time, for the uptime gauge in stats and scrapes.
    started: Instant,
}

/// Counts engine rounds into the running job's slot — and into every
/// waiter currently coalesced onto it, so a client polling a coalesced
/// job sees the same live progress as the lead submission.
struct SlotProgress<'a> {
    slot: &'a JobSlot,
    key: &'a JobKey,
    inflight: &'a Mutex<HashMap<JobKey, Vec<Waiter>>>,
    /// The job's trace; each round becomes a closed span under the
    /// engine span. Rounds are strictly sequential on this thread, so
    /// the previous round's end offset is the next one's start.
    trace: qobs::trace::TraceHandle,
    engine_span: u64,
    round_started: AtomicU64,
}

impl RoundObserver for SlotProgress<'_> {
    fn on_round(&self, round: usize, record: &RoundRecord) {
        self.slot.rounds.store(round, Relaxed);
        if self.trace.enabled() {
            let now = self.trace.now_nanos();
            let start = self.round_started.swap(now, Relaxed);
            self.trace.span_closed(
                "round",
                self.engine_span,
                start,
                now.saturating_sub(start),
                vec![
                    ("round", round.into()),
                    ("fingers", record.fingers.into()),
                    ("selected", record.selected.into()),
                    ("accepted", record.accepted.into()),
                ],
            );
        }
        // One short map lock per engine round (tens per job) is noise next
        // to the oracle calls the round just made.
        if let Ok(inflight) = self.inflight.lock() {
            if let Some(waiters) = inflight.get(self.key) {
                for w in waiters {
                    w.slot.rounds.store(round, Relaxed);
                }
            }
        }
    }
}

/// Wraps a job's oracle so every `optimize` call lands in the
/// per-oracle latency histogram — the direct observable for the paper's
/// O(n·Ω) bound. Called from the engine's parallel rounds, so the only
/// added cost per call is an `Instant` pair and one relaxed bucket add.
struct TimedOracle<'a> {
    inner: &'a (dyn SegmentOracle<Gate> + Send + Sync),
    histogram: Arc<qobs::Histogram>,
    /// Carried explicitly (not via the thread-local context) because
    /// `optimize` runs on qexec pool threads that never install one.
    trace: qobs::trace::TraceHandle,
    engine_span: u64,
}

impl SegmentOracle<Gate> for TimedOracle<'_> {
    fn optimize(&self, units: &[Gate], num_qubits: u32) -> Vec<Gate> {
        let _timer = self.histogram.start_timer();
        let mut span = self.trace.span("oracle_call", self.engine_span);
        let out = self.inner.optimize(units, num_qubits);
        if self.trace.enabled() {
            span.attr("gates_in", units.len());
            span.attr("gates_out", out.len());
        }
        out
    }

    fn cost(&self, units: &[Gate]) -> u64 {
        self.inner.cost(units)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn version(&self) -> String {
        self.inner.version()
    }

    fn angle_independent(&self) -> bool {
        self.inner.angle_independent()
    }
}

/// Best-effort text from a caught panic payload (`&str` and `String`
/// cover what `panic!` produces in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "unknown panic payload"
    }
}

impl Inner {
    fn complete(&self, slot: &JobSlot, result: JobResult) {
        if result.cache_hit {
            self.cache_hits.fetch_add(1, Relaxed);
        }
        self.completed.fetch_add(1, Relaxed);
        // Every completion path funnels through here, so this is the one
        // place the per-oracle outcome counters and the submit→done
        // latency histogram are maintained.
        let oracle = result.key.oracle_id.as_str();
        if result.cache_hit {
            if result.coalesced {
                metrics::jobs_coalesced(oracle).inc();
            } else {
                metrics::cache_hits(oracle).inc();
            }
        } else {
            metrics::cache_misses(oracle).inc();
            if result.error.is_none() {
                metrics::rounds_to_fixpoint().observe(result.stats.rounds as f64);
            }
        }
        metrics::job_duration(oracle).observe((result.queue_nanos + result.run_nanos) as f64 / 1e9);
        qobs::log_debug!(
            target: "qsvc",
            "job done",
            oracle = oracle,
            cache_hit = result.cache_hit,
            coalesced = result.coalesced,
            rounds = result.stats.rounds,
            oracle_calls = result.stats.oracle_calls,
        );
        slot.rounds.store(result.stats.rounds, Relaxed);
        slot.fulfil(Arc::new(result));
    }

    /// Drains and fulfils every waiter parked on `key`. Must run after the
    /// result is in the cache: once the in-flight entry is gone, duplicate
    /// submissions fall through to the cache probe, so the ordering
    /// guarantees they find the result there.
    fn settle_waiters(&self, key: &JobKey, circuit: &Circuit, stats: &PopqcStats) {
        let waiters = self
            .inflight
            .lock()
            .expect("inflight table poisoned")
            .remove(key);
        for w in waiters.into_iter().flatten() {
            self.coalesced.fetch_add(1, Relaxed);
            if w.trace.handle.enabled() {
                // The waiter's whole service-side story is one span: from
                // attaching onto the in-flight computation to being
                // settled by it.
                let now = w.trace.handle.now_nanos();
                w.trace.handle.span_closed(
                    "coalesce_attach",
                    w.trace.parent,
                    w.attached_offset,
                    now.saturating_sub(w.attached_offset),
                    vec![("oracle", key.oracle_id.as_str().into())],
                );
            }
            let slot = w.slot;
            self.complete(
                &slot,
                JobResult {
                    circuit: circuit.clone(),
                    stats: stats.clone(),
                    cache_hit: true,
                    coalesced: true,
                    error: None,
                    key: key.clone(),
                    queue_nanos: w.attached_at.elapsed().as_nanos() as u64,
                    run_nanos: 0,
                },
            );
        }
    }

    fn run_job(&self, job: QueuedJob) {
        // Install the job's trace as this worker thread's ambient
        // context so store tiers (including the remote wire hop) record
        // their spans into the right trace without plumbing.
        let ctx = job.trace.clone();
        qobs::trace::with_active(&ctx, || self.run_job_traced(job))
    }

    fn run_job_traced(&self, job: QueuedJob) {
        let queue_nanos = job.enqueued_at.elapsed().as_nanos() as u64;
        let trace = job.trace.handle.clone();
        let trace_parent = job.trace.parent;
        trace.span_closed(
            "job_queue_wait",
            trace_parent,
            trace.now_nanos().saturating_sub(queue_nanos),
            queue_nanos,
            Vec::new(),
        );
        // Second probe: an identical job submitted earlier may have
        // completed while this one sat in the queue (possible when the
        // earlier job's in-flight entry was removed between this job's
        // submit-time cache probe and its in-flight check).
        let second_probe = {
            let mut span = trace.span("store_get", trace_parent);
            let nested = qobs::trace::TraceCtx {
                handle: trace.clone(),
                parent: span.id(),
            };
            let r =
                qobs::trace::with_active(&nested, || self.store.get(&job.key, &job.oracle_version));
            span.attr("hit", r.is_some());
            r
        };
        if let Some(cached) = second_probe {
            self.settle_waiters(&job.key, &cached.circuit, &cached.stats);
            self.complete(
                &job.slot,
                JobResult {
                    circuit: cached.circuit.clone(),
                    stats: cached.stats.clone(),
                    cache_hit: true,
                    coalesced: false,
                    error: None,
                    key: job.key,
                    queue_nanos,
                    run_nanos: 0,
                },
            );
            return;
        }

        let t0 = Instant::now();
        let mut engine_span = trace.span("engine", trace_parent);
        engine_span.attr("width", self.threads_per_job);
        engine_span.attr("oracle", job.key.oracle_id.as_str());
        let engine_span_id = engine_span.id();
        let observer = SlotProgress {
            slot: &job.slot,
            key: &job.key,
            inflight: &self.inflight,
            trace: trace.clone(),
            engine_span: engine_span_id,
            round_started: AtomicU64::new(trace.now_nanos()),
        };
        let mut guard = InflightGuard {
            inflight: &self.inflight,
            queue: &self.queue,
            work_ready: &self.work_ready,
            circuit: &job.circuit,
            key: &job.key,
            oracle: &job.oracle,
            oracle_version: &job.oracle_version,
            armed: true,
        };
        // The oracle is a public trait clients implement: a panic inside it
        // must neither unwind through the worker thread (shrinking the
        // fixed pool) nor leave the lead slot pending forever. Catch it,
        // let the still-armed guard re-enqueue the coalesced waiters as
        // independent retries, and fulfil the lead slot with an
        // error-shaped result so its client unblocks.
        let timed_oracle = TimedOracle {
            inner: job.oracle.as_ref(),
            histogram: metrics::oracle_call_duration(&job.key.oracle_id),
            trace: trace.clone(),
            engine_span: engine_span_id,
        };
        // The segment-cache hook wraps the RAW oracle: template derivation
        // re-invokes it on marker segments, and those derivation calls
        // must not land in the per-call latency histogram.
        let seg_hook = self.segcache.for_job_traced(
            &job.key.oracle_id,
            job.oracle.as_ref(),
            trace.clone(),
            engine_span_id,
        );
        // Re-anchor the ambient context under the engine span so the
        // engine's parallel-op spans (recorded by qexec on this driving
        // thread) nest correctly.
        let engine_ctx = qobs::trace::TraceCtx {
            handle: trace.clone(),
            parent: engine_span_id,
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // The per-job thread budget is a width scope on the shared
            // qexec work-stealing pool: the engine's parallel rounds run
            // at `threads_per_job` width on persistent pool threads
            // instead of spawning scoped threads per round.
            qobs::trace::with_active(&engine_ctx, || {
                qexec::with_width(self.threads_per_job, || {
                    optimize_circuit_cached(
                        &job.circuit,
                        &timed_oracle,
                        &job.key.config,
                        &observer,
                        &seg_hook,
                    )
                })
            })
        }));
        drop(engine_span);
        let (optimized, stats) = match outcome {
            Ok(run) => run,
            Err(payload) => {
                drop(guard); // armed: removes the in-flight entry, re-enqueues waiters
                let run_nanos = t0.elapsed().as_nanos() as u64;
                self.failed.fetch_add(1, Relaxed);
                metrics::jobs_failed().inc();
                qobs::log_error!(
                    target: "qsvc",
                    "job failed",
                    oracle = job.key.oracle_id,
                    error = panic_message(&*payload),
                );
                self.complete(
                    &job.slot,
                    JobResult {
                        circuit: job.circuit,
                        stats: PopqcStats::default(),
                        cache_hit: false,
                        coalesced: false,
                        // `&*payload`, not `&payload`: coercing the Box
                        // itself to `&dyn Any` would make every downcast
                        // miss.
                        error: Some(ServiceError::OracleFailure(format!(
                            "optimization panicked: {}",
                            panic_message(&*payload)
                        ))),
                        key: job.key,
                        queue_nanos,
                        run_nanos,
                    },
                );
                return;
            }
        };
        guard.armed = false;
        drop(guard); // release the borrows of `job` before it is moved below
        let run_nanos = t0.elapsed().as_nanos() as u64;

        self.oracle_calls_issued
            .fetch_add(stats.oracle_calls, Relaxed);
        {
            let span = trace.span("store_put", trace_parent);
            let nested = qobs::trace::TraceCtx {
                handle: trace.clone(),
                parent: span.id(),
            };
            qobs::trace::with_active(&nested, || {
                self.store.put(
                    &job.key,
                    &job.oracle_version,
                    Arc::new(CachedRun {
                        circuit: optimized.clone(),
                        stats: stats.clone(),
                    }),
                )
            });
        }
        self.settle_waiters(&job.key, &optimized, &stats);
        self.complete(
            &job.slot,
            JobResult {
                circuit: optimized,
                stats,
                cache_hit: false,
                coalesced: false,
                error: None,
                key: job.key,
                queue_nanos,
                run_nanos,
            },
        );
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock().expect("job queue poisoned");
                loop {
                    if let Some(job) = q.pop_front() {
                        metrics::queue_depth().dec();
                        break job;
                    }
                    if self.shutdown.load(Relaxed) {
                        return;
                    }
                    q = self.work_ready.wait(q).expect("job queue poisoned");
                }
            };
            // `run_job` already converts oracle panics into error-shaped
            // results; this is the last line of defence so no panic
            // whatsoever can shrink the fixed worker pool.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_job(job)));
        }
    }
}

/// The in-process batch optimization service. See the module docs for the
/// architecture; construct with [`OptimizationService::new`] over an
/// [`OracleRegistry`] (or [`single`](OptimizationService::single) for one
/// oracle), submit with [`submit`](OptimizationService::submit) /
/// [`submit_request`](OptimizationService::submit_request) /
/// [`submit_batch`](OptimizationService::submit_batch), and audit with
/// [`stats`](OptimizationService::stats).
///
/// Dropping the service drains the queue (every outstanding
/// [`JobHandle`] still completes) and joins the workers.
pub struct OptimizationService {
    inner: Arc<Inner>,
    registry: OracleRegistry,
    workers: Vec<std::thread::JoinHandle<()>>,
    worker_count: usize,
    threads_per_job: usize,
}

impl OptimizationService {
    /// Spawns the worker pool over `registry` with the default
    /// process-local [`MemoryStore`] sized by the config's
    /// `cache_capacity`/`cache_shards`. Every submission resolves its
    /// oracle in the registry per job, so one running service answers
    /// mixed-oracle traffic; the registry ids are the cache keys' oracle
    /// ids, so entries never cross-contaminate.
    pub fn new(registry: OracleRegistry, config: ServiceConfig) -> OptimizationService {
        let store: Arc<dyn ResultStore> =
            Arc::new(MemoryStore::new(config.cache_capacity, config.cache_shards));
        OptimizationService::with_store(registry, config, store)
    }

    /// [`new`](Self::new) over an explicit [`ResultStore`] backend — the
    /// pluggable seam. Swapping memory / disk / tiered / null (or any
    /// future backend) changes nothing but this argument; the scheduling,
    /// coalescing, and accounting layers above see only the trait.
    pub fn with_store(
        registry: OracleRegistry,
        config: ServiceConfig,
        store: Arc<dyn ResultStore>,
    ) -> OptimizationService {
        assert!(
            !registry.is_empty(),
            "the oracle registry must hold at least the default oracle"
        );
        let (workers, threads_per_job) = config.resolved();
        // Provision the shared executor for the full service: individual
        // jobs only grow the pool to their own width, so without this a
        // multi-worker service would run all its concurrent jobs on one
        // job's worth of pool threads.
        if threads_per_job > 1 {
            qexec::reserve_workers(workers.saturating_mul(threads_per_job));
        }
        let inner = Arc::new(Inner {
            threads_per_job,
            store,
            segcache: SegmentCacheLayer::new(config.seg_cache_capacity, config.cache_shards),
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            inflight: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            oracle_calls_issued: AtomicU64::new(0),
            started: Instant::now(),
        });
        // Pre-register this crate's (and the executor's) metric families
        // so the first `/v1/metrics` scrape already lists every series a
        // busy server would.
        metrics::describe_metrics();
        qexec::describe_metrics();
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("qsvc-worker-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawn service worker")
            })
            .collect();
        OptimizationService {
            inner,
            registry,
            workers: handles,
            worker_count: workers,
            threads_per_job,
        }
    }

    /// A single-oracle service: [`new`](Self::new) over
    /// [`OracleRegistry::single`]. The oracle's [`SegmentOracle::name`]
    /// becomes the registry (and cache-key) id, so two oracles with the
    /// same name MUST behave identically; for custom-parameterized oracles
    /// use [`single_with_id`](Self::single_with_id).
    pub fn single(
        oracle: impl SegmentOracle<Gate> + Send + 'static,
        config: ServiceConfig,
    ) -> OptimizationService {
        OptimizationService::new(OracleRegistry::single(oracle), config)
    }

    /// [`single`](Self::single) with an explicit registry id.
    pub fn single_with_id(
        oracle: impl SegmentOracle<Gate> + Send + 'static,
        id: impl Into<String>,
        config: ServiceConfig,
    ) -> OptimizationService {
        OptimizationService::new(OracleRegistry::single_with_id(oracle, id), config)
    }

    /// A single-oracle service with the default [`ServiceConfig`].
    pub fn with_defaults(oracle: impl SegmentOracle<Gate> + Send + 'static) -> OptimizationService {
        OptimizationService::single(oracle, ServiceConfig::default())
    }

    /// The oracle registry this service dispatches over.
    pub fn registry(&self) -> &OracleRegistry {
        &self.registry
    }

    /// The key `circuit` would be cached under with the default oracle.
    pub fn key_for(&self, circuit: &Circuit, cfg: &PopqcConfig) -> JobKey {
        JobKey {
            fingerprint: circuit.fingerprint(),
            oracle_id: self.registry.default_id().to_string(),
            config: cfg.clone(),
        }
    }

    /// The key `circuit` would be cached under with a specific oracle.
    pub fn key_for_oracle(
        &self,
        oracle: &str,
        circuit: &Circuit,
        cfg: &PopqcConfig,
    ) -> Result<JobKey, ServiceError> {
        let (oracle_id, _) = self.registry.resolve(Some(oracle))?;
        Ok(JobKey {
            fingerprint: circuit.fingerprint(),
            oracle_id,
            config: cfg.clone(),
        })
    }

    /// Submits one typed request (per-job oracle + config). Cache hits
    /// complete immediately (the handle is already fulfilled); misses are
    /// queued for the worker pool. Fails with
    /// [`ServiceError::UnknownOracle`] without enqueueing anything.
    pub fn submit_request(&self, req: JobRequest) -> Result<JobHandle, ServiceError> {
        let (oracle_id, version, oracle) =
            self.registry.resolve_versioned(req.oracle.as_deref())?;
        Ok(self.submit_resolved(oracle_id, version, oracle, req.circuit, &req.config))
    }

    /// Submits one circuit under the default oracle.
    pub fn submit(&self, circuit: Circuit, cfg: &PopqcConfig) -> JobHandle {
        let (oracle_id, version, oracle) = self
            .registry
            .resolve_versioned(None)
            .expect("registry default always resolves");
        self.submit_resolved(oracle_id, version, oracle, circuit, cfg)
    }

    /// Submits one circuit under a named oracle.
    pub fn submit_as(
        &self,
        oracle: &str,
        circuit: Circuit,
        cfg: &PopqcConfig,
    ) -> Result<JobHandle, ServiceError> {
        self.submit_request(JobRequest::with_oracle(circuit, oracle, cfg.clone()))
    }

    fn submit_resolved(
        &self,
        oracle_id: String,
        oracle_version: String,
        oracle: DynOracle,
        circuit: Circuit,
        cfg: &PopqcConfig,
    ) -> JobHandle {
        self.inner.submitted.fetch_add(1, Relaxed);
        // The submitting thread (an HTTP dispatcher or connection
        // thread) carries the request's ambient trace; capture it here
        // so the worker, possibly seconds later, joins the same trace.
        let trace = qobs::trace::current();
        let key = JobKey {
            fingerprint: circuit.fingerprint(),
            oracle_id,
            config: cfg.clone(),
        };
        let slot = JobSlot::new();

        let submit_probe = {
            let mut span = trace.handle.span("store_get", trace.parent);
            let nested = qobs::trace::TraceCtx {
                handle: trace.handle.clone(),
                parent: span.id(),
            };
            let r =
                qobs::trace::with_active(&nested, || self.inner.store.get(&key, &oracle_version));
            span.attr("hit", r.is_some());
            r
        };
        if let Some(cached) = submit_probe {
            self.inner.complete(
                &slot,
                JobResult {
                    circuit: cached.circuit.clone(),
                    stats: cached.stats.clone(),
                    cache_hit: true,
                    coalesced: false,
                    error: None,
                    key,
                    queue_nanos: 0,
                    run_nanos: 0,
                },
            );
            return JobHandle { slot };
        }

        // In-flight coalescing: if an identical job is already queued or
        // running, park this submission as a waiter on it instead of
        // computing again. The finishing worker fulfils all waiters.
        {
            let mut inflight = self.inner.inflight.lock().expect("inflight table poisoned");
            if let Some(waiters) = inflight.get_mut(&key) {
                waiters.push(Waiter {
                    slot: Arc::clone(&slot),
                    attached_at: Instant::now(),
                    attached_offset: trace.handle.now_nanos(),
                    trace,
                });
                return JobHandle { slot };
            }
            inflight.insert(key.clone(), Vec::new());
        }

        let job = QueuedJob {
            circuit,
            key,
            oracle,
            oracle_version,
            slot: Arc::clone(&slot),
            enqueued_at: Instant::now(),
            trace,
        };
        {
            let mut q = self.inner.queue.lock().expect("job queue poisoned");
            q.push_back(job);
        }
        metrics::queue_depth().inc();
        self.inner.work_ready.notify_one();
        JobHandle { slot }
    }

    /// Submits a homogeneous batch (default oracle, one engine config for
    /// all circuits).
    pub fn submit_batch(
        &self,
        circuits: impl IntoIterator<Item = Circuit>,
        cfg: &PopqcConfig,
    ) -> BatchHandle {
        let submitted_at = Instant::now();
        let handles = circuits.into_iter().map(|c| self.submit(c, cfg)).collect();
        BatchHandle {
            handles,
            submitted_at,
        }
    }

    /// Submits a homogeneous batch under a named oracle.
    pub fn submit_batch_as(
        &self,
        oracle: &str,
        circuits: impl IntoIterator<Item = Circuit>,
        cfg: &PopqcConfig,
    ) -> Result<BatchHandle, ServiceError> {
        // Resolve once up front: an unknown oracle must refuse the whole
        // batch before any job is enqueued.
        let (oracle_id, version, resolved) = self.registry.resolve_versioned(Some(oracle))?;
        let submitted_at = Instant::now();
        let handles = circuits
            .into_iter()
            .map(|c| {
                self.submit_resolved(
                    oracle_id.clone(),
                    version.clone(),
                    Arc::clone(&resolved),
                    c,
                    cfg,
                )
            })
            .collect();
        Ok(BatchHandle {
            handles,
            submitted_at,
        })
    }

    /// Submits a mixed batch: each [`JobRequest`] selects its own oracle
    /// and engine config, all sharing this service's queue and cache.
    /// Every oracle id is validated before anything is enqueued, so an
    /// unknown id refuses the whole batch atomically.
    pub fn submit_batch_requests(
        &self,
        requests: Vec<JobRequest>,
    ) -> Result<BatchHandle, ServiceError> {
        let mut resolved = Vec::with_capacity(requests.len());
        for req in &requests {
            resolved.push(self.registry.resolve_versioned(req.oracle.as_deref())?);
        }
        let submitted_at = Instant::now();
        let handles = requests
            .into_iter()
            .zip(resolved)
            .map(|(req, (oracle_id, version, oracle))| {
                self.submit_resolved(oracle_id, version, oracle, req.circuit, &req.config)
            })
            .collect();
        Ok(BatchHandle {
            handles,
            submitted_at,
        })
    }

    /// Point-in-time service counters.
    pub fn stats(&self) -> ServiceStats {
        let store = self.inner.store.stats();
        ServiceStats {
            submitted: self.inner.submitted.load(Relaxed),
            completed: self.inner.completed.load(Relaxed),
            cache_hits: self.inner.cache_hits.load(Relaxed),
            coalesced: self.inner.coalesced.load(Relaxed),
            failed: self.inner.failed.load(Relaxed),
            oracle_calls_issued: self.inner.oracle_calls_issued.load(Relaxed),
            cache: CacheStats {
                hits: store.hits(),
                misses: store.misses(),
                evictions: store.evictions(),
                entries: store.entries() as usize,
            },
            store,
            seg_cache: self.inner.segcache.stats(),
            executor: qexec::stats(),
            uptime_seconds: self.inner.started.elapsed().as_secs_f64(),
        }
    }

    /// Jobs currently sitting in the FIFO queue waiting for a worker
    /// (excludes running jobs and coalesced waiters). Cheap enough to
    /// probe per request: the serving edge's load shedder compares this
    /// against its `--shed-queue-depth` threshold before enqueueing.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.lock().expect("job queue poisoned").len()
    }

    /// The result store this service memoizes into.
    pub fn store(&self) -> &Arc<dyn ResultStore> {
        &self.inner.store
    }

    /// Drops every stored result (all tiers); returns how many entries
    /// were removed. In-flight jobs are unaffected — they re-populate the
    /// store as they finish.
    pub fn clear_cache(&self) -> u64 {
        self.inner.store.clear()
    }

    /// Drops every cached *segment* rewrite; returns how many entries
    /// were removed. Independent of [`clear_cache`](Self::clear_cache) —
    /// the two layers cache different things.
    pub fn clear_segment_cache(&self) -> u64 {
        self.inner.segcache.clear()
    }

    /// Worker pool width.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Engine threads each job runs with.
    pub fn threads_per_job(&self) -> usize {
        self.threads_per_job
    }
}

impl Drop for OptimizationService {
    fn drop(&mut self) {
        // Set the flag while holding the queue lock: a worker is then either
        // before its shutdown check (and will see the flag) or already inside
        // `wait` (and will receive the notification) — storing without the
        // lock could interleave inside a worker's check-then-wait window and
        // lose the wakeup, hanging `join` forever.
        {
            let _q = self.inner.queue.lock().expect("job queue poisoned");
            self.inner.shutdown.store(true, Relaxed);
        }
        self.inner.work_ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Every queued job has completed; give buffering backends their
        // durability point before the store is dropped.
        self.inner.store.flush();
    }
}
