//! The batch optimization service: a fixed worker pool over the POPQC
//! engine with memoization.
//!
//! Architecture (one process, no network — an HTTP frontend can wrap this
//! API later without touching it):
//!
//! ```text
//!  submit/submit_batch ──▶ FIFO queue ──▶ N worker threads
//!        │                                   │  (each installs a
//!        │ cache probe                       │   threads-per-job pool:
//!        ▼                                   ▼   outer × inner parallelism)
//!  ShardedLruCache ◀────── insert ────── optimize_circuit_observed
//!        │                                   │
//!        └────────▶ JobHandle::wait ◀────────┘
//! ```
//!
//! * **Outer parallelism** — `workers` jobs run concurrently, one per
//!   worker thread.
//! * **Inner parallelism** — each worker installs a `threads_per_job`-wide
//!   pool before entering the engine, so one huge circuit saturates its
//!   budget instead of starving the queue.
//! * **Memoization** — results are cached under
//!   `(circuit fingerprint, oracle id, engine config)`. Identical
//!   resubmissions are answered from cache with zero oracle calls, and the
//!   per-job [`JobResult::cache_hit`] flag plus the service-level counters
//!   make hits auditable end to end.
//! * **In-flight coalescing** — identical jobs submitted while a duplicate
//!   is still queued or running attach as waiters to that one computation
//!   (per-key in-flight table) instead of each computing; the finishing
//!   worker fulfils all of them. Coalesced jobs are flagged via
//!   [`JobResult::coalesced`] and counted in [`ServiceStats::coalesced`].
//! * **Fault isolation** — a panic in the oracle (a client-implemented
//!   trait) is caught: the lead job completes with [`JobResult::error`]
//!   set, coalesced waiters are re-enqueued as independent retries, and
//!   the worker thread survives to take the next job.

use crate::cache::{CacheStats, ShardedLruCache};
use popqc_core::{optimize_circuit_observed, PopqcConfig, PopqcStats, RoundObserver, RoundRecord};
use qcir::{Circuit, Fingerprint, Gate};
use qoracle::SegmentOracle;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// The memoization key: everything that determines an optimization result.
///
/// The engine is deterministic, so `(structural input, oracle, config)`
/// fully determines `(output circuit, call counts)` — timing fields in the
/// cached stats are from the original run.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct JobKey {
    /// Structural fingerprint of the input circuit.
    pub fingerprint: Fingerprint,
    /// Stable oracle identifier (defaults to [`SegmentOracle::name`];
    /// override via [`OptimizationService::with_oracle_id`] when running a
    /// custom-parameterized oracle whose name does not pin its behaviour).
    pub oracle_id: String,
    /// Engine parameters the result depends on.
    pub config: PopqcConfig,
}

/// Service sizing knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads (concurrent jobs). `0` = available parallelism.
    pub workers: usize,
    /// Engine threads each job may use. `0` = `max(1, cores / workers)`,
    /// so a fully loaded service oversubscribes at most 1×.
    pub threads_per_job: usize,
    /// Total result-cache entries before LRU eviction.
    pub cache_capacity: usize,
    /// Cache shards (lock granularity).
    pub cache_shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 0,
            threads_per_job: 0,
            cache_capacity: 1024,
            cache_shards: 16,
        }
    }
}

impl ServiceConfig {
    fn resolved(&self) -> (usize, usize) {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let workers = if self.workers == 0 {
            cores
        } else {
            self.workers
        };
        let threads_per_job = if self.threads_per_job == 0 {
            (cores / workers).max(1)
        } else {
            self.threads_per_job
        };
        (workers, threads_per_job)
    }
}

/// A finished job: the optimized circuit plus full accounting.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The optimized circuit (bit-identical to a direct
    /// `optimize_circuit` call with the same inputs).
    pub circuit: Circuit,
    /// Engine statistics. For cache hits these are the *original* run's
    /// stats; no new oracle work happened.
    pub stats: PopqcStats,
    /// Whether this result was served from the cache.
    pub cache_hit: bool,
    /// Whether this result came from attaching to an identical job that was
    /// already queued or running when this one was submitted (in-flight
    /// coalescing). Coalesced results are also counted as cache hits.
    pub coalesced: bool,
    /// `Some` when the job failed instead of producing a result (the
    /// oracle panicked mid-computation). `circuit` is then the *input*
    /// circuit unchanged, `stats` is zeroed, and nothing was cached —
    /// resubmitting retries the computation.
    pub error: Option<String>,
    /// The memoization key the job ran (or hit) under.
    pub key: JobKey,
    /// Nanoseconds from submission to a worker picking the job up
    /// (zero for submit-time cache hits).
    pub queue_nanos: u64,
    /// Nanoseconds the worker spent producing the result
    /// (zero for submit-time cache hits).
    pub run_nanos: u64,
}

/// What the cache stores: the output half of a [`JobResult`].
struct CachedRun {
    circuit: Circuit,
    stats: PopqcStats,
}

enum SlotState {
    Pending,
    Done(Arc<JobResult>),
}

/// Shared completion slot between a [`JobHandle`] and the worker pool.
struct JobSlot {
    state: Mutex<SlotState>,
    done: Condvar,
    rounds: AtomicUsize,
}

impl JobSlot {
    fn new() -> Arc<JobSlot> {
        Arc::new(JobSlot {
            state: Mutex::new(SlotState::Pending),
            done: Condvar::new(),
            rounds: AtomicUsize::new(0),
        })
    }

    fn fulfil(&self, result: Arc<JobResult>) {
        let mut st = self.state.lock().expect("job slot poisoned");
        *st = SlotState::Done(result);
        self.done.notify_all();
    }
}

/// Handle to a submitted job.
pub struct JobHandle {
    slot: Arc<JobSlot>,
}

impl JobHandle {
    /// Blocks until the job completes.
    pub fn wait(&self) -> Arc<JobResult> {
        let mut st = self.slot.state.lock().expect("job slot poisoned");
        loop {
            match &*st {
                SlotState::Done(r) => return Arc::clone(r),
                SlotState::Pending => {
                    st = self.slot.done.wait(st).expect("job slot poisoned");
                }
            }
        }
    }

    /// The result if the job already finished, without blocking.
    pub fn try_result(&self) -> Option<Arc<JobResult>> {
        match &*self.slot.state.lock().expect("job slot poisoned") {
            SlotState::Done(r) => Some(Arc::clone(r)),
            SlotState::Pending => None,
        }
    }

    /// Engine rounds completed so far (live progress via the core
    /// [`RoundObserver`] hook; cache hits jump straight to the final
    /// count).
    pub fn rounds_completed(&self) -> usize {
        self.slot.rounds.load(Relaxed)
    }
}

/// Handles for one batch submission, in submission order.
pub struct BatchHandle {
    handles: Vec<JobHandle>,
    submitted_at: Instant,
}

impl BatchHandle {
    /// Blocks until every job in the batch completes.
    pub fn wait(self) -> BatchResult {
        let results: Vec<Arc<JobResult>> = self.handles.iter().map(JobHandle::wait).collect();
        BatchResult {
            wall_nanos: self.submitted_at.elapsed().as_nanos() as u64,
            results,
        }
    }

    /// Per-job handles (e.g. for live progress polling before `wait`).
    pub fn handles(&self) -> &[JobHandle] {
        &self.handles
    }

    pub fn len(&self) -> usize {
        self.handles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }
}

/// All results of a batch, in submission order, with aggregates.
pub struct BatchResult {
    /// One result per submitted job, in submission order.
    pub results: Vec<Arc<JobResult>>,
    /// Submission-to-last-completion wall time.
    pub wall_nanos: u64,
}

impl BatchResult {
    /// Jobs answered from the cache.
    pub fn cache_hits(&self) -> usize {
        self.results.iter().filter(|r| r.cache_hit).count()
    }

    /// Oracle calls actually issued by this batch (cache hits contribute
    /// zero — their stats describe the original run).
    pub fn oracle_calls_issued(&self) -> u64 {
        self.results
            .iter()
            .filter(|r| !r.cache_hit)
            .map(|r| r.stats.oracle_calls)
            .sum()
    }

    /// Total input and output gate counts.
    pub fn gate_totals(&self) -> (usize, usize) {
        self.results.iter().fold((0, 0), |(i, o), r| {
            (i + r.stats.initial_units, o + r.stats.final_units)
        })
    }

    /// Completed jobs per second of batch wall time.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.results.len() as f64 / (self.wall_nanos as f64 / 1e9)
        }
    }
}

/// Monotonic service-wide counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Jobs accepted by `submit`/`submit_batch`.
    pub submitted: u64,
    /// Jobs completed (including cache hits).
    pub completed: u64,
    /// Jobs answered from the cache (at submit or dequeue time) or by
    /// coalescing onto an in-flight duplicate.
    pub cache_hits: u64,
    /// Jobs that attached as waiters to an identical in-flight job instead
    /// of computing (a subset of `cache_hits`).
    pub coalesced: u64,
    /// Jobs that completed with [`JobResult::error`] set (oracle panic)
    /// instead of an optimized circuit (a subset of `completed`).
    pub failed: u64,
    /// Oracle calls issued by cache-missing jobs.
    pub oracle_calls_issued: u64,
    /// Cache-layer counters.
    pub cache: CacheStats,
}

struct QueuedJob {
    circuit: Circuit,
    key: JobKey,
    slot: Arc<JobSlot>,
    enqueued_at: Instant,
}

/// A duplicate submission parked on an in-flight computation.
struct Waiter {
    slot: Arc<JobSlot>,
    attached_at: Instant,
}

/// Failure protection for the in-flight entry: if the oracle (a public
/// trait clients implement) panics mid-computation, the entry must not
/// leak — a leaked entry would park every future submission of the same
/// circuit as a waiter that is never fulfilled. `run_job` catches the
/// unwind and drops the still-armed guard, which removes the entry and
/// re-enqueues each waiter as an independent job (the pre-coalescing
/// behaviour for duplicates); the guard is disarmed on the normal path,
/// where `settle_waiters` removes the entry instead.
struct InflightGuard<'a> {
    inflight: &'a Mutex<HashMap<JobKey, Vec<Waiter>>>,
    queue: &'a Mutex<VecDeque<QueuedJob>>,
    work_ready: &'a Condvar,
    circuit: &'a Circuit,
    key: &'a JobKey,
    armed: bool,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let waiters: Vec<Waiter> = self
            .inflight
            .lock()
            .expect("inflight table poisoned")
            .remove(self.key)
            .into_iter()
            .flatten()
            .collect();
        if waiters.is_empty() {
            return;
        }
        let mut q = self.queue.lock().expect("job queue poisoned");
        for w in waiters {
            q.push_back(QueuedJob {
                circuit: self.circuit.clone(),
                key: self.key.clone(),
                slot: w.slot,
                enqueued_at: w.attached_at,
            });
            self.work_ready.notify_one();
        }
    }
}

struct Inner<O> {
    oracle: O,
    oracle_id: String,
    threads_per_job: usize,
    cache: ShardedLruCache<JobKey, CachedRun>,
    queue: Mutex<VecDeque<QueuedJob>>,
    work_ready: Condvar,
    /// In-flight table: one entry per key that is queued or running, holding
    /// the duplicate submissions parked on it. The entry is created by the
    /// `submit` that enqueues the computation and removed (waiters drained)
    /// by the worker that finishes it.
    inflight: Mutex<HashMap<JobKey, Vec<Waiter>>>,
    shutdown: AtomicBool,
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    failed: AtomicU64,
    oracle_calls_issued: AtomicU64,
}

/// Counts engine rounds into the running job's slot — and into every
/// waiter currently coalesced onto it, so a client polling a coalesced
/// job sees the same live progress as the lead submission.
struct SlotProgress<'a> {
    slot: &'a JobSlot,
    key: &'a JobKey,
    inflight: &'a Mutex<HashMap<JobKey, Vec<Waiter>>>,
}

impl RoundObserver for SlotProgress<'_> {
    fn on_round(&self, round: usize, _record: &RoundRecord) {
        self.slot.rounds.store(round, Relaxed);
        // One short map lock per engine round (tens per job) is noise next
        // to the oracle calls the round just made.
        if let Ok(inflight) = self.inflight.lock() {
            if let Some(waiters) = inflight.get(self.key) {
                for w in waiters {
                    w.slot.rounds.store(round, Relaxed);
                }
            }
        }
    }
}

/// Best-effort text from a caught panic payload (`&str` and `String`
/// cover what `panic!` produces in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "unknown panic payload"
    }
}

impl<O: SegmentOracle<Gate>> Inner<O> {
    fn complete(&self, slot: &JobSlot, result: JobResult) {
        if result.cache_hit {
            self.cache_hits.fetch_add(1, Relaxed);
        }
        self.completed.fetch_add(1, Relaxed);
        slot.rounds.store(result.stats.rounds, Relaxed);
        slot.fulfil(Arc::new(result));
    }

    /// Drains and fulfils every waiter parked on `key`. Must run after the
    /// result is in the cache: once the in-flight entry is gone, duplicate
    /// submissions fall through to the cache probe, so the ordering
    /// guarantees they find the result there.
    fn settle_waiters(&self, key: &JobKey, circuit: &Circuit, stats: &PopqcStats) {
        let waiters = self
            .inflight
            .lock()
            .expect("inflight table poisoned")
            .remove(key);
        for w in waiters.into_iter().flatten() {
            self.coalesced.fetch_add(1, Relaxed);
            let slot = w.slot;
            self.complete(
                &slot,
                JobResult {
                    circuit: circuit.clone(),
                    stats: stats.clone(),
                    cache_hit: true,
                    coalesced: true,
                    error: None,
                    key: key.clone(),
                    queue_nanos: w.attached_at.elapsed().as_nanos() as u64,
                    run_nanos: 0,
                },
            );
        }
    }

    fn run_job(&self, job: QueuedJob, pool: &rayon::ThreadPool) {
        let queue_nanos = job.enqueued_at.elapsed().as_nanos() as u64;
        // Second probe: an identical job submitted earlier may have
        // completed while this one sat in the queue (possible when the
        // earlier job's in-flight entry was removed between this job's
        // submit-time cache probe and its in-flight check).
        if let Some(cached) = self.cache.get(&job.key) {
            self.settle_waiters(&job.key, &cached.circuit, &cached.stats);
            self.complete(
                &job.slot,
                JobResult {
                    circuit: cached.circuit.clone(),
                    stats: cached.stats.clone(),
                    cache_hit: true,
                    coalesced: false,
                    error: None,
                    key: job.key,
                    queue_nanos,
                    run_nanos: 0,
                },
            );
            return;
        }

        let t0 = Instant::now();
        let observer = SlotProgress {
            slot: &job.slot,
            key: &job.key,
            inflight: &self.inflight,
        };
        let mut guard = InflightGuard {
            inflight: &self.inflight,
            queue: &self.queue,
            work_ready: &self.work_ready,
            circuit: &job.circuit,
            key: &job.key,
            armed: true,
        };
        // The oracle is a public trait clients implement: a panic inside it
        // must neither unwind through the worker thread (shrinking the
        // fixed pool) nor leave the lead slot pending forever. Catch it,
        // let the still-armed guard re-enqueue the coalesced waiters as
        // independent retries, and fulfil the lead slot with an
        // error-shaped result so its client unblocks.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                optimize_circuit_observed(&job.circuit, &self.oracle, &job.key.config, &observer)
            })
        }));
        let (optimized, stats) = match outcome {
            Ok(run) => run,
            Err(payload) => {
                drop(guard); // armed: removes the in-flight entry, re-enqueues waiters
                let run_nanos = t0.elapsed().as_nanos() as u64;
                self.failed.fetch_add(1, Relaxed);
                self.complete(
                    &job.slot,
                    JobResult {
                        circuit: job.circuit,
                        stats: PopqcStats::default(),
                        cache_hit: false,
                        coalesced: false,
                        // `&*payload`, not `&payload`: coercing the Box
                        // itself to `&dyn Any` would make every downcast
                        // miss.
                        error: Some(format!(
                            "optimization panicked: {}",
                            panic_message(&*payload)
                        )),
                        key: job.key,
                        queue_nanos,
                        run_nanos,
                    },
                );
                return;
            }
        };
        guard.armed = false;
        drop(guard); // release the borrows of `job` before it is moved below
        let run_nanos = t0.elapsed().as_nanos() as u64;

        self.oracle_calls_issued
            .fetch_add(stats.oracle_calls, Relaxed);
        self.cache.insert(
            job.key.clone(),
            Arc::new(CachedRun {
                circuit: optimized.clone(),
                stats: stats.clone(),
            }),
        );
        self.settle_waiters(&job.key, &optimized, &stats);
        self.complete(
            &job.slot,
            JobResult {
                circuit: optimized,
                stats,
                cache_hit: false,
                coalesced: false,
                error: None,
                key: job.key,
                queue_nanos,
                run_nanos,
            },
        );
    }

    fn worker_loop(&self) {
        // One engine pool per worker, reused across jobs: with a real
        // thread-pool implementation, building per job would spawn and tear
        // down OS threads on the hot path.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.threads_per_job)
            .build()
            .expect("per-worker thread pool");
        loop {
            let job = {
                let mut q = self.queue.lock().expect("job queue poisoned");
                loop {
                    if let Some(job) = q.pop_front() {
                        break job;
                    }
                    if self.shutdown.load(Relaxed) {
                        return;
                    }
                    q = self.work_ready.wait(q).expect("job queue poisoned");
                }
            };
            // `run_job` already converts oracle panics into error-shaped
            // results; this is the last line of defence so no panic
            // whatsoever can shrink the fixed worker pool.
            let _ =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_job(job, &pool)));
        }
    }
}

/// The in-process batch optimization service. See the module docs for the
/// architecture; construct with [`OptimizationService::new`], submit with
/// [`submit`](OptimizationService::submit) /
/// [`submit_batch`](OptimizationService::submit_batch), and audit with
/// [`stats`](OptimizationService::stats).
///
/// Dropping the service drains the queue (every outstanding
/// [`JobHandle`] still completes) and joins the workers.
pub struct OptimizationService<O: SegmentOracle<Gate> + Send + Sync + 'static> {
    inner: Arc<Inner<O>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    worker_count: usize,
    threads_per_job: usize,
}

impl<O: SegmentOracle<Gate> + Send + Sync + 'static> OptimizationService<O> {
    /// Spawns the worker pool. The service owns `oracle`; its
    /// [`SegmentOracle::name`] becomes the cache key's oracle id, so two
    /// oracles with the same name MUST behave identically (the workspace's
    /// named constructors guarantee this; for custom-parameterized oracles
    /// use [`with_oracle_id`](Self::with_oracle_id)).
    pub fn new(oracle: O, config: ServiceConfig) -> OptimizationService<O> {
        let id = oracle.name().to_string();
        OptimizationService::with_oracle_id(oracle, id, config)
    }

    /// [`new`](Self::new) with an explicit cache-key oracle id.
    pub fn with_oracle_id(
        oracle: O,
        oracle_id: String,
        config: ServiceConfig,
    ) -> OptimizationService<O> {
        let (workers, threads_per_job) = config.resolved();
        let inner = Arc::new(Inner {
            oracle,
            oracle_id,
            threads_per_job,
            cache: ShardedLruCache::new(config.cache_capacity, config.cache_shards),
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            inflight: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            oracle_calls_issued: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("qsvc-worker-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawn service worker")
            })
            .collect();
        OptimizationService {
            inner,
            workers: handles,
            worker_count: workers,
            threads_per_job,
        }
    }

    /// With the default [`ServiceConfig`].
    pub fn with_defaults(oracle: O) -> OptimizationService<O> {
        OptimizationService::new(oracle, ServiceConfig::default())
    }

    /// The key `circuit` would be cached under with this service's oracle.
    pub fn key_for(&self, circuit: &Circuit, cfg: &PopqcConfig) -> JobKey {
        JobKey {
            fingerprint: circuit.fingerprint(),
            oracle_id: self.inner.oracle_id.clone(),
            config: cfg.clone(),
        }
    }

    /// Submits one circuit. Cache hits complete immediately (the handle is
    /// already fulfilled); misses are queued for the worker pool.
    pub fn submit(&self, circuit: Circuit, cfg: &PopqcConfig) -> JobHandle {
        self.inner.submitted.fetch_add(1, Relaxed);
        let key = self.key_for(&circuit, cfg);
        let slot = JobSlot::new();

        if let Some(cached) = self.inner.cache.get(&key) {
            self.inner.complete(
                &slot,
                JobResult {
                    circuit: cached.circuit.clone(),
                    stats: cached.stats.clone(),
                    cache_hit: true,
                    coalesced: false,
                    error: None,
                    key,
                    queue_nanos: 0,
                    run_nanos: 0,
                },
            );
            return JobHandle { slot };
        }

        // In-flight coalescing: if an identical job is already queued or
        // running, park this submission as a waiter on it instead of
        // computing again. The finishing worker fulfils all waiters.
        {
            let mut inflight = self.inner.inflight.lock().expect("inflight table poisoned");
            if let Some(waiters) = inflight.get_mut(&key) {
                waiters.push(Waiter {
                    slot: Arc::clone(&slot),
                    attached_at: Instant::now(),
                });
                return JobHandle { slot };
            }
            inflight.insert(key.clone(), Vec::new());
        }

        let job = QueuedJob {
            circuit,
            key,
            slot: Arc::clone(&slot),
            enqueued_at: Instant::now(),
        };
        {
            let mut q = self.inner.queue.lock().expect("job queue poisoned");
            q.push_back(job);
        }
        self.inner.work_ready.notify_one();
        JobHandle { slot }
    }

    /// Submits a homogeneous batch (one engine config for all circuits).
    pub fn submit_batch(
        &self,
        circuits: impl IntoIterator<Item = Circuit>,
        cfg: &PopqcConfig,
    ) -> BatchHandle {
        let submitted_at = Instant::now();
        let handles = circuits.into_iter().map(|c| self.submit(c, cfg)).collect();
        BatchHandle {
            handles,
            submitted_at,
        }
    }

    /// Point-in-time service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.inner.submitted.load(Relaxed),
            completed: self.inner.completed.load(Relaxed),
            cache_hits: self.inner.cache_hits.load(Relaxed),
            coalesced: self.inner.coalesced.load(Relaxed),
            failed: self.inner.failed.load(Relaxed),
            oracle_calls_issued: self.inner.oracle_calls_issued.load(Relaxed),
            cache: self.inner.cache.stats(),
        }
    }

    /// Worker pool width.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Engine threads each job runs with.
    pub fn threads_per_job(&self) -> usize {
        self.threads_per_job
    }
}

impl<O: SegmentOracle<Gate> + Send + Sync + 'static> Drop for OptimizationService<O> {
    fn drop(&mut self) {
        // Set the flag while holding the queue lock: a worker is then either
        // before its shutdown check (and will see the flag) or already inside
        // `wait` (and will receive the notification) — storing without the
        // lock could interleave inside a worker's check-then-wait window and
        // lose the wakeup, hanging `join` forever.
        {
            let _q = self.inner.queue.lock().expect("job queue poisoned");
            self.inner.shutdown.store(true, Relaxed);
        }
        self.inner.work_ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}
