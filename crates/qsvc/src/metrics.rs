//! The service's `popqc-obs` instruments: per-oracle job counters, the
//! job and oracle-call latency histograms (the paper's O(n·Ω) work bound
//! made observable on live traffic), queue depth, and per-tier store
//! latencies.
//!
//! Counter updates happen at the same points as the `ServiceStats`
//! atomics in `service.rs`, so a Prometheus scrape and `GET /v1/stats`
//! agree. The store entry/byte gauges are the exception: they are
//! *synced at scrape time* from [`StoreStats`] via [`sync_store_gauges`]
//! (the store already maintains its own gauges; mirroring them on every
//! put would just duplicate that bookkeeping on the hot path).

use crate::store::StoreStats;
use std::sync::Arc;

fn cache_hits_vec() -> &'static qobs::CounterVec {
    qobs::static_counter_vec!(
        "popqc_cache_hits_total",
        "Jobs answered from the result store, by oracle id (excludes coalesced jobs).",
        &["oracle"],
    )
}

fn cache_misses_vec() -> &'static qobs::CounterVec {
    qobs::static_counter_vec!(
        "popqc_cache_misses_total",
        "Jobs that missed the result store and ran the engine, by oracle id.",
        &["oracle"],
    )
}

fn jobs_coalesced_vec() -> &'static qobs::CounterVec {
    qobs::static_counter_vec!(
        "popqc_jobs_coalesced_total",
        "Jobs that coalesced onto an identical in-flight computation, by oracle id.",
        &["oracle"],
    )
}

fn job_duration_vec() -> &'static qobs::HistogramVec {
    qobs::static_histogram_vec!(
        "popqc_job_duration_seconds",
        "Submit-to-done job latency (queue wait plus computation), by oracle id.",
        &["oracle"],
        &qobs::LATENCY_BUCKETS,
    )
}

fn oracle_call_duration_vec() -> &'static qobs::HistogramVec {
    qobs::static_histogram_vec!(
        "popqc_oracle_call_duration_seconds",
        "Wall-clock latency of each individual segment-oracle call, by oracle id.",
        &["oracle"],
        &qobs::LATENCY_BUCKETS,
    )
}

fn store_get_duration_vec() -> &'static qobs::HistogramVec {
    qobs::static_histogram_vec!(
        "popqc_store_get_duration_seconds",
        "Result-store lookup latency, by tier.",
        &["tier"],
        &qobs::LATENCY_BUCKETS,
    )
}

fn store_put_duration_vec() -> &'static qobs::HistogramVec {
    qobs::static_histogram_vec!(
        "popqc_store_put_duration_seconds",
        "Result-store write latency, by tier.",
        &["tier"],
        &qobs::LATENCY_BUCKETS,
    )
}

fn remote_roundtrip_vec() -> &'static qobs::HistogramVec {
    qobs::static_histogram_vec!(
        "popqc_remote_roundtrip_seconds",
        "Round-trip latency of remote cache-server requests, by operation \
         (successful request-response pairs only).",
        &["op"],
        &qobs::LATENCY_BUCKETS,
    )
}

fn store_entries_vec() -> &'static qobs::GaugeVec {
    qobs::static_gauge_vec!(
        "popqc_store_entries",
        "Entries resident per store tier (synced at scrape time).",
        &["tier"],
    )
}

fn store_bytes_vec() -> &'static qobs::GaugeVec {
    qobs::static_gauge_vec!(
        "popqc_store_bytes",
        "Approximate resident bytes per store tier (synced at scrape time).",
        &["tier"],
    )
}

/// Jobs answered from the result store, per oracle id (submit-time and
/// dequeue-time hits; coalesced jobs are counted separately).
pub(crate) fn cache_hits(oracle: &str) -> Arc<qobs::Counter> {
    cache_hits_vec().with(&[oracle])
}

/// Jobs that missed the store and ran the engine, per oracle id.
pub(crate) fn cache_misses(oracle: &str) -> Arc<qobs::Counter> {
    cache_misses_vec().with(&[oracle])
}

/// Jobs that attached to an identical in-flight computation, per oracle.
pub(crate) fn jobs_coalesced(oracle: &str) -> Arc<qobs::Counter> {
    jobs_coalesced_vec().with(&[oracle])
}

/// Jobs that completed with an error (oracle panic).
pub(crate) fn jobs_failed() -> &'static qobs::Counter {
    qobs::static_counter!(
        "popqc_jobs_failed_total",
        "Jobs that completed with an error instead of an optimized circuit.",
    )
}

/// Jobs waiting in the service queue right now.
pub(crate) fn queue_depth() -> &'static qobs::Gauge {
    qobs::static_gauge!(
        "popqc_queue_depth",
        "Jobs currently waiting in the service queue (excludes running jobs).",
    )
}

/// Submit→done latency per oracle id (queue wait + computation; zero-ish
/// for submit-time cache hits).
pub(crate) fn job_duration(oracle: &str) -> Arc<qobs::Histogram> {
    job_duration_vec().with(&[oracle])
}

/// Rounds each freshly computed job took to reach its fixpoint — the
/// paper's O(log n)-expected outer-loop count, as a distribution.
pub(crate) fn rounds_to_fixpoint() -> &'static qobs::Histogram {
    qobs::static_histogram!(
        "popqc_rounds_to_fixpoint",
        "Engine rounds per freshly computed job (cache hits excluded).",
        &qobs::COUNT_BUCKETS,
    )
}

/// Latency of each individual oracle call, per oracle id — the direct
/// O(n·Ω) observable: `_count` is the oracle work, `_sum` the time spent
/// inside the oracle across all parallel calls.
pub(crate) fn oracle_call_duration(oracle: &str) -> Arc<qobs::Histogram> {
    oracle_call_duration_vec().with(&[oracle])
}

/// Store lookup latency, per tier. Only the leaf tiers (`memory`,
/// `disk`) observe; `tiered` composes them, so its cost is already the
/// sum of what its tiers record.
pub(crate) fn store_get_duration(tier: &str) -> Arc<qobs::Histogram> {
    store_get_duration_vec().with(&[tier])
}

/// Store write latency, per tier (leaf tiers only, as for gets).
pub(crate) fn store_put_duration(tier: &str) -> Arc<qobs::Histogram> {
    store_put_duration_vec().with(&[tier])
}

/// Remote-tier lookups the cache server answered.
pub(crate) fn remote_hits() -> &'static qobs::Counter {
    qobs::static_counter!(
        "popqc_remote_hits_total",
        "Remote-tier lookups the cache server answered with a valid entry.",
    )
}

/// Remote-tier lookups that missed (including degraded local misses).
pub(crate) fn remote_misses() -> &'static qobs::Counter {
    qobs::static_counter!(
        "popqc_remote_misses_total",
        "Remote-tier lookups that missed, including degraded local misses \
         while the cache server is unreachable.",
    )
}

/// Remote-tier operations degraded by an unreachable or misbehaving
/// server (never surfaced as job errors — the tier falls back to a miss).
pub(crate) fn remote_errors() -> &'static qobs::Counter {
    qobs::static_counter!(
        "popqc_remote_errors_total",
        "Remote-tier operations degraded to a local miss or dropped write \
         (server unreachable, timeout, or invalid reply).",
    )
}

/// Round-trip latency of one remote request, by operation name.
pub(crate) fn remote_roundtrip(op: &str) -> Arc<qobs::Histogram> {
    remote_roundtrip_vec().with(&[op])
}

/// Segment-cache lookups served without an oracle call.
pub(crate) fn segcache_hits() -> &'static qobs::Counter {
    qobs::static_counter!(
        "popqc_segcache_hits_total",
        "Engine segment lookups served by the segment cache (each replaces \
         one oracle call).",
    )
}

/// Segment-cache lookups that fell through to the oracle.
pub(crate) fn segcache_misses() -> &'static qobs::Counter {
    qobs::static_counter!(
        "popqc_segcache_misses_total",
        "Engine segment lookups that missed the segment cache and ran the \
         oracle.",
    )
}

/// Segment-cache entries evicted to make room.
pub(crate) fn segcache_evictions() -> &'static qobs::Counter {
    qobs::static_counter!(
        "popqc_segcache_evictions_total",
        "Segment-cache entries evicted to make room (LRU, per shard).",
    )
}

/// Latency of one segment-cache lookup (fingerprint + probe + template
/// materialization), hit or miss.
pub(crate) fn segcache_lookup_duration() -> &'static qobs::Histogram {
    qobs::static_histogram!(
        "popqc_segcache_lookup_duration_seconds",
        "Segment-cache lookup latency (fingerprinting, probes, and template \
         materialization; hits and misses alike).",
        &qobs::LATENCY_BUCKETS,
    )
}

fn cached_requests_vec() -> &'static qobs::CounterVec {
    qobs::static_counter_vec!(
        "popqc_cached_requests_total",
        "Requests handled by the `popqc cached` server, by operation.",
        &["op"],
    )
}

/// `popqc cached` server-side request counter, by operation name.
pub(crate) fn cached_requests(op: &str) -> Arc<qobs::Counter> {
    cached_requests_vec().with(&[op])
}

/// Entries resident in the `popqc cached` server's store.
pub(crate) fn cached_entries() -> &'static qobs::Gauge {
    qobs::static_gauge!(
        "popqc_cached_entries",
        "Entries resident in the cache server's authoritative store tier.",
    )
}

/// Bytes resident in the `popqc cached` server's store.
pub(crate) fn cached_bytes() -> &'static qobs::Gauge {
    qobs::static_gauge!(
        "popqc_cached_bytes",
        "Bytes resident in the cache server's store, summed across tiers.",
    )
}

/// Copies the store's own entry/byte gauges into the Prometheus ones —
/// call right before rendering a scrape so the series reflect the store
/// *now* without per-put mirroring.
pub fn sync_store_gauges(stats: &StoreStats) {
    for tier in &stats.tiers {
        store_entries_vec()
            .with(&[&tier.tier])
            .set(tier.entries.min(i64::MAX as u64) as i64);
        store_bytes_vec()
            .with(&[&tier.tier])
            .set(tier.bytes.min(i64::MAX as u64) as i64);
    }
}

/// Registers every service metric family (without recording anything) so
/// the series inventory is complete from the first scrape.
pub fn describe_metrics() {
    cache_hits_vec();
    cache_misses_vec();
    jobs_coalesced_vec();
    jobs_failed();
    queue_depth();
    job_duration_vec();
    rounds_to_fixpoint();
    oracle_call_duration_vec();
    store_get_duration_vec();
    store_put_duration_vec();
    store_entries_vec();
    store_bytes_vec();
    remote_hits();
    remote_misses();
    remote_errors();
    remote_roundtrip_vec();
    segcache_hits();
    segcache_misses();
    segcache_evictions();
    segcache_lookup_duration();
    cached_requests_vec();
    cached_entries();
    cached_bytes();
}
