//! # popqc-svc — the batch optimization service
//!
//! The POPQC paper parallelizes optimization *within* one circuit; this
//! crate adds the orthogonal production axis: parallelism *across*
//! circuits, with memoization and full accounting. It is the outer
//! scheduling layer the ROADMAP's "serve heavy traffic" north star needs —
//! each circuit-optimization is a job, the engine is the inner kernel.
//!
//! * [`OptimizationService`] — fixed worker pool (outer parallelism) where
//!   each job runs the engine under a bounded thread budget (inner
//!   parallelism), so one huge circuit cannot starve the queue.
//! * [`ShardedLruCache`] — results memoized under
//!   [`JobKey`] = (structural circuit fingerprint, oracle id, engine
//!   config); identical resubmissions cost zero oracle calls. Identical
//!   jobs submitted *concurrently* coalesce onto one in-flight computation
//!   (see [`ServiceStats::coalesced`]).
//! * [`JobHandle`] / [`BatchHandle`] / [`BatchResult`] — completion,
//!   live round-progress, and per-job + aggregate statistics with
//!   cache-hit attribution.
//! * [`report`] — the JSON stats schema the `popqc` CLI emits.
//!
//! Network-free by design: the HTTP frontend is the separate `popqc-http`
//! crate, which wraps this API without this crate knowing about sockets.
//!
//! ## Example
//!
//! ```
//! use qsvc::{OptimizationService, ServiceConfig};
//! use popqc_core::PopqcConfig;
//! use qoracle::RuleBasedOptimizer;
//! use qcir::{Angle, Circuit};
//!
//! let svc = OptimizationService::new(
//!     RuleBasedOptimizer::oracle(),
//!     ServiceConfig { workers: 2, ..ServiceConfig::default() },
//! );
//! let mut c = Circuit::new(2);
//! c.h(0).h(0).cnot(0, 1).rz(1, Angle::PI_4).rz(1, Angle::PI_4);
//!
//! let cfg = PopqcConfig::with_omega(4);
//! let first = svc.submit(c.clone(), &cfg).wait();
//! assert!(!first.cache_hit);
//!
//! // Resubmission: served from cache, zero new oracle calls.
//! let again = svc.submit(c, &cfg).wait();
//! assert!(again.cache_hit);
//! assert_eq!(again.circuit, first.circuit);
//! assert_eq!(svc.stats().cache_hits, 1);
//! ```

pub mod cache;
pub mod report;
pub mod service;

pub use cache::{CacheStats, ShardedLruCache};
pub use service::{
    BatchHandle, BatchResult, JobHandle, JobKey, JobResult, OptimizationService, ServiceConfig,
    ServiceStats,
};
