//! # popqc-svc — the batch optimization service
//!
//! The POPQC paper parallelizes optimization *within* one circuit; this
//! crate adds the orthogonal production axis: parallelism *across*
//! circuits, with memoization, per-request oracle selection, and full
//! accounting. It is the outer scheduling layer the ROADMAP's "serve heavy
//! traffic" north star needs — each circuit-optimization is a job, the
//! engine is the inner kernel.
//!
//! * [`OptimizationService`] — fixed worker pool (outer parallelism) where
//!   each job runs the engine under a bounded thread budget (inner
//!   parallelism), so one huge circuit cannot starve the queue.
//! * [`OracleRegistry`] — named, dynamically dispatched oracles
//!   (`Arc<dyn SegmentOracle<Gate>>`); every submission selects its oracle
//!   (and engine config) per job, so one running service answers
//!   mixed-oracle traffic. [`OracleRegistry::builtin`] registers the
//!   workspace oracles (`rule_based`, `rule_single_pass`, `search`,
//!   `structural`).
//! * [`ResultStore`] — the pluggable memoization backend the service owns
//!   as `Arc<dyn ResultStore>`: [`MemoryStore`] (the [`ShardedLruCache`]
//!   LRU, the default), [`DiskStore`] (one versioned file per entry; warm
//!   starts survive restarts), [`TieredStore`] (memory in front of disk,
//!   write-through + promote-on-hit), [`RemoteStore`] (a shared
//!   `popqc cached` server over the [`wire`] protocol, so replica fleets
//!   warm one another), and [`NullStore`] (benchmark baseline). Results
//!   are keyed by [`JobKey`] = (structural circuit
//!   fingerprint, registry oracle id, engine config); identical
//!   resubmissions cost zero oracle calls, and mixed-oracle traffic
//!   shares one store without cross-contamination. Identical jobs
//!   submitted *concurrently* coalesce onto one in-flight computation
//!   (see [`ServiceStats::coalesced`]).
//! * [`segcache`] — the same seam one level down: a bounded
//!   [`SegmentCacheLayer`] of per-*segment* rewrites consulted inside the
//!   engine's hot path, keyed angle-abstractly for oracles that declare
//!   `angle_independent()` so parameterized (VQE/QAOA-style) resubmissions
//!   reuse every structurally-unchanged segment's rewrite with near-zero
//!   marginal oracle calls. Off by default
//!   ([`ServiceConfig::seg_cache_capacity`] `= 0`); the CLI enables it.
//! * [`ServiceError`] — the closed failure taxonomy (unknown oracle,
//!   duplicate registration, oracle crash); no panic or stringly error
//!   crosses this crate's API.
//! * [`JobHandle`] / [`BatchHandle`] / [`BatchResult`] — completion,
//!   live round-progress, and per-job + aggregate statistics with
//!   cache-hit attribution.
//! * [`report`] — thin adapters from results to the versioned `popqc-api`
//!   DTOs that the HTTP frontend and the `popqc` CLI both emit.
//!
//! Network-free by design: the HTTP frontend is the separate `popqc-http`
//! crate, which wraps this API without this crate knowing about sockets.
//!
//! ## Example
//!
//! ```
//! use qsvc::{OptimizationService, OracleRegistry, ServiceConfig};
//! use popqc_core::PopqcConfig;
//! use qcir::{Angle, Circuit};
//!
//! let svc = OptimizationService::new(
//!     OracleRegistry::builtin(),
//!     ServiceConfig { workers: 2, ..ServiceConfig::default() },
//! );
//! let mut c = Circuit::new(2);
//! c.h(0).h(0).cnot(0, 1).rz(1, Angle::PI_4).rz(1, Angle::PI_4);
//!
//! let cfg = PopqcConfig::with_omega(4);
//! let first = svc.submit(c.clone(), &cfg).wait();
//! assert!(!first.cache_hit);
//!
//! // Resubmission: served from cache, zero new oracle calls.
//! let again = svc.submit(c.clone(), &cfg).wait();
//! assert!(again.cache_hit);
//! assert_eq!(again.circuit, first.circuit);
//!
//! // Same circuit through a different registered oracle: a distinct
//! // cache entry, selected per request.
//! let other = svc.submit_as("rule_single_pass", c, &cfg).unwrap().wait();
//! # let _ = other;
//! assert_eq!(svc.stats().cache_hits, 1);
//! ```

pub mod cache;
pub mod metrics;
pub mod remote;
pub mod report;
pub mod segcache;
pub mod service;
pub mod store;
pub mod wire;

pub use cache::{CacheStats, ShardedLruCache};
pub use remote::{CacheServer, CacheServerConfig, RemoteConfig, RemoteStore};
pub use segcache::{
    JobSegmentCache, MemorySegmentCache, NullSegmentCache, SegCacheStats, SegEntry, SegKey,
    SegTemplate, SegmentCache, SegmentCacheLayer, TemplateGate,
};
pub use service::{
    BatchHandle, BatchResult, DynOracle, JobHandle, JobKey, JobRequest, JobResult,
    OptimizationService, OracleRegistry, ServiceConfig, ServiceError, ServiceStats,
};
pub use store::{
    build_store, decode_entry, decode_entry_owned, encode_entry, CachedRun, DiskStore,
    EntryRejection, MemoryStore, NullStore, ResultStore, StoreStats, StoreTier, TierStats,
    TieredStore,
};
