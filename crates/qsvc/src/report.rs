//! JSON batch reports.
//!
//! Turns a [`BatchResult`] plus the service counters
//! into the stats document the `popqc` CLI writes. Kept in the service
//! crate (rather than the CLI) so the schema is testable and reusable by a
//! future HTTP frontend.

use crate::service::{BatchResult, JobResult, ServiceStats};
use serde_json::{json, Value};

/// The per-job stats object: the one schema shared by [`batch_report`]
/// and the HTTP frontend's job documents, so the two cannot drift when
/// [`JobResult`] grows a field.
pub fn job_report(r: &JobResult) -> Value {
    json!({
        "fingerprint": r.key.fingerprint.to_hex(),
        "oracle": r.key.oracle_id.as_str(),
        "omega": r.key.config.omega,
        "input_gates": r.stats.initial_units,
        "output_gates": r.stats.final_units,
        "reduction": r.stats.reduction(),
        "rounds": r.stats.rounds,
        "oracle_calls": r.stats.oracle_calls,
        "cache_hit": r.cache_hit,
        "coalesced": r.coalesced,
        "error": r.error.as_deref(),
        "queue_seconds": r.queue_nanos as f64 / 1e9,
        "run_seconds": r.run_nanos as f64 / 1e9,
    })
}

/// Per-pass report: one batch submission of `labels.len()` jobs.
///
/// `labels` must parallel `batch.results` (submission order); pass file
/// names, family names, or any stable identifier.
pub fn batch_report(labels: &[String], batch: &BatchResult, pass: usize) -> Value {
    assert_eq!(
        labels.len(),
        batch.results.len(),
        "one label per job required"
    );
    let jobs: Vec<Value> = labels
        .iter()
        .zip(&batch.results)
        .map(|(label, r)| {
            let mut job = json!({ "label": label.as_str() });
            if let (Value::Object(dst), Value::Object(src)) = (&mut job, job_report(r)) {
                dst.extend(src);
            }
            job
        })
        .collect();
    let (gates_in, gates_out) = batch.gate_totals();
    json!({
        "pass": pass,
        "jobs": jobs,
        "job_count": batch.results.len(),
        "cache_hits": batch.cache_hits(),
        "oracle_calls_issued": batch.oracle_calls_issued(),
        "gates_in": gates_in,
        "gates_out": gates_out,
        "wall_seconds": batch.wall_nanos as f64 / 1e9,
        "jobs_per_sec": batch.jobs_per_sec(),
    })
}

/// The service's cumulative counters as one JSON object. Shared by
/// [`service_report`] and the HTTP frontend's `GET /v1/stats` endpoint so
/// both emit the same schema.
pub fn stats_report(stats: &ServiceStats, workers: usize, threads_per_job: usize) -> Value {
    json!({
        "workers": workers,
        "threads_per_job": threads_per_job,
        "submitted": stats.submitted,
        "completed": stats.completed,
        "cache_hits": stats.cache_hits,
        "coalesced": stats.coalesced,
        "failed": stats.failed,
        "oracle_calls_issued": stats.oracle_calls_issued,
        "cache_entries": stats.cache.entries,
        "cache_evictions": stats.cache.evictions,
    })
}

/// The full report: every pass plus the service's cumulative counters.
pub fn service_report(
    passes: Vec<Value>,
    stats: &ServiceStats,
    workers: usize,
    threads_per_job: usize,
) -> Value {
    json!({
        "passes": passes,
        "service": stats_report(stats, workers, threads_per_job),
    })
}
