//! Thin adapters from service results to the versioned `qapi` DTOs.
//!
//! This module owns NO schema of its own any more: every field that
//! crosses the process boundary is declared once in `popqc-api`, and the
//! functions here only translate [`JobResult`] / [`BatchResult`] /
//! [`ServiceStats`] into those DTOs. The HTTP frontend, the `popqc` CLI,
//! and the bench report all call these same adapters, so the three
//! surfaces emit byte-identical documents for the same job.

use crate::service::{BatchResult, JobResult, ServiceStats};
use crate::store::StoreStats;

/// One tier of a [`StoreStats`] as the shared wire fragment.
fn tier_report(t: &crate::store::TierStats) -> qapi::CacheTierReport {
    qapi::CacheTierReport {
        tier: t.tier.clone(),
        entries: t.entries,
        hits: t.hits,
        misses: t.misses,
        evictions: t.evictions,
        bytes: t.bytes,
        errors: t.errors,
    }
}

/// The store's per-tier counters as the `GET /v1/cache` document (and the
/// `popqc cache stats` output) — one adapter for both, so the admin
/// surfaces cannot drift.
pub fn cache_report(store: &StoreStats) -> qapi::CacheReport {
    qapi::CacheReport {
        backend: store.backend.clone(),
        entries: store.entries(),
        hits: store.hits(),
        misses: store.misses(),
        evictions: store.evictions(),
        bytes: store.bytes(),
        tiers: store.tiers.iter().map(tier_report).collect(),
    }
}

/// The per-job stats fragment for `r`, without `label`/`qasm` (contexts
/// attach those: [`batch_report`] sets the label, [`job_status`] attaches
/// the optimized QASM).
pub fn job_report(r: &JobResult) -> qapi::JobReport {
    qapi::JobReport {
        label: None,
        fingerprint: r.key.fingerprint.to_hex(),
        oracle: r.key.oracle_id.clone(),
        omega: r.key.config.omega as u64,
        input_gates: r.stats.initial_units as u64,
        output_gates: r.stats.final_units as u64,
        reduction: r.stats.reduction(),
        rounds: r.stats.rounds as u64,
        oracle_calls: r.stats.oracle_calls,
        cache_hit: r.cache_hit,
        coalesced: r.coalesced,
        error: r.error.as_ref().map(ToString::to_string),
        queue_seconds: r.queue_nanos as f64 / 1e9,
        run_seconds: r.run_nanos as f64 / 1e9,
        qasm: None,
    }
}

/// The job document served by `POST /v1/optimize`, `GET /v1/jobs/{id}`,
/// and emitted by `popqc optimize --json` — ONE builder for all three, so
/// the documents cannot diverge. The optimized QASM is attached for
/// completed successful jobs; a failed job carries only its `error` (its
/// `circuit` is the unoptimized input, which must never be passed off as
/// a result).
pub fn job_status(
    job_id: u64,
    label: Option<&str>,
    rounds_completed: usize,
    result: Option<&JobResult>,
) -> qapi::JobStatus {
    qapi::JobStatus {
        job_id,
        label: label.map(str::to_string),
        done: result.is_some(),
        rounds_completed: rounds_completed as u64,
        result: result.map(|r| {
            let mut report = job_report(r);
            if r.error.is_none() {
                report.qasm = Some(qcir::qasm::to_qasm(&r.circuit));
            }
            report
        }),
    }
}

/// Per-pass report: one batch submission of `labels.len()` jobs.
///
/// `labels` must parallel `batch.results` (submission order); pass file
/// names, family names, or any stable identifier. With `include_qasm` the
/// optimized circuit is attached per successful job (the HTTP batch
/// endpoint is self-contained; the CLI delivers circuits as files and
/// omits them).
pub fn batch_report(
    labels: &[String],
    batch: &BatchResult,
    pass: usize,
    include_qasm: bool,
) -> qapi::BatchResponse {
    assert_eq!(
        labels.len(),
        batch.results.len(),
        "one label per job required"
    );
    let jobs = labels
        .iter()
        .zip(&batch.results)
        .map(|(label, r)| {
            let mut report = job_report(r);
            report.label = Some(label.clone());
            if include_qasm && r.error.is_none() {
                report.qasm = Some(qcir::qasm::to_qasm(&r.circuit));
            }
            report
        })
        .collect();
    let (gates_in, gates_out) = batch.gate_totals();
    qapi::BatchResponse {
        pass: pass as u64,
        jobs,
        job_count: batch.results.len() as u64,
        cache_hits: batch.cache_hits() as u64,
        oracle_calls_issued: batch.oracle_calls_issued(),
        gates_in: gates_in as u64,
        gates_out: gates_out as u64,
        wall_seconds: batch.wall_nanos as f64 / 1e9,
        jobs_per_sec: batch.jobs_per_sec(),
    }
}

/// The executor counters as the shared wire fragment.
fn executor_report(e: &qexec::ExecStats) -> qapi::ExecutorReport {
    qapi::ExecutorReport {
        workers: e.workers,
        grain: e.grain,
        parallel_ops: e.parallel_ops,
        tasks_executed: e.tasks_executed,
        splits: e.splits,
        steals: e.steals,
    }
}

/// The segment-cache counters as the shared wire fragment.
fn segment_cache_report(s: &crate::segcache::SegCacheStats) -> qapi::SegmentCacheReport {
    qapi::SegmentCacheReport {
        enabled: s.enabled,
        capacity: s.capacity as u64,
        entries: s.entries as u64,
        hits: s.hits,
        misses: s.misses,
        evictions: s.evictions,
    }
}

/// The service's cumulative counters as the shared [`qapi::StatsReport`]
/// DTO. `GET /v1/stats`, the CLI report, and the bench report all derive
/// from this one function, so their fields can never drift.
pub fn stats_report(
    stats: &ServiceStats,
    workers: usize,
    threads_per_job: usize,
) -> qapi::StatsReport {
    qapi::StatsReport {
        workers: workers as u64,
        threads_per_job: threads_per_job as u64,
        uptime_seconds: stats.uptime_seconds,
        version: qapi::VersionInfo::current(),
        submitted: stats.submitted,
        completed: stats.completed,
        cache_hits: stats.cache_hits,
        coalesced: stats.coalesced,
        failed: stats.failed,
        oracle_calls_issued: stats.oracle_calls_issued,
        cache_entries: stats.cache.entries as u64,
        cache_evictions: stats.cache.evictions,
        cache_backend: stats.store.backend.clone(),
        cache_tiers: stats.store.tiers.iter().map(tier_report).collect(),
        segment_cache: segment_cache_report(&stats.seg_cache),
        executor: executor_report(&stats.executor),
        jobs_tracked: None,
        frontend: None,
    }
}

/// The full CLI report: every pass plus the cumulative counters.
pub fn service_report(
    passes: Vec<qapi::BatchResponse>,
    stats: &ServiceStats,
    workers: usize,
    threads_per_job: usize,
) -> qapi::ServiceReport {
    qapi::ServiceReport {
        passes,
        service: stats_report(stats, workers, threads_per_job),
    }
}
