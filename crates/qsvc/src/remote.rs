//! The shared remote cache tier: [`RemoteStore`] (the client behind the
//! [`ResultStore`] seam) and [`CacheServer`] (what `popqc cached` runs).
//!
//! N `popqc serve` replicas pointing `--cache-addr` at one `popqc cached`
//! process behave as one coherent warm cache: a circuit optimized on
//! replica A is a zero-oracle-call hit on replica B. The wire protocol
//! lives in [`crate::wire`]; the entry encoding is byte-identical to the
//! disk tier's, so `store_format` and `oracle_version` travel end to end
//! and the server refuses stale entries exactly like a local `DiskStore`.
//!
//! ## Degradation contract
//!
//! The remote tier must **never** surface a network problem as a job
//! error or a wrong result:
//!
//! * every socket has connect/read/write timeouts;
//! * a failed request is retried a bounded number of times with backoff,
//!   on a fresh connection (the pooled ones are dropped — after a server
//!   restart they are all stale);
//! * when retries are exhausted the store marks the server down for a
//!   cooldown window and answers **local misses** (gets), drops writes
//!   (puts), and reports zeros (stats) without touching the network;
//! * after the cooldown the next operation reconnects, so recovery is
//!   automatic and hits resume;
//! * a `HIT` payload is re-validated against the requested key and
//!   oracle version before it is trusted — a confused or stale server
//!   degrades to a miss, never to a wrong circuit.
//!
//! Every degraded operation increments the tier's `errors` counter
//! (visible in `StatsReport.cache_tiers` and `/v1/metrics`), so a fleet
//! losing its cache server is observable while it keeps serving.

use crate::metrics;
use crate::service::JobKey;
use crate::store::{self, CachedRun, ResultStore, StoreStats, TierStats};
use crate::wire::{self, Frame, Op, WireError};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Client-side knobs for one [`RemoteStore`]. The defaults suit a
/// same-rack cache server; tests shrink the timeouts and cooldown to
/// exercise degradation quickly.
#[derive(Clone, Debug)]
pub struct RemoteConfig {
    /// `HOST:PORT` of the `popqc cached` server.
    pub addr: String,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Read/write timeout per frame.
    pub io_timeout: Duration,
    /// Retries after the first failed attempt (each on a fresh
    /// connection, with linear backoff).
    pub retries: u32,
    /// Base backoff between attempts (attempt `n` sleeps `n * backoff`).
    pub backoff: Duration,
    /// How long to answer local misses without touching the network
    /// after retries are exhausted (the circuit-breaker window).
    pub cooldown: Duration,
    /// Idle connections kept for reuse.
    pub pool_size: usize,
}

impl RemoteConfig {
    /// Production defaults for a server at `addr`.
    pub fn new(addr: impl Into<String>) -> RemoteConfig {
        RemoteConfig {
            addr: addr.into(),
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(5),
            retries: 2,
            backoff: Duration::from_millis(25),
            cooldown: Duration::from_secs(1),
            pool_size: 4,
        }
    }
}

/// [`ResultStore`] backend that proxies every operation to a
/// `popqc cached` server — see the module docs for the degradation
/// contract. Usually composed as the back of a [`crate::TieredStore`]
/// (`--cache-tier tiered --cache-addr …`) so repeat hits stay at RAM
/// speed and only first-touch lookups pay a round trip.
pub struct RemoteStore {
    cfg: RemoteConfig,
    /// Resolved once at construction; `127.0.0.1:0`-style test servers
    /// hand the store an already-bound port.
    targets: Vec<SocketAddr>,
    /// Idle connections for reuse; drained wholesale on any failure
    /// (after a server restart every pooled stream is stale).
    pool: Mutex<Vec<TcpStream>>,
    /// Circuit breaker: `Some(t)` means "answer local misses until `t`".
    down_until: Mutex<Option<Instant>>,
    hits: AtomicU64,
    misses: AtomicU64,
    errors: AtomicU64,
    get_timer: Arc<qobs::Histogram>,
    put_timer: Arc<qobs::Histogram>,
}

impl RemoteStore {
    /// Builds a client for `cfg.addr`. Fails only on an unresolvable
    /// address — an unreachable (not-yet-started) server is a degraded
    /// state, not a construction error, so fleet boot order never
    /// matters.
    pub fn new(cfg: RemoteConfig) -> Result<RemoteStore, String> {
        let targets: Vec<SocketAddr> = cfg
            .addr
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve cache server address {}: {e}", cfg.addr))?
            .collect();
        if targets.is_empty() {
            return Err(format!(
                "cache server address {} resolves to nothing",
                cfg.addr
            ));
        }
        Ok(RemoteStore {
            targets,
            pool: Mutex::new(Vec::new()),
            down_until: Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            get_timer: metrics::store_get_duration("remote"),
            put_timer: metrics::store_put_duration("remote"),
            cfg,
        })
    }

    /// The configured server address.
    pub fn addr(&self) -> &str {
        &self.cfg.addr
    }

    /// Whether the circuit breaker currently short-circuits to local
    /// misses (expired windows are cleared as a side effect).
    fn breaker_open(&self) -> bool {
        let mut down = self.down_until.lock().expect("remote breaker poisoned");
        match *down {
            Some(t) if Instant::now() < t => true,
            Some(_) => {
                *down = None;
                false
            }
            None => false,
        }
    }

    fn trip_breaker(&self) {
        let mut down = self.down_until.lock().expect("remote breaker poisoned");
        *down = Some(Instant::now() + self.cfg.cooldown);
    }

    fn checkout(&self) -> io::Result<TcpStream> {
        if let Some(stream) = self.pool.lock().expect("remote pool poisoned").pop() {
            return Ok(stream);
        }
        let mut last = io::Error::new(io::ErrorKind::AddrNotAvailable, "no targets");
        for target in &self.targets {
            match TcpStream::connect_timeout(target, self.cfg.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.cfg.io_timeout))?;
                    stream.set_write_timeout(Some(self.cfg.io_timeout))?;
                    let _ = stream.set_nodelay(true);
                    return Ok(stream);
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn checkin(&self, stream: TcpStream) {
        let mut pool = self.pool.lock().expect("remote pool poisoned");
        if pool.len() < self.cfg.pool_size {
            pool.push(stream);
        }
    }

    fn try_once(&self, req: &Frame) -> Result<Frame, WireError> {
        let mut stream = self.checkout().map_err(WireError::Io)?;
        wire::write_frame(&mut stream, req).map_err(WireError::Io)?;
        let resp = wire::read_frame(&mut stream)?;
        self.checkin(stream);
        Ok(resp)
    }

    /// One request through the breaker + retry machinery. `Err` means the
    /// operation degraded (breaker open or retries exhausted) — the
    /// caller falls back to its local-miss behavior; the error count has
    /// already been taken.
    fn request(&self, req: &Frame) -> Result<Frame, ()> {
        if self.breaker_open() {
            self.errors.fetch_add(1, Relaxed);
            metrics::remote_errors().inc();
            return Err(());
        }
        let mut attempt = 0u32;
        loop {
            let started = Instant::now();
            match self.try_once(req) {
                Ok(resp) => {
                    metrics::remote_roundtrip(req.op.name()).observe_duration(started.elapsed());
                    return Ok(resp);
                }
                Err(e) => {
                    // Whatever failed, every pooled stream is suspect
                    // (a restarted server closed them all).
                    self.pool.lock().expect("remote pool poisoned").clear();
                    attempt += 1;
                    if attempt > self.cfg.retries {
                        qobs::log_warn!(
                            target: "qsvc::remote",
                            "cache server degraded",
                            addr = self.cfg.addr,
                            op = req.op.name(),
                            error = e,
                            cooldown_ms = self.cfg.cooldown.as_millis()
                        );
                        self.trip_breaker();
                        self.errors.fetch_add(1, Relaxed);
                        metrics::remote_errors().inc();
                        return Err(());
                    }
                    std::thread::sleep(self.cfg.backoff * attempt);
                }
            }
        }
    }

    /// Best-effort server-side report, for `stats()`/`len()`. Zeros when
    /// degraded — the client-side counters still tell the story.
    fn server_report(&self) -> Option<qapi::CacheReport> {
        let resp = self.request(&Frame::empty(Op::Stats)).ok()?;
        if resp.op != Op::Report {
            return None;
        }
        let text = std::str::from_utf8(&resp.payload).ok()?;
        let doc = serde_json::from_str(text).ok()?;
        qapi::CacheReport::from_json(&doc).ok()
    }
}

impl ResultStore for RemoteStore {
    fn get(&self, key: &JobKey, oracle_version: &str) -> Option<Arc<CachedRun>> {
        let _timer = self.get_timer.start_timer();
        // Propagate the ambient trace id (GETs always precede PUTs for a
        // given job, so GET-only propagation covers the whole exchange):
        // the `popqc cached` server starts its own trace under the same
        // id, and the two captures join into one fleet-wide picture.
        let ctx = qobs::trace::current();
        let mut span = if ctx.handle.enabled() {
            Some(ctx.handle.span("remote_get", ctx.parent))
        } else {
            None
        };
        let trace_hex = ctx.handle.id_hex();
        let req = Frame::new(
            Op::Get,
            wire::encode_key_traced(
                key,
                oracle_version,
                trace_hex.as_deref(),
                ctx.handle.is_forced(),
            ),
        );
        if let Some(span) = &mut span {
            span.attr("addr", self.cfg.addr.as_str());
        }
        let outcome = match self.request(&req) {
            Ok(resp) if resp.op == Op::Hit => {
                // Re-validate before trusting: a confused server (or an
                // entry raced past a version bump) degrades to a miss,
                // never to a wrong result.
                let run = std::str::from_utf8(&resp.payload)
                    .ok()
                    .and_then(|text| store::decode_entry(key, oracle_version, text).ok());
                match run {
                    Some(run) => {
                        self.hits.fetch_add(1, Relaxed);
                        metrics::remote_hits().inc();
                        Some(Arc::new(run))
                    }
                    None => {
                        self.errors.fetch_add(1, Relaxed);
                        metrics::remote_errors().inc();
                        self.misses.fetch_add(1, Relaxed);
                        metrics::remote_misses().inc();
                        None
                    }
                }
            }
            Ok(_) | Err(()) => {
                self.misses.fetch_add(1, Relaxed);
                metrics::remote_misses().inc();
                None
            }
        };
        if let Some(mut span) = span {
            span.attr("hit", outcome.is_some());
        }
        outcome
    }

    fn put(&self, key: &JobKey, oracle_version: &str, value: Arc<CachedRun>) {
        let _timer = self.put_timer.start_timer();
        let ctx = qobs::trace::current();
        let mut span = if ctx.handle.enabled() {
            Some(ctx.handle.span("remote_put", ctx.parent))
        } else {
            None
        };
        let body = store::encode_entry(key, oracle_version, &value).into_bytes();
        if let Some(span) = &mut span {
            span.attr("addr", self.cfg.addr.as_str());
            span.attr("bytes", body.len());
        }
        // A degraded put is a dropped write (the entry stays in the
        // front tier / recomputes later) — counted, never an error.
        let ok = self.request(&Frame::new(Op::Put, body)).is_ok();
        if let Some(mut span) = span {
            span.attr("delivered", ok);
        }
    }

    fn remove(&self, key: &JobKey) -> bool {
        // The server's remove is version-agnostic; the field is carried
        // for payload uniformity only.
        let req = Frame::new(Op::Remove, wire::encode_key(key, ""));
        match self.request(&req) {
            Ok(resp) if resp.op == Op::Ack => resp.payload.first() == Some(&1),
            _ => false,
        }
    }

    fn clear(&self) -> u64 {
        match self.request(&Frame::empty(Op::Clear)) {
            Ok(resp) if resp.op == Op::Count && resp.payload.len() == 8 => {
                u64::from_be_bytes(resp.payload[..8].try_into().expect("8-byte count"))
            }
            _ => 0,
        }
    }

    fn len(&self) -> usize {
        self.server_report().map_or(0, |r| r.entries as usize)
    }

    fn stats(&self) -> StoreStats {
        let server = self.server_report();
        StoreStats {
            backend: "remote".to_string(),
            tiers: vec![TierStats {
                tier: "remote".to_string(),
                entries: server.as_ref().map_or(0, |r| r.entries),
                hits: self.hits.load(Relaxed),
                misses: self.misses.load(Relaxed),
                evictions: server.as_ref().map_or(0, |r| r.evictions),
                bytes: server.as_ref().map_or(0, |r| r.bytes),
                errors: self.errors.load(Relaxed),
            }],
        }
    }

    fn flush(&self) {}
}

// ---------------------------------------------------------------------------
// CacheServer
// ---------------------------------------------------------------------------

/// Server-side knobs for one [`CacheServer`].
#[derive(Clone, Debug)]
pub struct CacheServerConfig {
    /// Read timeout per frame; also the idle-connection reaper — a
    /// client silent for this long frees its worker.
    pub read_timeout: Duration,
    /// Pool workers to reserve for concurrently blocked connection
    /// handlers (the executor is shared, so this is a floor, not a
    /// partition).
    pub conn_workers: usize,
    /// Open-connection cap. At the cap the acceptor stops calling
    /// `accept`, so further clients queue in the kernel backlog
    /// (backpressure) instead of being served or refused. `0` means
    /// unlimited.
    pub max_conns: usize,
}

impl Default for CacheServerConfig {
    fn default() -> CacheServerConfig {
        CacheServerConfig {
            read_timeout: Duration::from_secs(30),
            conn_workers: 4,
            max_conns: 256,
        }
    }
}

/// State shared by the acceptor, every connection handler, and the
/// [`CacheServer`] handle.
struct Served {
    store: Arc<dyn ResultStore>,
    /// The server's oracle-version index. Memory tiers ignore
    /// `oracle_version` locally (one process, one registry build), but a
    /// fleet is *not* one process: replicas running different oracle
    /// code share this server, so it records the version each key was
    /// written under and answers a mismatched GET with a miss before the
    /// backing store — which might not check — is consulted.
    versions: Mutex<HashMap<JobKey, String>>,
    /// `try_clone` handles of live connections, so `shutdown` can cut
    /// in-flight handlers loose instead of letting them serve pooled
    /// client connections past the server's death.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Signaled whenever a connection handler exits, so an acceptor
    /// parked at `max_conns` can re-check for a free slot.
    conn_released: Condvar,
    stop: AtomicBool,
}

/// Removes this connection's shutdown handle when its handler exits.
struct ConnGuard<'a> {
    served: &'a Served,
    id: u64,
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.served
            .conns
            .lock()
            .expect("conns poisoned")
            .remove(&self.id);
        self.served.conn_released.notify_one();
    }
}

/// The `popqc cached` server: serves the [`crate::wire`] protocol over
/// any [`ResultStore`] (a `DiskStore`, or memory-over-disk tiered, in
/// practice). One dedicated acceptor thread; each connection runs as a
/// `qexec` detached task, so handler concurrency comes from the same
/// work-stealing pool as everything else in the process.
pub struct CacheServer {
    local_addr: SocketAddr,
    served: Arc<Served>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl CacheServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `store`.
    pub fn serve(
        addr: &str,
        store: Arc<dyn ResultStore>,
        cfg: CacheServerConfig,
    ) -> io::Result<CacheServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let served = Arc::new(Served {
            store,
            versions: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            conn_released: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        qexec::reserve_workers(cfg.conn_workers);
        let acceptor = {
            let served = Arc::clone(&served);
            std::thread::Builder::new()
                .name("popqc-cached-accept".to_string())
                .spawn(move || accept_loop(listener, served, cfg))?
        };
        Ok(CacheServer {
            local_addr,
            served,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (the resolved port for `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The store this server serves (for stats/admin surfaces).
    pub fn store(&self) -> &Arc<dyn ResultStore> {
        &self.served.store
    }

    /// Stops accepting, severs every live connection, and joins the
    /// acceptor thread. The listening port is released before this
    /// returns, so a test (or a supervisor) can rebind it to simulate
    /// recovery.
    pub fn shutdown(&mut self) {
        if self.served.stop.swap(true, Relaxed) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
        // Cut in-flight handlers loose: without this, a handler blocked
        // in read on a pooled client connection would keep answering
        // until its idle timeout — a "dead" server that still serves.
        for (_, conn) in self.served.conns.lock().expect("conns poisoned").drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for CacheServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, served: Arc<Served>, cfg: CacheServerConfig) {
    let mut next_id = 0u64;
    loop {
        // Gate BEFORE accept: at the cap the acceptor parks, so excess
        // clients wait in the kernel backlog (backpressure) rather than
        // being served past the cap or actively refused. The timeout
        // keeps the park responsive to `shutdown`.
        if cfg.max_conns > 0 {
            let mut conns = served.conns.lock().expect("conns poisoned");
            while conns.len() >= cfg.max_conns && !served.stop.load(Relaxed) {
                let (guard, _) = served
                    .conn_released
                    .wait_timeout(conns, Duration::from_millis(100))
                    .expect("conns poisoned");
                conns = guard;
            }
            if served.stop.load(Relaxed) {
                break;
            }
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                if served.stop.load(Relaxed) {
                    break;
                }
                qobs::log_debug!(target: "qsvc::cached", "connection", peer = peer);
                let id = next_id;
                next_id += 1;
                // Without a shutdown handle the connection would be
                // invisible to both the max_conns gate and shutdown's
                // forced-teardown sweep — refuse it rather than serve
                // it untracked.
                let handle = match stream.try_clone() {
                    Ok(handle) => handle,
                    Err(e) => {
                        qobs::log_warn!(target: "qsvc::cached", "dropping connection: try_clone failed", error = e);
                        continue;
                    }
                };
                served
                    .conns
                    .lock()
                    .expect("conns poisoned")
                    .insert(id, handle);
                let served = Arc::clone(&served);
                let read_timeout = cfg.read_timeout;
                qexec::spawn_detached(move || {
                    let _guard = ConnGuard {
                        served: &served,
                        id,
                    };
                    handle_connection(stream, &served, read_timeout);
                });
            }
            Err(_) if served.stop.load(Relaxed) => break,
            Err(e) => {
                qobs::log_warn!(target: "qsvc::cached", "accept failed", error = e);
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    // The listener drops here, releasing the port for a restart.
}

/// One connection's serve loop: frames in, responses out, until the
/// client hangs up, times out idle, or the server stops. Protocol
/// violations get a best-effort `ERROR` frame and then the connection is
/// dropped — after a framing error the stream position is untrustworthy.
fn handle_connection(mut stream: TcpStream, served: &Served, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_write_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    while !served.stop.load(Relaxed) {
        match wire::read_frame(&mut stream) {
            Ok(frame) => {
                metrics::cached_requests(frame.op.name()).inc();
                let resp = dispatch(&frame, served);
                sync_server_gauges(&served.store);
                if wire::write_frame(&mut stream, &resp).is_err() {
                    break;
                }
            }
            Err(WireError::Closed) => break,
            Err(WireError::Io(_)) => break,
            Err(violation) => {
                metrics::cached_requests("invalid").inc();
                let msg = violation.to_string().into_bytes();
                let _ = wire::write_frame(&mut stream, &Frame::new(Op::Error, msg));
                break;
            }
        }
    }
}

/// Mirrors the served store's entry/byte gauges into the server-side
/// metrics after every request (atomic loads — cheap next to a network
/// round trip).
fn sync_server_gauges(store: &Arc<dyn ResultStore>) {
    let stats = store.stats();
    metrics::cached_entries().set(stats.entries().min(i64::MAX as u64) as i64);
    metrics::cached_bytes().set(stats.bytes().min(i64::MAX as u64) as i64);
}

/// The GET path of [`dispatch`]: version gate, then the backing store,
/// with a `store_get` span on `trace` when the client propagated one.
fn serve_get(
    served: &Served,
    key: &JobKey,
    version: &str,
    trace: &qobs::trace::TraceHandle,
) -> Frame {
    // Version gate first: an entry written under a different oracle
    // version must answer Miss even when the backing store's memory tier
    // would blindly hit.
    let known = served.versions.lock().expect("versions poisoned");
    if known.get(key).is_some_and(|v| *v != version) {
        return Frame::empty(Op::Miss);
    }
    drop(known);
    let span = if trace.enabled() {
        Some(trace.span("store_get", qobs::trace::ROOT_SPAN))
    } else {
        None
    };
    let found = served.store.get(key, version);
    if let Some(mut span) = span {
        span.attr("hit", found.is_some());
    }
    match found {
        Some(run) => {
            // Learn the version from a disk-validated hit (fresh restart
            // over a warm directory).
            served
                .versions
                .lock()
                .expect("versions poisoned")
                .insert(key.clone(), version.to_string());
            Frame::new(
                Op::Hit,
                store::encode_entry(key, version, &run).into_bytes(),
            )
        }
        None => Frame::empty(Op::Miss),
    }
}

/// Answers one request frame. Never panics on hostile input: malformed
/// payloads and non-request opcodes answer `ERROR`, stale or corrupt PUT
/// entries are refused (the version tags traveled for exactly this).
fn dispatch(frame: &Frame, served: &Served) -> Frame {
    let error = |msg: &str| Frame::new(Op::Error, msg.as_bytes().to_vec());
    let store = &served.store;
    match frame.op {
        Op::Ping => Frame::empty(Op::Pong),
        Op::Get => match wire::decode_key(&frame.payload) {
            Ok((key, version)) => {
                // Join the client's trace when the key document carries
                // one: the server records its own mini-trace under the
                // same id, so `popqc trace <id>` against either process
                // shows the same causal request.
                let (trace_id, trace_forced) = wire::decode_key_trace(&frame.payload);
                let trace = match trace_id {
                    Some(id) => qobs::trace::start_trace_with_id("cached_get", id),
                    None => qobs::trace::disabled(),
                };
                if trace_forced {
                    trace.force();
                }
                let resp = serve_get(served, &key, &version, &trace);
                if trace.enabled() {
                    let hit = resp.op == Op::Hit;
                    trace.root_attr("oracle_id", key.oracle_id.as_str());
                    trace.root_attr("hit", hit);
                    trace.set_status(200);
                    let kept = trace.finish(200);
                    qobs::log_info!(
                        target: "qsvc::cached",
                        "traced get",
                        trace = trace.id_hex().unwrap_or_default(),
                        hit = hit,
                        kept = kept
                    );
                }
                resp
            }
            Err(e) => error(&e.to_string()),
        },
        Op::Put => {
            let text = match std::str::from_utf8(&frame.payload) {
                Ok(t) => t,
                Err(_) => return error("entry payload is not UTF-8"),
            };
            match store::decode_entry_owned(text) {
                Ok((key, version, run)) => {
                    served
                        .versions
                        .lock()
                        .expect("versions poisoned")
                        .insert(key.clone(), version.clone());
                    store.put(&key, &version, Arc::new(run));
                    Frame::empty(Op::Ack)
                }
                Err(store::EntryRejection::Stale) => {
                    error("stale entry refused (store format or oracle version)")
                }
                Err(store::EntryRejection::Corrupt) => error("corrupt entry refused"),
            }
        }
        Op::Remove => match wire::decode_key(&frame.payload) {
            Ok((key, _)) => {
                served
                    .versions
                    .lock()
                    .expect("versions poisoned")
                    .remove(&key);
                Frame::new(Op::Ack, vec![u8::from(store.remove(&key))])
            }
            Err(e) => error(&e.to_string()),
        },
        Op::Clear => {
            served.versions.lock().expect("versions poisoned").clear();
            Frame::new(Op::Count, store.clear().to_be_bytes().to_vec())
        }
        Op::Stats => {
            let report = crate::report::cache_report(&store.stats());
            Frame::new(
                Op::Report,
                serde_json::to_string(&report.to_json())
                    .expect("serialize cache report")
                    .into_bytes(),
            )
        }
        _ => error("not a request opcode"),
    }
}
