//! The pluggable result-store layer: where finished optimizations live.
//!
//! The service's speedup on repeated traffic comes from never re-proving
//! a result it already holds; this module makes *where* those results are
//! held a seam instead of a hard-coded LRU. [`ResultStore`] is the
//! object-safe backend trait the service owns as `Arc<dyn ResultStore>`,
//! with four shipped implementations:
//!
//! * [`MemoryStore`] — the process-local sharded LRU
//!   ([`ShardedLruCache`]) behind the trait; what every deployment used
//!   before this seam existed, and still the default.
//! * [`DiskStore`] — one file per entry under a cache directory, so warm
//!   starts survive restarts. Entries carry a versioned header (store
//!   format version + the oracle's [`version`](qoracle::SegmentOracle::version)
//!   tag); stale or foreign entries are invalidated, and corrupt or
//!   truncated files read as misses and are quarantined, never trusted
//!   and never an error.
//! * [`TieredStore`] — any store in front of any other (memory in front
//!   of disk or remote in practice): write-through on put, promote-on-hit
//!   on get.
//! * [`crate::remote::RemoteStore`] — a `popqc cached` server over TCP,
//!   so N replicas share one warm tier (see the `remote` module).
//! * [`NullStore`] — always misses; isolates raw engine throughput in
//!   benchmarks.
//!
//! [`StoreTier`] + [`build_store`] are the one construction seam the CLI
//! and tests share: swapping `--cache-tier memory|disk|tiered|remote`
//! changes nothing outside this function.
//!
//! ## On-disk layout (format version 1)
//!
//! ```text
//! <cache_dir>/
//!   <fingerprint:032x>-<confighash:016x>.entry   # one JSON document per result
//!   quarantine/<same name>.<nanos>               # corrupt files, moved aside
//! ```
//!
//! Each `.entry` file is a single JSON object:
//!
//! ```json
//! {
//!   "store_format": 1,
//!   "fingerprint": "<32 hex digits>",
//!   "oracle_id": "rule_based",
//!   "oracle_version": "0.2.0+rule-fixpoint",
//!   "omega": 200,
//!   "max_rounds": 18446744073709551615,
//!   "qasm": "OPENQASM 2.0;...",
//!   "stats": { "rounds": 15, "oracle_calls": 59, ... }
//! }
//! ```
//!
//! Reads validate before trusting: the header's key fields (input
//! fingerprint, oracle id, config) must match the key being looked up,
//! the QASM body must parse, and the parsed gate count must equal the
//! recorded `final_units`. Writes go to a temp file and `rename` into
//! place, so a crash mid-write leaves at worst a stray temp file, never a
//! half-entry under a live name.
//! Invalidation rules, in order:
//!
//! | condition | action |
//! |-----------|--------|
//! | file absent | plain miss |
//! | unreadable / not JSON / truncated | miss + **quarantine** |
//! | `store_format` ≠ 1 | miss + remove (stale format) |
//! | key fields or `oracle_version` mismatch | miss + remove (stale code) |
//! | QASM unparseable or fingerprint ≠ key | miss + **quarantine** |

use crate::cache::ShardedLruCache;
use crate::metrics;
use crate::service::JobKey;
use popqc_core::PopqcStats;
use qcir::{qasm, Circuit, Gate};
use serde_json::{json, Value};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// The on-disk entry format version. Bump on any layout change; readers
/// discard entries from any other version.
pub const STORE_FORMAT_VERSION: u64 = 1;

/// What the store holds per key: the output half of a job.
#[derive(Clone, Debug)]
pub struct CachedRun {
    /// The optimized circuit.
    pub circuit: Circuit,
    /// The original run's engine statistics. Entries restored from disk
    /// carry an empty [`PopqcStats::rounds_detail`] (the per-round
    /// breakdown is not persisted).
    pub stats: PopqcStats,
}

impl CachedRun {
    /// Approximate resident size, for the per-tier `bytes` gauge. Counts
    /// the gate array and the per-round detail, not allocator overhead.
    pub fn approx_bytes(&self) -> u64 {
        (std::mem::size_of::<CachedRun>()
            + self.circuit.gates.len() * std::mem::size_of::<Gate>()
            + self.stats.rounds_detail.len() * std::mem::size_of::<popqc_core::RoundRecord>())
            as u64
    }
}

/// Point-in-time counters for one tier of a store.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Tier name (`memory`, `disk`, `remote`, `null`).
    pub tier: String,
    /// Entries currently resident in this tier.
    pub entries: u64,
    /// Lookups this tier answered.
    pub hits: u64,
    /// Lookups this tier could not answer.
    pub misses: u64,
    /// Entries this tier evicted to make room.
    pub evictions: u64,
    /// Approximate resident bytes (exact file bytes for the disk tier).
    pub bytes: u64,
    /// Operations this tier degraded instead of completing (the remote
    /// tier's unreachable-server count; local tiers never error).
    pub errors: u64,
}

/// A store's full report: the backend name plus one [`TierStats`] per
/// tier, front first. Single-tier stores report exactly one tier.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Backend name (`memory`, `disk`, `tiered`, `null`).
    pub backend: String,
    /// Per-tier counters, front tier first.
    pub tiers: Vec<TierStats>,
}

impl StoreStats {
    fn single(backend: &str, tier: TierStats) -> StoreStats {
        StoreStats {
            backend: backend.to_string(),
            tiers: vec![tier],
        }
    }

    /// Logical hits: a lookup that any tier answered.
    pub fn hits(&self) -> u64 {
        self.tiers.iter().map(|t| t.hits).sum()
    }

    /// Logical misses: lookups no tier answered. Front-tier misses that a
    /// later tier absorbed are not logical misses, so this reads the
    /// *last* tier (every logical miss reaches it).
    pub fn misses(&self) -> u64 {
        self.tiers.last().map_or(0, |t| t.misses)
    }

    /// Entries in the authoritative (last) tier. With write-through
    /// tiering the front tier holds a subset of the back, so the back
    /// count is the store's population.
    pub fn entries(&self) -> u64 {
        self.tiers.last().map_or(0, |t| t.entries)
    }

    /// Evictions summed across tiers.
    pub fn evictions(&self) -> u64 {
        self.tiers.iter().map(|t| t.evictions).sum()
    }

    /// Resident bytes summed across tiers.
    pub fn bytes(&self) -> u64 {
        self.tiers.iter().map(|t| t.bytes).sum()
    }
}

/// The pluggable result-store backend. Object-safe and `Send + Sync`: the
/// service owns one as `Arc<dyn ResultStore>` and never names a concrete
/// type past construction.
///
/// `oracle_version` on the read/write path is the invalidation token for
/// *persistent* tiers: a stored entry whose recorded version differs from
/// the one passed in must read as a miss (the oracle code changed, the
/// cached result may no longer be what the oracle would produce).
/// Process-local tiers may ignore it — within one process the registry is
/// fixed, so an id never maps to two versions.
pub trait ResultStore: Send + Sync {
    /// Looks up `key`; `None` is a miss. Never an error: a persistent tier
    /// that finds a corrupt or stale entry must self-heal and miss.
    fn get(&self, key: &JobKey, oracle_version: &str) -> Option<Arc<CachedRun>>;

    /// Stores `value` under `key`, tagged with `oracle_version`.
    fn put(&self, key: &JobKey, oracle_version: &str, value: Arc<CachedRun>);

    /// Removes one entry; returns whether it existed.
    fn remove(&self, key: &JobKey) -> bool;

    /// Drops every entry; returns how many were removed.
    fn clear(&self) -> u64;

    /// Entries currently resident (the authoritative tier's count).
    fn len(&self) -> usize;

    /// Whether the store holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time per-tier counters.
    fn stats(&self) -> StoreStats;

    /// Blocks until previously written entries are durable. In-memory
    /// tiers are trivially durable-for-their-lifetime; [`DiskStore`]
    /// writes each entry with rename-into-place at `put` time, so this is
    /// a no-op hook kept for backends with real write buffers.
    fn flush(&self);
}

// ---------------------------------------------------------------------------
// MemoryStore
// ---------------------------------------------------------------------------

/// The process-local tier: [`ShardedLruCache`] behind the trait.
///
/// Capacity `0` is the null-cache edge: every lookup misses and puts are
/// dropped (see [`ShardedLruCache::new`] for the exact rounding rules).
/// `oracle_version` is ignored — within one process the registry binds
/// each oracle id to exactly one version for the store's whole lifetime.
pub struct MemoryStore {
    cache: ShardedLruCache<JobKey, CachedRun>,
    /// Latency histograms, resolved once at construction so the serving
    /// path never touches the metric registry.
    get_timer: Arc<qobs::Histogram>,
    put_timer: Arc<qobs::Histogram>,
}

impl MemoryStore {
    /// A store holding at most `capacity` entries over `shards` locks.
    pub fn new(capacity: usize, shards: usize) -> MemoryStore {
        MemoryStore {
            cache: ShardedLruCache::new(capacity, shards),
            get_timer: metrics::store_get_duration("memory"),
            put_timer: metrics::store_put_duration("memory"),
        }
    }
}

impl ResultStore for MemoryStore {
    fn get(&self, key: &JobKey, _oracle_version: &str) -> Option<Arc<CachedRun>> {
        let _timer = self.get_timer.start_timer();
        self.cache.get(key)
    }

    fn put(&self, key: &JobKey, _oracle_version: &str, value: Arc<CachedRun>) {
        let _timer = self.put_timer.start_timer();
        self.cache.insert(key.clone(), value);
    }

    fn remove(&self, key: &JobKey) -> bool {
        self.cache.remove(key)
    }

    fn clear(&self) -> u64 {
        self.cache.clear()
    }

    fn len(&self) -> usize {
        self.cache.len()
    }

    fn stats(&self) -> StoreStats {
        let c = self.cache.stats();
        StoreStats::single(
            "memory",
            TierStats {
                tier: "memory".to_string(),
                entries: c.entries as u64,
                hits: c.hits,
                misses: c.misses,
                evictions: c.evictions,
                bytes: self.cache.sum_values(CachedRun::approx_bytes),
                errors: 0,
            },
        )
    }

    fn flush(&self) {}
}

// ---------------------------------------------------------------------------
// DiskStore
// ---------------------------------------------------------------------------

/// The persistent tier: one file per entry under a cache directory (see
/// the module docs for the exact layout and invalidation table). Safe for
/// concurrent use from many threads *and* many processes sharing the
/// directory: writes are rename-into-place, reads validate before
/// trusting.
pub struct DiskStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
    quarantined: AtomicU64,
    tmp_counter: AtomicU64,
    /// Entry/byte gauges, initialized by one directory scan at `open` and
    /// maintained incrementally, so `stats()`/`len()` never walk the
    /// directory on the serving path. They track *this handle's* view:
    /// entries written by other processes sharing the directory are
    /// picked up on the next `open` (or after a `clear`, which rescans).
    entries: AtomicU64,
    bytes: AtomicU64,
    /// Serializes gauge-mutating ops against `clear`'s sweep + resync
    /// window: a `put` landing between the sweep and the rescan would
    /// otherwise be double-counted (its file is seen by the scan *and*
    /// its own increment runs after), drifting `entries`/`bytes` until
    /// the next clear. Same discipline as `TieredStore`: the frequent
    /// ops share the lock, `clear` takes it exclusively.
    admin_gate: std::sync::RwLock<()>,
    /// Latency histograms, resolved once at `open`.
    get_timer: Arc<qobs::Histogram>,
    put_timer: Arc<qobs::Histogram>,
}

/// Saturating decrement for a gauge (concurrent cross-process mutation
/// can make decrements over-approximate; a floor of zero beats wrapping
/// to 2^64 in a report).
fn gauge_sub(gauge: &AtomicU64, amount: u64) {
    let _ = gauge.fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(amount)));
}

/// FNV-1a over the non-fingerprint half of the key; disambiguates two
/// entries for the same circuit under different oracles/configs in the
/// file name. Collisions are harmless — the body repeats the full key and
/// a mismatch reads as a stale miss.
fn config_hash(key: &JobKey) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut absorb = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    absorb(key.oracle_id.as_bytes());
    absorb(&[0]);
    absorb(&(key.config.omega as u64).to_le_bytes());
    absorb(&(key.config.max_rounds as u64).to_le_bytes());
    h
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `dir`. Scans the
    /// directory once to seed the entry/byte gauges.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<DiskStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let store = DiskStore {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            tmp_counter: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            admin_gate: std::sync::RwLock::new(()),
            get_timer: metrics::store_get_duration("disk"),
            put_timer: metrics::store_put_duration("disk"),
        };
        store.resync();
        Ok(store)
    }

    /// Re-seeds the entry/byte gauges from a directory scan (open time,
    /// and after `clear`, when the incremental view has been reset).
    fn resync(&self) {
        let (entries, bytes) = self.scan();
        self.entries.store(entries as u64, Relaxed);
        self.bytes.store(bytes, Relaxed);
    }

    /// The directory this store persists under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Entries this store discarded as stale (wrong format or oracle
    /// version) since it was opened.
    pub fn invalidated(&self) -> u64 {
        self.invalidated.load(Relaxed)
    }

    /// Corrupt files this store moved into `quarantine/` since it was
    /// opened.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Relaxed)
    }

    fn entry_path(&self, key: &JobKey) -> PathBuf {
        self.dir.join(format!(
            "{}-{:016x}.entry",
            key.fingerprint,
            config_hash(key)
        ))
    }

    /// Moves a corrupt file into `quarantine/` (best effort — a racing
    /// process may have moved or deleted it first). `size` is the body
    /// length just read, for the byte gauge.
    fn quarantine(&self, path: &Path, size: u64) {
        let _gate = self.admin_gate.read().expect("disk admin gate poisoned");
        let qdir = self.dir.join("quarantine");
        let _ = std::fs::create_dir_all(&qdir);
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "entry".to_string());
        let unique = self.tmp_counter.fetch_add(1, Relaxed);
        let dest = qdir.join(format!("{name}.{}-{unique}", std::process::id()));
        if std::fs::rename(path, &dest).is_err() {
            let _ = std::fs::remove_file(path);
        }
        self.quarantined.fetch_add(1, Relaxed);
        gauge_sub(&self.entries, 1);
        gauge_sub(&self.bytes, size);
    }

    /// Discards a well-formed but stale file (old format or oracle code).
    fn invalidate(&self, path: &Path, size: u64) {
        let _gate = self.admin_gate.read().expect("disk admin gate poisoned");
        let _ = std::fs::remove_file(path);
        self.invalidated.fetch_add(1, Relaxed);
        gauge_sub(&self.entries, 1);
        gauge_sub(&self.bytes, size);
    }
}

/// Serializes one `(key, oracle_version, run)` into the versioned entry
/// document described in the module docs. This is the ONE encoding shared
/// by the disk tier (one document per `.entry` file) and the remote wire
/// protocol (the same document as a PUT payload), so the cache server
/// persists exactly what a local `DiskStore` would.
pub fn encode_entry(key: &JobKey, oracle_version: &str, run: &CachedRun) -> String {
    let doc = json!({
        "store_format": STORE_FORMAT_VERSION,
        "fingerprint": key.fingerprint.to_hex().as_str(),
        "oracle_id": key.oracle_id.as_str(),
        "oracle_version": oracle_version,
        "omega": key.config.omega as u64,
        "max_rounds": key.config.max_rounds as u64,
        "qasm": qasm::to_qasm(&run.circuit).as_str(),
        "stats": {
            "rounds": run.stats.rounds as u64,
            "oracle_calls": run.stats.oracle_calls,
            "accepted": run.stats.accepted,
            "oracle_nanos": run.stats.oracle_nanos,
            "total_nanos": run.stats.total_nanos,
            "initial_units": run.stats.initial_units as u64,
            "final_units": run.stats.final_units as u64,
            "seg_cache_hits": run.stats.seg_cache_hits,
        },
    });
    serde_json::to_string(&doc).expect("serialize cache entry")
}

/// Parses and fully validates one entry body against the key it was
/// looked up under. `Err` distinguishes corrupt bodies (quarantine) from
/// merely stale ones (silent removal) — see [`EntryRejection`].
pub fn decode_entry(
    key: &JobKey,
    oracle_version: &str,
    text: &str,
) -> Result<CachedRun, EntryRejection> {
    let doc: Value = serde_json::from_str(text).map_err(|_| EntryRejection::Corrupt)?;
    let num = |field: &str| doc.get(field).and_then(Value::as_u64);
    // A parseable document with the wrong format version is *stale*,
    // not corrupt — whatever wrote it knew what it was doing.
    match num("store_format") {
        Some(STORE_FORMAT_VERSION) => {}
        Some(_) => return Err(EntryRejection::Stale),
        None => return Err(EntryRejection::Corrupt),
    }
    let field = |name: &str| doc.get(name).and_then(Value::as_str);
    let matches_key = field("fingerprint") == Some(key.fingerprint.to_hex().as_str())
        && field("oracle_id") == Some(key.oracle_id.as_str())
        && num("omega") == Some(key.config.omega as u64)
        && num("max_rounds") == Some(key.config.max_rounds as u64);
    if !matches_key || field("oracle_version") != Some(oracle_version) {
        return Err(EntryRejection::Stale);
    }
    let qasm_text = field("qasm").ok_or(EntryRejection::Corrupt)?;
    let circuit = qasm::parse(qasm_text).map_err(|_| EntryRejection::Corrupt)?;
    let stats_doc = doc.get("stats").ok_or(EntryRejection::Corrupt)?;
    let stat = |name: &str| {
        stats_doc
            .get(name)
            .and_then(Value::as_u64)
            .ok_or(EntryRejection::Corrupt)
    };
    let stats = PopqcStats {
        rounds: stat("rounds")? as usize,
        oracle_calls: stat("oracle_calls")?,
        accepted: stat("accepted")?,
        oracle_nanos: stat("oracle_nanos")?,
        total_nanos: stat("total_nanos")?,
        initial_units: stat("initial_units")? as usize,
        final_units: stat("final_units")? as usize,
        // Tolerant decode: entries written before the segment cache
        // existed lack this field; treating it as 0 keeps them valid
        // without a format-version bump.
        seg_cache_hits: stat("seg_cache_hits").unwrap_or(0),
        rounds_detail: Vec::new(),
    };
    // Cross-field consistency: the parsed body must be the circuit the
    // stats describe. Catches a truncation that still happens to end
    // on a QASM statement boundary.
    if stats.final_units != circuit.gates.len() {
        return Err(EntryRejection::Corrupt);
    }
    Ok(CachedRun { circuit, stats })
}

/// Parses an entry document that *carries its own key* — the cache
/// server's PUT path, where no expected key exists yet. Extracts the
/// `(key, oracle_version)` from the header fields, then runs the same
/// full validation as [`decode_entry`], so a malformed or inconsistent
/// document is refused before it can be persisted for other replicas.
pub fn decode_entry_owned(text: &str) -> Result<(JobKey, String, CachedRun), EntryRejection> {
    let doc: Value = serde_json::from_str(text).map_err(|_| EntryRejection::Corrupt)?;
    let field = |name: &str| doc.get(name).and_then(Value::as_str);
    let num = |name: &str| doc.get(name).and_then(Value::as_u64);
    let fp_hex = field("fingerprint").ok_or(EntryRejection::Corrupt)?;
    if fp_hex.len() != 32 {
        return Err(EntryRejection::Corrupt);
    }
    let fingerprint = u128::from_str_radix(fp_hex, 16)
        .map(qcir::Fingerprint)
        .map_err(|_| EntryRejection::Corrupt)?;
    let key = JobKey {
        fingerprint,
        oracle_id: field("oracle_id")
            .ok_or(EntryRejection::Corrupt)?
            .to_string(),
        config: popqc_core::PopqcConfig {
            omega: num("omega").ok_or(EntryRejection::Corrupt)? as usize,
            max_rounds: num("max_rounds").ok_or(EntryRejection::Corrupt)? as usize,
        },
    };
    let oracle_version = field("oracle_version")
        .ok_or(EntryRejection::Corrupt)?
        .to_string();
    let run = decode_entry(&key, &oracle_version, text)?;
    Ok((key, oracle_version, run))
}

/// Why a stored entry was refused: the two classes get different
/// self-healing (quarantine vs. silent removal) on disk, and both read
/// as a plain miss to callers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryRejection {
    /// Unreadable, truncated, or internally inconsistent: quarantine it.
    Corrupt,
    /// Well-formed but written by different code (format or oracle
    /// version) or for a different key: remove it.
    Stale,
}

impl ResultStore for DiskStore {
    fn get(&self, key: &JobKey, oracle_version: &str) -> Option<Arc<CachedRun>> {
        let _timer = self.get_timer.start_timer();
        let path = self.entry_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                self.misses.fetch_add(1, Relaxed);
                return None;
            }
        };
        match decode_entry(key, oracle_version, &text) {
            Ok(run) => {
                self.hits.fetch_add(1, Relaxed);
                Some(Arc::new(run))
            }
            Err(EntryRejection::Corrupt) => {
                self.quarantine(&path, text.len() as u64);
                self.misses.fetch_add(1, Relaxed);
                None
            }
            Err(EntryRejection::Stale) => {
                self.invalidate(&path, text.len() as u64);
                self.misses.fetch_add(1, Relaxed);
                None
            }
        }
    }

    fn put(&self, key: &JobKey, oracle_version: &str, value: Arc<CachedRun>) {
        let _timer = self.put_timer.start_timer();
        // Shared gate: held across the replaced-file probe, the rename,
        // and the gauge updates, so a concurrent `clear` resync cannot
        // interleave and double-count this entry.
        let _gate = self.admin_gate.read().expect("disk admin gate poisoned");
        let path = self.entry_path(key);
        let unique = self.tmp_counter.fetch_add(1, Relaxed);
        let tmp = self
            .dir
            .join(format!(".tmp-{}-{unique}", std::process::id()));
        let body = encode_entry(key, oracle_version, &value);
        let body_len = body.len() as u64;
        // Whatever this put replaces, for the gauges (`None` = fresh key).
        let replaced = std::fs::metadata(&path).map(|m| m.len()).ok();
        // Write-then-rename: a crash mid-write leaves a stray temp file,
        // never a truncated entry under a live name. Failures are silent
        // by design — a full disk degrades the cache, not the service —
        // but the temp file is always cleaned up on the failure paths.
        match std::fs::write(&tmp, body) {
            Ok(()) => {
                if std::fs::rename(&tmp, &path).is_ok() {
                    if replaced.is_none() {
                        self.entries.fetch_add(1, Relaxed);
                    }
                    gauge_sub(&self.bytes, replaced.unwrap_or(0));
                    self.bytes.fetch_add(body_len, Relaxed);
                } else {
                    let _ = std::fs::remove_file(&tmp);
                }
            }
            Err(_) => {
                // A failed write can still have created (and partially
                // filled) the file — e.g. on a full disk.
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }

    fn remove(&self, key: &JobKey) -> bool {
        let _gate = self.admin_gate.read().expect("disk admin gate poisoned");
        let path = self.entry_path(key);
        let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let removed = std::fs::remove_file(path).is_ok();
        if removed {
            gauge_sub(&self.entries, 1);
            gauge_sub(&self.bytes, size);
        }
        removed
    }

    fn clear(&self) -> u64 {
        // Exclusive for the whole sweep + resync window: a `put` racing
        // the rescan would otherwise land its file in the scan *and* add
        // its own increment afterwards, drifting the gauges until the
        // next clear (the regression this gate exists for).
        let _gate = self.admin_gate.write().expect("disk admin gate poisoned");
        let mut removed = 0;
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                if path.extension().is_some_and(|x| x == "entry") {
                    if std::fs::remove_file(&path).is_ok() {
                        removed += 1;
                    }
                } else if path
                    .file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with(".tmp-"))
                {
                    // Admin sweep: temp files orphaned by a crashed writer.
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        // Re-seed the gauges from disk rather than zeroing them: entries
        // written by concurrent processes mid-clear stay counted.
        self.resync();
        removed
    }

    fn len(&self) -> usize {
        self.entries.load(Relaxed) as usize
    }

    fn stats(&self) -> StoreStats {
        StoreStats::single(
            "disk",
            TierStats {
                tier: "disk".to_string(),
                entries: self.entries.load(Relaxed),
                hits: self.hits.load(Relaxed),
                misses: self.misses.load(Relaxed),
                // Stale entries discarded on read are this tier's eviction
                // analogue; quarantined files are counted separately but
                // also no longer serve hits.
                evictions: self.invalidated.load(Relaxed) + self.quarantined.load(Relaxed),
                bytes: self.bytes.load(Relaxed),
                errors: 0,
            },
        )
    }

    fn flush(&self) {}
}

impl DiskStore {
    /// Walks the directory once: (entry count, total entry bytes).
    fn scan(&self) -> (usize, u64) {
        let mut count = 0;
        let mut bytes = 0;
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                if path.extension().is_some_and(|x| x == "entry") {
                    count += 1;
                    bytes += entry.metadata().map(|m| m.len()).unwrap_or(0);
                }
            }
        }
        (count, bytes)
    }
}

// ---------------------------------------------------------------------------
// TieredStore
// ---------------------------------------------------------------------------

/// A fast tier in front of an authoritative one. Reads probe the front
/// first and **promote on hit** (a back-tier hit is re-inserted into the
/// front, so hot keys migrate forward); writes go **through** to both, so
/// the front always holds a subset of the back and clearing the back
/// clears the truth.
pub struct TieredStore {
    front: Arc<dyn ResultStore>,
    back: Arc<dyn ResultStore>,
    /// Serializes promotions against `clear`/`remove`: without it, a
    /// back-tier read racing an admin clear could re-insert its entry
    /// into the front *after* both tiers were emptied, breaking the
    /// front ⊆ back invariant (a "cleared" cache would keep serving the
    /// key from memory). Reads share the lock; the rare admin ops take it
    /// exclusively.
    admin_gate: std::sync::RwLock<()>,
}

impl TieredStore {
    /// `front` answers first; `back` is authoritative.
    pub fn new(front: Arc<dyn ResultStore>, back: Arc<dyn ResultStore>) -> TieredStore {
        TieredStore {
            front,
            back,
            admin_gate: std::sync::RwLock::new(()),
        }
    }
}

impl ResultStore for TieredStore {
    fn get(&self, key: &JobKey, oracle_version: &str) -> Option<Arc<CachedRun>> {
        if let Some(run) = self.front.get(key, oracle_version) {
            return Some(run);
        }
        // Hold the (shared) gate across probe + promote so an admin
        // clear/remove cannot interleave between them.
        let _gate = self.admin_gate.read().expect("tiered admin gate poisoned");
        let run = self.back.get(key, oracle_version)?;
        // Promote: the next lookup for this key answers from the front.
        self.front.put(key, oracle_version, Arc::clone(&run));
        Some(run)
    }

    fn put(&self, key: &JobKey, oracle_version: &str, value: Arc<CachedRun>) {
        self.front.put(key, oracle_version, Arc::clone(&value));
        self.back.put(key, oracle_version, value);
    }

    fn remove(&self, key: &JobKey) -> bool {
        let _gate = self.admin_gate.write().expect("tiered admin gate poisoned");
        let front = self.front.remove(key);
        self.back.remove(key) || front
    }

    fn clear(&self) -> u64 {
        // Exclusive: in-flight promotions finish (or wait) before both
        // tiers drop, so no promote can resurrect a cleared entry.
        let _gate = self.admin_gate.write().expect("tiered admin gate poisoned");
        self.front.clear();
        // Write-through keeps front ⊆ back, so the back count is the
        // number of distinct entries dropped.
        self.back.clear()
    }

    fn len(&self) -> usize {
        self.back.len()
    }

    fn stats(&self) -> StoreStats {
        let mut tiers = self.front.stats().tiers;
        tiers.extend(self.back.stats().tiers);
        StoreStats {
            backend: "tiered".to_string(),
            tiers,
        }
    }

    fn flush(&self) {
        self.front.flush();
        self.back.flush();
    }
}

// ---------------------------------------------------------------------------
// NullStore
// ---------------------------------------------------------------------------

/// The store that never remembers: every get misses, every put is
/// dropped. Benchmarks use it to measure raw engine throughput with the
/// memoization layer provably out of the picture.
#[derive(Default)]
pub struct NullStore {
    misses: AtomicU64,
}

impl NullStore {
    /// A fresh null store.
    pub fn new() -> NullStore {
        NullStore::default()
    }
}

impl ResultStore for NullStore {
    fn get(&self, _key: &JobKey, _oracle_version: &str) -> Option<Arc<CachedRun>> {
        self.misses.fetch_add(1, Relaxed);
        None
    }

    fn put(&self, _key: &JobKey, _oracle_version: &str, _value: Arc<CachedRun>) {}

    fn remove(&self, _key: &JobKey) -> bool {
        false
    }

    fn clear(&self) -> u64 {
        0
    }

    fn len(&self) -> usize {
        0
    }

    fn stats(&self) -> StoreStats {
        StoreStats::single(
            "null",
            TierStats {
                tier: "null".to_string(),
                misses: self.misses.load(Relaxed),
                ..TierStats::default()
            },
        )
    }

    fn flush(&self) {}
}

// ---------------------------------------------------------------------------
// Construction seam
// ---------------------------------------------------------------------------

/// The backend selector the CLI's `--cache-tier` flag names. Everything
/// downstream of [`build_store`] is `Arc<dyn ResultStore>`, so adding a
/// tier here is the *only* code change a new backend needs outside its
/// own implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreTier {
    /// Process-local LRU only (the default; no persistence).
    Memory,
    /// Disk only: every probe and write goes to the cache directory.
    Disk,
    /// Memory in front of disk (`--cache-dir`) or of a remote cache
    /// server (`--cache-addr`): RAM-speed hits, shared/persistent truth.
    Tiered,
    /// A shared `popqc cached` server over TCP (`--cache-addr`): N
    /// replicas behave as one warm cache. Degrades to local misses when
    /// the server is unreachable — never an error, never a wrong result.
    Remote,
    /// No caching at all (benchmark baseline).
    Null,
}

impl StoreTier {
    /// Every tier name `--cache-tier` accepts, in documentation order.
    pub const NAMES: [&'static str; 5] = ["memory", "disk", "tiered", "remote", "null"];
}

impl std::str::FromStr for StoreTier {
    type Err = String;

    fn from_str(s: &str) -> Result<StoreTier, String> {
        match s {
            "memory" => Ok(StoreTier::Memory),
            "disk" => Ok(StoreTier::Disk),
            "tiered" => Ok(StoreTier::Tiered),
            "remote" => Ok(StoreTier::Remote),
            "null" => Ok(StoreTier::Null),
            other => Err(format!(
                "unknown cache tier `{other}` (expected one of: {})",
                StoreTier::NAMES.join(", ")
            )),
        }
    }
}

impl std::fmt::Display for StoreTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StoreTier::Memory => "memory",
            StoreTier::Disk => "disk",
            StoreTier::Tiered => "tiered",
            StoreTier::Remote => "remote",
            StoreTier::Null => "null",
        })
    }
}

/// Builds the store a service (or the `popqc cache` admin commands) will
/// own. `cache_dir` is required for the disk-backed tiers and
/// `cache_addr` for the remote ones; `tiered` takes exactly one of the
/// two as its back tier (disk when given a directory, remote when given
/// an address). `capacity` and `shards` size the memory tier where one
/// exists.
pub fn build_store(
    tier: StoreTier,
    cache_dir: Option<&Path>,
    cache_addr: Option<&str>,
    capacity: usize,
    shards: usize,
) -> Result<Arc<dyn ResultStore>, String> {
    let disk = |dir: &Path| -> Result<Arc<DiskStore>, String> {
        DiskStore::open(dir)
            .map(Arc::new)
            .map_err(|e| format!("cannot open cache dir {}: {e}", dir.display()))
    };
    let remote = |addr: &str| -> Result<Arc<crate::remote::RemoteStore>, String> {
        crate::remote::RemoteStore::new(crate::remote::RemoteConfig::new(addr)).map(Arc::new)
    };
    let need_dir = || format!("cache tier `{tier}` requires --cache-dir");
    let need_addr = || format!("cache tier `{tier}` requires --cache-addr");
    Ok(match tier {
        StoreTier::Memory => Arc::new(MemoryStore::new(capacity, shards)),
        StoreTier::Null => Arc::new(NullStore::new()),
        StoreTier::Disk => disk(cache_dir.ok_or_else(need_dir)?)?,
        StoreTier::Remote => remote(cache_addr.ok_or_else(need_addr)?)?,
        StoreTier::Tiered => {
            let back: Arc<dyn ResultStore> = match (cache_dir, cache_addr) {
                (Some(_), Some(_)) => {
                    return Err(format!(
                        "cache tier `{tier}` takes exactly one back tier: \
                         --cache-dir (disk) or --cache-addr (remote), not both"
                    ))
                }
                (Some(dir), None) => disk(dir)?,
                (None, Some(addr)) => remote(addr)?,
                (None, None) => return Err(need_dir()),
            };
            Arc::new(TieredStore::new(
                Arc::new(MemoryStore::new(capacity, shards)),
                back,
            ))
        }
    })
}
