//! A sharded LRU cache for optimization results.
//!
//! The service's memoization layer: keys are [`JobKey`](crate::JobKey)s
//! (circuit fingerprint + oracle id + engine config), values are completed
//! job outputs behind `Arc`s so hits are O(1) clones. Sharding bounds lock
//! contention under the worker pool: each key hashes to one shard, and each
//! shard is an independently locked LRU.
//!
//! Eviction is per shard (capacity is split evenly across shards), with
//! exact LRU order maintained by a monotonic touch clock and a
//! stamp-ordered index — `O(lg n)` per touch, no unsafe linked lists.

use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Aggregate cache counters, cheap to read at any time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct Shard<K, V> {
    map: HashMap<K, (u64, Arc<V>)>,
    /// Touch-stamp → key, oldest first. Every entry in `map` has exactly
    /// one stamp here (its current one).
    order: BTreeMap<u64, K>,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V> Shard<K, V> {
    fn touch(&mut self, key: &K, clock: &AtomicU64) -> Option<Arc<V>> {
        let (stamp, value) = self.map.get_mut(key)?;
        let new_stamp = clock.fetch_add(1, Relaxed);
        self.order.remove(stamp);
        *stamp = new_stamp;
        self.order.insert(new_stamp, key.clone());
        Some(Arc::clone(value))
    }

    /// Inserts (or refreshes) `key`; returns the number of evictions.
    fn insert(&mut self, key: K, value: Arc<V>, clock: &AtomicU64) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        let new_stamp = clock.fetch_add(1, Relaxed);
        if let Some((stamp, slot)) = self.map.get_mut(&key) {
            self.order.remove(stamp);
            *stamp = new_stamp;
            *slot = value;
            self.order.insert(new_stamp, key);
            return 0;
        }
        let mut evicted = 0;
        while self.map.len() >= self.capacity {
            let Some((&oldest, _)) = self.order.iter().next() else {
                break;
            };
            let victim = self.order.remove(&oldest).expect("stamp present");
            self.map.remove(&victim);
            evicted += 1;
        }
        self.map.insert(key.clone(), (new_stamp, value));
        self.order.insert(new_stamp, key);
        evicted
    }
}

/// The sharded LRU. `K` must hash identically across threads, which every
/// `Hash` type does; shard choice uses a private FNV so it is independent
/// of `HashMap`'s randomized state.
pub struct ShardedLruCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Hash + Eq + Clone, V> ShardedLruCache<K, V> {
    /// `capacity` is the total entry budget, split evenly across `shards`.
    ///
    /// **Capacity `0` is the null cache**: every lookup misses, inserts are
    /// dropped, and no operation panics — including the `shards == 0` and
    /// `new(0, 0)` corners, where the shard count is clamped to one empty
    /// shard. This is what [`ServiceConfig::cache_capacity`]
    /// `= 0` (and the `null` store tier) rely on.
    ///
    /// **Capacity rounding**: the shard count is clamped to
    /// `1..=capacity`, then each shard gets `max(1, capacity / shards)`
    /// slots. The *effective* total is therefore
    /// `per_shard × shards`, which rounds the requested capacity **down**
    /// when `shards` does not divide it (e.g. `new(10, 4)` holds at most
    /// 8 entries) and never rounds it up. Callers that need an exact
    /// budget should pass a capacity divisible by the shard count.
    ///
    /// [`ServiceConfig::cache_capacity`]: crate::ServiceConfig
    pub fn new(capacity: usize, shards: usize) -> ShardedLruCache<K, V> {
        let shards = shards.clamp(1, capacity.max(1));
        let per_shard = if capacity == 0 {
            0
        } else {
            (capacity / shards).max(1)
        };
        ShardedLruCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        order: BTreeMap::new(),
                        capacity: per_shard,
                    })
                })
                .collect(),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &K) -> &Mutex<Shard<K, V>> {
        struct Fnv(u64);
        impl Hasher for Fnv {
            fn finish(&self) -> u64 {
                self.0
            }
            fn write(&mut self, bytes: &[u8]) {
                for &b in bytes {
                    self.0 ^= b as u64;
                    self.0 = self.0.wrapping_mul(0x100000001b3);
                }
            }
        }
        let mut h = Fnv(0xcbf29ce484222325);
        key.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let hit = self
            .shard_for(key)
            .lock()
            .expect("cache shard poisoned")
            .touch(key, &self.clock);
        match &hit {
            Some(_) => self.hits.fetch_add(1, Relaxed),
            None => self.misses.fetch_add(1, Relaxed),
        };
        hit
    }

    /// Inserts `value` under `key`, evicting LRU entries if the shard is
    /// full. Re-inserting an existing key refreshes it in place. Returns
    /// how many entries were evicted (callers keeping their own eviction
    /// accounting — the segment-cache layer — use this; everyone else
    /// ignores it).
    pub fn insert(&self, key: K, value: Arc<V>) -> u64 {
        let evicted = self
            .shard_for(&key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value, &self.clock);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Relaxed);
        }
        evicted
    }

    /// Removes `key` if present; returns whether an entry was dropped.
    pub fn remove(&self, key: &K) -> bool {
        let mut shard = self.shard_for(key).lock().expect("cache shard poisoned");
        match shard.map.remove(key) {
            Some((stamp, _)) => {
                shard.order.remove(&stamp);
                true
            }
            None => false,
        }
    }

    /// Drops every entry; returns how many were removed. The monotonic
    /// hit/miss/eviction counters are preserved (a clear is an admin
    /// action, not an eviction).
    pub fn clear(&self) -> u64 {
        let mut removed = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            removed += shard.map.len() as u64;
            shard.map.clear();
            shard.order.clear();
        }
        removed
    }

    /// Folds `f` over every live value (e.g. approximate byte accounting).
    /// Takes each shard lock once; O(n) and not atomic across shards.
    pub fn sum_values(&self, f: impl Fn(&V) -> u64) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock().expect("cache shard poisoned");
                shard.map.values().map(|(_, v)| f(v)).sum::<u64>()
            })
            .sum()
    }

    /// Number of live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(8, 2);
        assert!(cache.get(&1).is_none());
        cache.insert(1, Arc::new(10));
        assert_eq!(cache.get(&1).as_deref(), Some(&10));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        // Single shard to make the LRU order observable.
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(2, 1);
        cache.insert(1, Arc::new(1));
        cache.insert(2, Arc::new(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&1).is_some());
        cache.insert(3, Arc::new(3));
        assert!(
            cache.get(&2).is_none(),
            "LRU entry should have been evicted"
        );
        assert!(cache.get(&1).is_some());
        assert!(cache.get(&3).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(0, 4);
        cache.insert(1, Arc::new(1));
        assert!(cache.get(&1).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn zero_capacity_zero_shards_is_a_null_cache_never_a_panic() {
        // The degenerate corner: both knobs zero. Must behave exactly like
        // the null store — always miss, count misses, never panic — for
        // every operation the store layer forwards.
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(0, 0);
        cache.insert(7, Arc::new(7));
        assert!(cache.get(&7).is_none());
        assert!(!cache.remove(&7));
        assert_eq!(cache.clear(), 0);
        assert_eq!(cache.sum_values(|v| *v), 0);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.evictions), (0, 1, 0, 0));

        // Zero shards with a real capacity clamps to one shard.
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(4, 0);
        cache.insert(1, Arc::new(10));
        assert_eq!(cache.get(&1).as_deref(), Some(&10));
    }

    #[test]
    fn capacity_rounds_down_across_shards() {
        // 10 entries over 4 shards = 2 per shard = 8 effective: the
        // documented round-down. Overfilling one shard evicts within it,
        // so the total can never exceed per_shard * shards.
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(10, 4);
        for k in 0..100u64 {
            cache.insert(k, Arc::new(k));
        }
        assert!(
            cache.len() <= 8,
            "effective capacity is 8, got {}",
            cache.len()
        );
        assert!(cache.stats().evictions >= 92);
    }

    #[test]
    fn remove_and_clear_drop_entries() {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(8, 2);
        for k in 0..4u64 {
            cache.insert(k, Arc::new(k * 10));
        }
        assert!(cache.remove(&2));
        assert!(!cache.remove(&2), "second remove finds nothing");
        assert!(cache.get(&2).is_none());
        assert_eq!(cache.len(), 3);
        // Removing must not corrupt the LRU order index.
        cache.insert(2, Arc::new(20));
        assert_eq!(cache.sum_values(|v| *v), 60); // values 0 + 10 + 20 + 30
        assert_eq!(cache.clear(), 4);
        assert!(cache.is_empty());
        assert!(cache.get(&1).is_none());
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(2, 1);
        cache.insert(1, Arc::new(1));
        cache.insert(1, Arc::new(100));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&1).as_deref(), Some(&100));
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn sharding_spreads_and_never_loses_entries_under_threads() {
        let cache: Arc<ShardedLruCache<u64, u64>> = Arc::new(ShardedLruCache::new(1024, 8));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..100 {
                        let k = t * 1000 + i;
                        cache.insert(k, Arc::new(k));
                        assert_eq!(cache.get(&k).as_deref(), Some(&k));
                    }
                });
            }
        });
        assert_eq!(cache.len(), 800);
    }
}
