//! Segment-level incremental caching for parameterized workloads.
//!
//! The result store memoizes *whole jobs* by whole-circuit fingerprint, so
//! a variational client (VQE/QAOA) resubmitting the same ansatz with fresh
//! angles every iteration misses 100% of the time — while the oracle
//! re-derives identical rewrites on every structurally-unchanged
//! 2Ω-segment. This module repeats the [`ResultStore`](crate::ResultStore)
//! seam pattern one
//! level down: a bounded, sharded-LRU cache of *segment* rewrites behind
//! the [`SegmentCache`] storage trait, adapted per job into the engine's
//! [`popqc_core::SegmentCacheHook`] so hits replace oracle calls in the
//! hot path itself.
//!
//! # Keying
//!
//! Every entry is keyed by `(segment fingerprint, registry oracle id)`.
//! The fingerprint domain depends on what the oracle declares:
//!
//! * **Angle-independent oracles** ([`SegmentOracle::angle_independent`]
//!   `== true`, e.g. the `structural` oracle) key by the angle-abstracted
//!   fingerprint ([`fingerprint_gates_abstract`]) and store a
//!   [`SegTemplate`]: the rewrite with every surviving rotation recorded
//!   as *input slot i, possibly negated* instead of a concrete angle. One
//!   derived template then serves every angle assignment of the same
//!   skeleton — the whole parameter sweep.
//! * **Everything else** (honest default) keys by the exact-angle
//!   fingerprint and stores the concrete output gates. Still useful —
//!   segments repeat verbatim across rounds and across structurally
//!   overlapping submissions — but angle changes miss, as they must.
//!
//! The two key domains are disjoint by construction (the abstract hasher
//! prepends a domain tag), so both entry kinds share one table.
//!
//! # Template soundness
//!
//! A template is derived by re-running the oracle on a *marker* copy of
//! the segment in which rotation `i` carries the angle
//! `π/(MARKER_BASE + i)` — denominators far above anything a real
//! workload produces, so each surviving output rotation identifies its
//! input slot (and whether the oracle negated it) by inspection. The
//! derivation is then **verified**: the template is materialized with the
//! original segment's angles and must reproduce the oracle's concrete
//! output byte for byte, else the derivation is discarded and the entry
//! falls back to exact keying. A mis-declared `angle_independent` oracle
//! therefore degrades to exact caching instead of serving wrong rewrites.
//!
//! Non-improving outputs are cached too (negative caching): the engine
//! re-examines boundary segments every run, and without negative entries
//! a warm sweep would re-pay the oracle for every "nothing to do here"
//! answer.

use crate::cache::{CacheStats, ShardedLruCache};
use crate::metrics;
use qcir::{fingerprint_gates_abstract, Angle, Fingerprint, Gate};
use qoracle::SegmentOracle;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Marker denominators start here — far above the largest denominator any
/// workspace producer emits (QASM parsing caps at 2²⁰, benchgen at 2¹²),
/// so a marker angle can never collide with a real one.
pub const MARKER_BASE: i64 = 1 << 30;

/// A segment-cache key: the segment's fingerprint (exact or
/// angle-abstracted — the domains are disjoint) plus the registry oracle
/// id, so two oracles never share rewrites even on identical segments.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SegKey {
    /// Fingerprint over `(num_qubits, gates)` — exact
    /// ([`Circuit::fingerprint`]-style) or abstract, per the oracle's
    /// capability.
    ///
    /// [`Circuit::fingerprint`]: qcir::Circuit::fingerprint
    pub fingerprint: Fingerprint,
    /// The registry id the rewrite was derived under.
    pub oracle_id: String,
}

/// One gate of a [`SegTemplate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TemplateGate {
    /// A gate carried into the output verbatim (everything but `RZ`).
    Fixed(Gate),
    /// The rotation from input slot `slot` (the `slot`-th `RZ` of the
    /// segment, in order), on `qubit`, negated if the oracle flipped it.
    Rot {
        /// Output wire of the rotation.
        qubit: u32,
        /// Index into the input segment's rotations, in segment order.
        slot: usize,
        /// Whether the oracle emitted the slot's angle negated.
        negated: bool,
    },
}

/// An angle-abstracted segment rewrite: the oracle's output with every
/// surviving rotation recorded by *input slot* instead of concrete angle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegTemplate {
    /// Output gates, rotations by reference into the input.
    pub gates: Vec<TemplateGate>,
    /// Number of rotations the input segment carries (= valid slots).
    pub slots: usize,
}

impl SegTemplate {
    /// Instantiates the template on a concrete rotation-angle assignment
    /// (the input segment's `RZ` angles, in order). `None` if the
    /// assignment has the wrong arity — callers treat that as a miss.
    pub fn materialize(&self, angles: &[Angle]) -> Option<Vec<Gate>> {
        if angles.len() != self.slots {
            return None;
        }
        self.gates
            .iter()
            .map(|tg| match *tg {
                TemplateGate::Fixed(g) => Some(g),
                TemplateGate::Rot {
                    qubit,
                    slot,
                    negated,
                } => {
                    let a = *angles.get(slot)?;
                    Some(Gate::Rz(qubit, if negated { a.neg() } else { a }))
                }
            })
            .collect()
    }
}

/// A cached segment rewrite: concrete gates under an exact-angle key, or
/// a template under an angle-abstracted key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SegEntry {
    /// The oracle's output verbatim (exact-angle keying).
    Exact(Vec<Gate>),
    /// An angle-abstracted rewrite (see [`SegTemplate`]).
    Template(SegTemplate),
}

/// The rotation angles of `segment`, in order — a template's slot space.
pub fn rotation_angles(segment: &[Gate]) -> Vec<Angle> {
    segment
        .iter()
        .filter_map(|g| match *g {
            Gate::Rz(_, a) => Some(a),
            _ => None,
        })
        .collect()
}

/// Derives (and verifies) an angle-abstracted template for
/// `oracle.optimize(segment)`, whose concrete output is `concrete_out`.
///
/// Costs one extra oracle call (on the marker copy). Returns `None` — and
/// the caller falls back to exact keying — whenever the oracle's behaviour
/// cannot be expressed as a pure slot mapping: it synthesized a rotation
/// that is neither a slot copy nor a slot negation, or the verification
/// replay fails to reproduce `concrete_out` byte for byte.
pub fn derive_template(
    oracle: &dyn SegmentOracle<Gate>,
    segment: &[Gate],
    num_qubits: u32,
    concrete_out: &[Gate],
) -> Option<SegTemplate> {
    let mut slots = 0usize;
    let marker_segment: Vec<Gate> = segment
        .iter()
        .map(|g| match *g {
            Gate::Rz(q, _) => {
                let marker = Angle::pi_frac(1, MARKER_BASE + slots as i64);
                slots += 1;
                Gate::Rz(q, marker)
            }
            other => other,
        })
        .collect();

    let marker_out = oracle.optimize(&marker_segment, num_qubits);
    let gates: Option<Vec<TemplateGate>> = marker_out
        .iter()
        .map(|g| match *g {
            Gate::Rz(q, a) => {
                let den = a.denominator();
                let slot = usize::try_from(den.checked_sub(MARKER_BASE)?).ok()?;
                if slot >= slots {
                    return None;
                }
                // Canonical form puts a negated marker at (2·den − 1)/den.
                let negated = match a.numerator() {
                    1 => false,
                    n if n == 2 * den - 1 => true,
                    _ => return None,
                };
                Some(TemplateGate::Rot {
                    qubit: q,
                    slot,
                    negated,
                })
            }
            other => Some(TemplateGate::Fixed(other)),
        })
        .collect();
    let template = SegTemplate {
        gates: gates?,
        slots,
    };

    // Verification replay: the template instantiated on the original
    // angles must reproduce the concrete run exactly. This is what keeps
    // a lying `angle_independent` declaration from ever serving a wrong
    // rewrite — it demotes to exact keying instead.
    if template.materialize(&rotation_angles(segment)).as_deref() != Some(concrete_out) {
        return None;
    }
    Some(template)
}

/// Segment-cache storage: the [`ResultStore`](crate::ResultStore) seam
/// pattern one level down. The [`SegmentCacheLayer`] above handles
/// keying, templates, and logical accounting; implementations only move
/// entries.
pub trait SegmentCache: Send + Sync {
    /// Looks up `key`, refreshing recency on a hit.
    fn get(&self, key: &SegKey) -> Option<Arc<SegEntry>>;

    /// Stores `entry` under `key`; returns how many entries were evicted
    /// to make room.
    fn put(&self, key: SegKey, entry: SegEntry) -> u64;

    /// Drops every entry; returns how many were removed.
    fn clear(&self) -> u64;

    /// Live entry count.
    fn len(&self) -> usize;

    /// Whether the cache currently holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entry budget (`0` = disabled).
    fn capacity(&self) -> usize;

    /// Raw storage counters (hits/misses here count *probes*, which
    /// exceed the layer's logical lookups under abstract double-probing).
    fn stats(&self) -> CacheStats;
}

/// The in-process backend: a bounded [`ShardedLruCache`] of segment
/// entries.
pub struct MemorySegmentCache {
    inner: ShardedLruCache<SegKey, SegEntry>,
    capacity: usize,
}

impl MemorySegmentCache {
    /// `capacity` total entries split over `shards` locks (same rounding
    /// rules as [`ShardedLruCache::new`]; `0` disables).
    pub fn new(capacity: usize, shards: usize) -> MemorySegmentCache {
        MemorySegmentCache {
            inner: ShardedLruCache::new(capacity, shards),
            capacity,
        }
    }
}

impl SegmentCache for MemorySegmentCache {
    fn get(&self, key: &SegKey) -> Option<Arc<SegEntry>> {
        self.inner.get(key)
    }

    fn put(&self, key: SegKey, entry: SegEntry) -> u64 {
        self.inner.insert(key, Arc::new(entry))
    }

    fn clear(&self) -> u64 {
        self.inner.clear()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> CacheStats {
        self.inner.stats()
    }
}

/// The disabled backend: never hits, never stores, never panics — what
/// `seg_cache_capacity = 0` resolves to.
pub struct NullSegmentCache;

impl SegmentCache for NullSegmentCache {
    fn get(&self, _key: &SegKey) -> Option<Arc<SegEntry>> {
        None
    }

    fn put(&self, _key: SegKey, _entry: SegEntry) -> u64 {
        0
    }

    fn clear(&self) -> u64 {
        0
    }

    fn len(&self) -> usize {
        0
    }

    fn capacity(&self) -> usize {
        0
    }

    fn stats(&self) -> CacheStats {
        CacheStats::default()
    }
}

/// Point-in-time segment-cache counters, as surfaced by
/// `ServiceStats::seg_cache` and `GET /v1/stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegCacheStats {
    /// Whether the cache is on (`capacity > 0`).
    pub enabled: bool,
    /// Configured entry budget.
    pub capacity: usize,
    /// Entries currently resident.
    pub entries: usize,
    /// Logical lookups served from the cache (one per replaced oracle
    /// call).
    pub hits: u64,
    /// Logical lookups that fell through to the oracle.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl SegCacheStats {
    /// Hits over lookups, `0.0` when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The service-owned layer over a [`SegmentCache`] backend: logical
/// hit/miss accounting (one count per engine lookup, independent of how
/// many raw probes the abstract/exact fallback makes) plus eviction
/// bookkeeping for the Prometheus counters.
pub struct SegmentCacheLayer {
    cache: Arc<dyn SegmentCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl SegmentCacheLayer {
    /// A memory-backed layer (`capacity = 0` resolves to the null
    /// backend, making every hook call a cheap no-op).
    pub fn new(capacity: usize, shards: usize) -> SegmentCacheLayer {
        let cache: Arc<dyn SegmentCache> = if capacity == 0 {
            Arc::new(NullSegmentCache)
        } else {
            Arc::new(MemorySegmentCache::new(capacity, shards))
        };
        SegmentCacheLayer::with_cache(cache)
    }

    /// A layer over an explicit backend — the pluggable seam.
    pub fn with_cache(cache: Arc<dyn SegmentCache>) -> SegmentCacheLayer {
        SegmentCacheLayer {
            cache,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Whether lookups can ever hit.
    pub fn enabled(&self) -> bool {
        self.cache.capacity() > 0
    }

    /// Drops every entry; returns how many were removed. The monotonic
    /// counters survive (clearing is an admin action, not an eviction).
    pub fn clear(&self) -> u64 {
        self.cache.clear()
    }

    /// Point-in-time counters (logical hits/misses, storage
    /// entries/evictions).
    pub fn stats(&self) -> SegCacheStats {
        SegCacheStats {
            enabled: self.enabled(),
            capacity: self.cache.capacity(),
            entries: self.cache.len(),
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
        }
    }

    /// Binds this layer to one job's oracle, producing the engine hook.
    /// `oracle` must be the *raw* oracle (template derivation calls it on
    /// marker segments; a timing wrapper would pollute the latency
    /// histograms with derivation calls).
    pub fn for_job<'a>(
        &'a self,
        oracle_id: &'a str,
        oracle: &'a (dyn SegmentOracle<Gate> + Send + Sync),
    ) -> JobSegmentCache<'a> {
        self.for_job_traced(oracle_id, oracle, qobs::trace::disabled(), 0)
    }

    /// [`for_job`](Self::for_job) recording per-segment lookup spans
    /// into `trace` under `parent` (the job's engine span). Lookups run
    /// on qexec pool threads, so the trace position is carried
    /// explicitly rather than via the thread-local context.
    pub fn for_job_traced<'a>(
        &'a self,
        oracle_id: &'a str,
        oracle: &'a (dyn SegmentOracle<Gate> + Send + Sync),
        trace: qobs::trace::TraceHandle,
        parent: u64,
    ) -> JobSegmentCache<'a> {
        JobSegmentCache {
            layer: self,
            oracle_id,
            oracle,
            angle_abstract: oracle.angle_independent(),
            trace,
            parent,
        }
    }

    fn record_put(&self, key: SegKey, entry: SegEntry) {
        let evicted = self.cache.put(key, entry);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Relaxed);
            metrics::segcache_evictions().add(evicted);
        }
    }
}

/// One job's view of the [`SegmentCacheLayer`]: the
/// [`popqc_core::SegmentCacheHook`] the engine consults before every
/// oracle call, bound to the job's oracle id and capability.
pub struct JobSegmentCache<'a> {
    layer: &'a SegmentCacheLayer,
    oracle_id: &'a str,
    oracle: &'a (dyn SegmentOracle<Gate> + Send + Sync),
    angle_abstract: bool,
    /// The job's trace (disabled for untraced jobs); each segment
    /// lookup becomes a span under the engine span.
    trace: qobs::trace::TraceHandle,
    parent: u64,
}

impl JobSegmentCache<'_> {
    fn key(&self, fingerprint: Fingerprint) -> SegKey {
        SegKey {
            fingerprint,
            oracle_id: self.oracle_id.to_string(),
        }
    }

    fn abstract_key(&self, segment: &[Gate], num_qubits: u32) -> SegKey {
        self.key(fingerprint_gates_abstract(num_qubits, segment))
    }

    fn exact_key(&self, segment: &[Gate], num_qubits: u32) -> SegKey {
        self.key(qcir::fingerprint_gates(num_qubits, segment))
    }

    fn lookup_inner(&self, segment: &[Gate], num_qubits: u32) -> Option<Vec<Gate>> {
        if self.angle_abstract {
            // Template probe first: one abstract entry covers every angle
            // assignment of this skeleton.
            if let Some(entry) = self
                .layer
                .cache
                .get(&self.abstract_key(segment, num_qubits))
            {
                if let SegEntry::Template(t) = entry.as_ref() {
                    if let Some(gates) = t.materialize(&rotation_angles(segment)) {
                        return Some(gates);
                    }
                }
            }
            // Fall through to the exact domain: segments whose template
            // derivation failed were demoted there.
        }
        let entry = self.layer.cache.get(&self.exact_key(segment, num_qubits))?;
        match entry.as_ref() {
            SegEntry::Exact(gates) => Some(gates.clone()),
            SegEntry::Template(_) => None,
        }
    }
}

impl popqc_core::SegmentCacheHook<Gate> for JobSegmentCache<'_> {
    fn lookup(&self, segment: &[Gate], num_qubits: u32) -> Option<Vec<Gate>> {
        if !self.layer.enabled() {
            return None;
        }
        let timer = metrics::segcache_lookup_duration().start_timer();
        let span = if self.trace.enabled() {
            Some(self.trace.span("segment_lookup", self.parent))
        } else {
            None
        };
        let result = self.lookup_inner(segment, num_qubits);
        if let Some(mut span) = span {
            span.attr("gates", segment.len());
            span.attr("hit", result.is_some());
        }
        drop(timer);
        match &result {
            Some(_) => {
                self.layer.hits.fetch_add(1, Relaxed);
                metrics::segcache_hits().inc();
            }
            None => {
                self.layer.misses.fetch_add(1, Relaxed);
                metrics::segcache_misses().inc();
            }
        }
        result
    }

    fn record(&self, segment: &[Gate], num_qubits: u32, optimized: &[Gate]) {
        if !self.layer.enabled() {
            return;
        }
        if self.angle_abstract {
            if let Some(template) = derive_template(self.oracle, segment, num_qubits, optimized) {
                self.layer.record_put(
                    self.abstract_key(segment, num_qubits),
                    SegEntry::Template(template),
                );
                return;
            }
            // Derivation failed (or the capability claim did not hold up
            // on this segment): demote to the exact domain.
        }
        self.layer.record_put(
            self.exact_key(segment, num_qubits),
            SegEntry::Exact(optimized.to_vec()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popqc_core::SegmentCacheHook;
    use qcir::Circuit;
    use qoracle::{RuleBasedOptimizer, StructuralOptimizer};

    fn sample_segment() -> Vec<Gate> {
        let mut c = Circuit::new(3);
        c.h(0)
            .h(0)
            .rz(1, Angle::PI_4)
            .cnot(0, 2)
            .cnot(0, 2)
            .rz(2, Angle::PI_2)
            .x(1);
        c.gates
    }

    fn with_angles(gates: &[Gate], fresh: &[Angle]) -> Vec<Gate> {
        let mut i = 0;
        gates
            .iter()
            .map(|g| match *g {
                Gate::Rz(q, _) => {
                    let a = fresh[i % fresh.len()];
                    i += 1;
                    Gate::Rz(q, a)
                }
                other => other,
            })
            .collect()
    }

    #[test]
    fn template_roundtrip_on_structural_oracle() {
        let oracle = StructuralOptimizer::new();
        let seg = sample_segment();
        let out = oracle.optimize(&seg, 3);
        let t = derive_template(&oracle, &seg, 3, &out).expect("structural oracle must template");
        assert_eq!(t.slots, 2);
        assert_eq!(
            t.materialize(&rotation_angles(&seg)).as_deref(),
            Some(&out[..])
        );

        // The same template instantiated on fresh angles equals a fresh
        // oracle run on the re-angled segment.
        let fresh = [Angle::pi_frac(3, 7), Angle::pi_frac(5, 9)];
        let seg2 = with_angles(&seg, &fresh);
        let out2 = oracle.optimize(&seg2, 3);
        assert_eq!(
            t.materialize(&rotation_angles(&seg2)).as_deref(),
            Some(&out2[..])
        );
    }

    #[test]
    fn template_derivation_refuses_angle_dependent_rewrites() {
        // The rule pipeline merges the two mergeable rotations below, a
        // value-dependent rewrite markers cannot survive: the replay check
        // must refuse the template.
        let oracle = RuleBasedOptimizer::oracle();
        let mut c = Circuit::new(1);
        c.rz(0, Angle::PI_4).rz(0, Angle::PI_4);
        let out = oracle.optimize(&c.gates, 1);
        assert!(derive_template(&oracle, &c.gates, 1, &out).is_none());
    }

    #[test]
    fn hook_serves_template_hits_across_angle_sweeps() {
        let oracle = StructuralOptimizer::new();
        let layer = SegmentCacheLayer::new(64, 4);
        let hook = layer.for_job("structural", &oracle);
        let seg = sample_segment();

        assert!(hook.lookup(&seg, 3).is_none());
        let out = oracle.optimize(&seg, 3);
        hook.record(&seg, 3, &out);
        assert_eq!(hook.lookup(&seg, 3).as_deref(), Some(&out[..]));

        // Fresh angles, same skeleton: still a hit, and exactly what a
        // fresh oracle run would produce.
        let seg2 = with_angles(&seg, &[Angle::pi_frac(11, 13), Angle::pi_frac(2, 5)]);
        let hit = hook.lookup(&seg2, 3).expect("abstract key must hit");
        assert_eq!(hit, oracle.optimize(&seg2, 3));

        let s = layer.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 1, 1));
        assert!(s.enabled);
    }

    #[test]
    fn hook_on_angle_dependent_oracle_keys_exactly() {
        let oracle = RuleBasedOptimizer::oracle();
        let layer = SegmentCacheLayer::new(64, 4);
        let hook = layer.for_job("rule_based", &oracle);
        let seg = sample_segment();

        let out = oracle.optimize(&seg, 3);
        hook.record(&seg, 3, &out);
        assert_eq!(hook.lookup(&seg, 3).as_deref(), Some(&out[..]));

        // Different angles = different exact key: must miss, never serve
        // the old rewrite.
        let seg2 = with_angles(&seg, &[Angle::pi_frac(1, 3)]);
        assert!(hook.lookup(&seg2, 3).is_none());
    }

    #[test]
    fn disabled_layer_is_inert() {
        let oracle = StructuralOptimizer::new();
        let layer = SegmentCacheLayer::new(0, 4);
        let hook = layer.for_job("structural", &oracle);
        let seg = sample_segment();
        hook.record(&seg, 3, &seg);
        assert!(hook.lookup(&seg, 3).is_none());
        let s = layer.stats();
        assert!(!s.enabled);
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn evictions_are_counted() {
        let oracle = RuleBasedOptimizer::oracle();
        let layer = SegmentCacheLayer::new(2, 1);
        let hook = layer.for_job("rule_based", &oracle);
        for i in 0..5i64 {
            let mut c = Circuit::new(1);
            c.rz(0, Angle::pi_frac(1, 3 + i));
            hook.record(&c.gates, 1, &c.gates);
        }
        let s = layer.stats();
        assert!(s.entries <= 2);
        assert!(s.evictions >= 3, "evictions: {}", s.evictions);
    }
}
