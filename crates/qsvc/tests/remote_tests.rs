//! Remote cache tier tests: the wire protocol's hostile-input rules
//! (truncation, oversized prefixes, unknown opcodes, version refusals),
//! the client's never-a-wrong-result validation, graceful degradation to
//! local misses with automatic recovery, and the acceptance property —
//! two replica services sharing one cache server answer a repeated job
//! with **zero** new oracle calls on the second replica.

use popqc_core::{PopqcConfig, PopqcStats};
use proptest::prelude::*;
use qcir::{Angle, Circuit};
use qsvc::wire::{self, Frame, Op, WireError, MAX_FRAME_BYTES, PROTOCOL_VERSION};
use qsvc::{
    build_store, CacheServer, CacheServerConfig, CachedRun, DiskStore, JobKey, MemoryStore,
    OptimizationService, OracleRegistry, RemoteConfig, RemoteStore, ResultStore, ServiceConfig,
    StoreTier,
};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A fresh temp dir, removed on drop (including on panic).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "popqc-remote-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sample_circuit() -> Circuit {
    let mut c = Circuit::new(3);
    c.h(0).h(0).cnot(0, 1).rz(2, Angle::PI_4).rz(2, Angle::PI_4);
    c
}

fn key_for(circuit: &Circuit, oracle_id: &str, omega: usize) -> JobKey {
    JobKey {
        fingerprint: circuit.fingerprint(),
        oracle_id: oracle_id.to_string(),
        config: PopqcConfig::with_omega(omega),
    }
}

fn run_for(circuit: &Circuit) -> Arc<CachedRun> {
    Arc::new(CachedRun {
        circuit: circuit.clone(),
        stats: PopqcStats {
            rounds: 3,
            oracle_calls: 17,
            accepted: 5,
            oracle_nanos: 1000,
            total_nanos: 2000,
            initial_units: 9,
            final_units: circuit.gates.len(),
            seg_cache_hits: 0,
            rounds_detail: Vec::new(),
        },
    })
}

/// A memory-backed cache server on an ephemeral loopback port.
fn memory_server() -> CacheServer {
    CacheServer::serve(
        "127.0.0.1:0",
        Arc::new(MemoryStore::new(64, 2)),
        CacheServerConfig::default(),
    )
    .expect("bind cache server")
}

/// A client with test-speed timeouts (fast failure, short cooldown).
fn fast_client(addr: &str) -> RemoteStore {
    RemoteStore::new(RemoteConfig {
        connect_timeout: Duration::from_millis(250),
        io_timeout: Duration::from_millis(500),
        retries: 1,
        backoff: Duration::from_millis(5),
        cooldown: Duration::from_millis(100),
        ..RemoteConfig::new(addr)
    })
    .expect("resolve loopback")
}

// ---------------------------------------------------------------------------
// Wire protocol: hostile-input rules
// ---------------------------------------------------------------------------

#[test]
fn truncated_frame_is_truncated_not_data() {
    // A frame that declares 10 bytes but delivers 4.
    let mut bytes = 10u32.to_be_bytes().to_vec();
    bytes.extend_from_slice(&[PROTOCOL_VERSION, Op::Ping as u8, 0xAA, 0xBB]);
    let err = wire::read_frame(&mut bytes.as_slice()).unwrap_err();
    assert!(matches!(err, WireError::Truncated), "got: {err}");

    // EOF inside the length prefix itself is also mid-frame.
    let err = wire::read_frame(&mut [0u8, 0, 0].as_slice()).unwrap_err();
    assert!(matches!(err, WireError::Truncated), "got: {err}");

    // EOF cleanly on the boundary is the peer hanging up, not an error
    // worth logging.
    let err = wire::read_frame(&mut [].as_slice()).unwrap_err();
    assert!(matches!(err, WireError::Closed), "got: {err}");
}

#[test]
fn oversized_length_prefix_is_refused_before_allocation() {
    // The prefix claims ~4 GiB; only the 4 prefix bytes exist. If the
    // reader allocated or tried to read the payload this would surface
    // as Truncated (or an OOM abort) — Oversized proves the length
    // check runs first.
    let huge = (u32::MAX).to_be_bytes();
    let err = wire::read_frame(&mut huge.as_slice()).unwrap_err();
    assert!(matches!(err, WireError::Oversized(u32::MAX)), "got: {err}");

    // One byte past the cap is refused; the cap itself is not.
    let just_over = (MAX_FRAME_BYTES + 1).to_be_bytes();
    let err = wire::read_frame(&mut just_over.as_slice()).unwrap_err();
    assert!(matches!(err, WireError::Oversized(_)), "got: {err}");

    // A length too small to hold version + opcode is a runt.
    let runt = 1u32.to_be_bytes().to_vec();
    let err = wire::read_frame(&mut [runt, vec![0u8]].concat().as_slice()).unwrap_err();
    assert!(matches!(err, WireError::Runt(1)), "got: {err}");
}

#[test]
fn unknown_opcode_and_foreign_version_are_refused() {
    let mut bad_op = 2u32.to_be_bytes().to_vec();
    bad_op.extend_from_slice(&[PROTOCOL_VERSION, 0x7F]);
    let err = wire::read_frame(&mut bad_op.as_slice()).unwrap_err();
    assert!(matches!(err, WireError::UnknownOpcode(0x7F)), "got: {err}");

    let mut bad_version = 2u32.to_be_bytes().to_vec();
    bad_version.extend_from_slice(&[PROTOCOL_VERSION + 1, Op::Ping as u8]);
    let err = wire::read_frame(&mut bad_version.as_slice()).unwrap_err();
    assert!(
        matches!(err, WireError::Version(v) if v == PROTOCOL_VERSION + 1),
        "got: {err}"
    );
}

#[test]
fn key_documents_round_trip() {
    let circuit = sample_circuit();
    let key = key_for(&circuit, "rule_based", 75);
    let payload = wire::encode_key(&key, "v3");
    let (back, version) = wire::decode_key(&payload).expect("decode own encoding");
    assert_eq!(back, key);
    assert_eq!(version, "v3");

    assert!(wire::decode_key(b"not json").is_err());
    assert!(wire::decode_key(b"{\"fingerprint\":\"abc\"}").is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every (opcode, payload) encodes to bytes that decode back to the
    /// identical frame — the streaming reader and the one-shot decoder
    /// agree, and trailing garbage is never silently absorbed.
    #[test]
    fn frame_encoding_round_trips(
        op_index in 0usize..13,
        payload in prop::collection::vec(0u8..255, 0..512),
    ) {
        let ops = [
            Op::Get, Op::Put, Op::Remove, Op::Clear, Op::Stats, Op::Ping,
            Op::Hit, Op::Miss, Op::Ack, Op::Count, Op::Report, Op::Pong,
            Op::Error,
        ];
        let frame = Frame::new(ops[op_index], payload);
        let bytes = frame.encode();

        // One-shot decode.
        prop_assert_eq!(&Frame::decode(&bytes).unwrap(), &frame);

        // Streaming decode consumes exactly one frame and leaves the
        // next frame's bytes untouched.
        let mut two = bytes.clone();
        two.extend_from_slice(&Frame::empty(Op::Ping).encode());
        let mut reader = two.as_slice();
        prop_assert_eq!(&wire::read_frame(&mut reader).unwrap(), &frame);
        prop_assert_eq!(wire::read_frame(&mut reader).unwrap().op, Op::Ping);

        // Trailing garbage after a one-shot decode is an error.
        let mut extra = bytes;
        extra.push(0);
        prop_assert!(Frame::decode(&extra).is_err());
    }
}

// ---------------------------------------------------------------------------
// Client <-> server semantics
// ---------------------------------------------------------------------------

#[test]
fn remote_store_round_trips_through_a_live_server() {
    let server = memory_server();
    let client = fast_client(&server.local_addr().to_string());
    let circuit = sample_circuit();
    let key = key_for(&circuit, "rule_based", 50);

    assert!(client.get(&key, "v1").is_none(), "fresh server misses");
    client.put(&key, "v1", run_for(&circuit));
    let hit = client
        .get(&key, "v1")
        .expect("served from the cache server");
    assert_eq!(hit.circuit, circuit);
    assert_eq!(hit.stats.oracle_calls, 17);

    // The server's own store holds the entry (shared state, not a
    // client-side echo).
    assert_eq!(server.store().len(), 1);

    let stats = client.stats();
    assert_eq!(stats.backend, "remote");
    assert_eq!(stats.tiers.len(), 1);
    assert_eq!(stats.tiers[0].tier, "remote");
    assert_eq!(stats.hits(), 1);
    assert_eq!(stats.misses(), 1);
    assert_eq!(stats.tiers[0].errors, 0);
    assert_eq!(stats.entries(), 1);
    assert_eq!(client.len(), 1);

    assert!(client.remove(&key), "remove reports the entry existed");
    assert!(!client.remove(&key), "second remove finds nothing");
    client.put(&key, "v1", run_for(&circuit));
    assert_eq!(client.clear(), 1);
    assert_eq!(server.store().len(), 0);
}

#[test]
fn oracle_version_mismatch_is_a_miss_and_stale_puts_are_refused() {
    let server = memory_server();
    let addr = server.local_addr().to_string();
    let client = fast_client(&addr);
    let circuit = sample_circuit();
    let key = key_for(&circuit, "rule_based", 50);

    // An entry written under oracle v1 must not answer a v2 lookup: the
    // version tag travels in the GET payload and the server's store
    // rejects the mismatch.
    client.put(&key, "v1", run_for(&circuit));
    assert!(client.get(&key, "v2").is_none(), "v2 lookup must miss");
    assert!(client.get(&key, "v1").is_some(), "v1 lookup still hits");

    // A PUT whose entry document declares a different store format is
    // refused outright — the server answers ERROR, not ACK, so replicas
    // running an older build cannot poison the shared cache.
    let mut doc: serde_json::Value =
        serde_json::from_str(&qsvc::encode_entry(&key, "v1", &run_for(&circuit))).unwrap();
    let serde_json::Value::Object(fields) = &mut doc else {
        panic!("entry document is an object");
    };
    for (name, value) in fields.iter_mut() {
        if name == "store_format" {
            *value = serde_json::json!(999u64);
        }
    }
    let mut conn = TcpStream::connect(&addr).unwrap();
    let stale = Frame::new(Op::Put, serde_json::to_string(&doc).unwrap().into_bytes());
    wire::write_frame(&mut conn, &stale).unwrap();
    let resp = wire::read_frame(&mut conn).unwrap();
    assert_eq!(resp.op, Op::Error, "stale store format must be refused");
    assert!(
        String::from_utf8_lossy(&resp.payload).contains("stale"),
        "diagnostic names the refusal"
    );
}

#[test]
fn invalid_hit_payload_from_a_confused_server_degrades_to_a_miss() {
    // A hand-rolled "server" that answers every GET with a HIT whose
    // payload is garbage. The client must answer None — never a wrong
    // result, never a panic.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let fake = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        let _req = wire::read_frame(&mut conn).unwrap();
        let lie = Frame::new(Op::Hit, b"{\"store_format\": \"gibberish\"}".to_vec());
        wire::write_frame(&mut conn, &lie).unwrap();
    });

    let client = fast_client(&addr);
    let circuit = sample_circuit();
    let key = key_for(&circuit, "rule_based", 50);
    assert!(
        client.get(&key, "v1").is_none(),
        "garbage hit must read as a miss"
    );
    let tier = &client.stats().tiers[0];
    assert_eq!(tier.misses, 1);
    assert!(tier.errors >= 1, "the lie is counted as a degraded op");
    fake.join().unwrap();
}

#[test]
fn server_survives_protocol_violations_and_keeps_serving() {
    let server = memory_server();
    let addr = server.local_addr().to_string();

    // Connection 1: oversized declared length → best-effort ERROR frame,
    // then the connection drops.
    let mut bad = TcpStream::connect(&addr).unwrap();
    bad.write_all(&(MAX_FRAME_BYTES + 1).to_be_bytes()).unwrap();
    bad.flush().unwrap();
    let resp = wire::read_frame(&mut bad).unwrap();
    assert_eq!(resp.op, Op::Error);
    let mut rest = Vec::new();
    bad.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server closes after a framing violation");

    // Connection 2: a response opcode as a request is answered with
    // ERROR (the stream is still framed, but the op is not a request).
    let mut weird = TcpStream::connect(&addr).unwrap();
    wire::write_frame(&mut weird, &Frame::empty(Op::Pong)).unwrap();
    assert_eq!(wire::read_frame(&mut weird).unwrap().op, Op::Error);

    // Connection 3: a well-formed client still gets service.
    let client = fast_client(&addr);
    let circuit = sample_circuit();
    let key = key_for(&circuit, "rule_based", 50);
    client.put(&key, "v1", run_for(&circuit));
    assert!(
        client.get(&key, "v1").is_some(),
        "server still serves after abuse"
    );
}

// ---------------------------------------------------------------------------
// Degradation and recovery
// ---------------------------------------------------------------------------

#[test]
fn unreachable_server_degrades_to_local_misses_and_recovers() {
    let tmp = TempDir::new("degrade");
    let circuit = sample_circuit();
    let key = key_for(&circuit, "rule_based", 50);

    // Phase 1: live server, entry cached.
    let store = Arc::new(DiskStore::open(tmp.path()).unwrap());
    let mut server =
        CacheServer::serve("127.0.0.1:0", store, CacheServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let client = fast_client(&addr.to_string());
    client.put(&key, "v1", run_for(&circuit));
    assert!(client.get(&key, "v1").is_some());

    // Phase 2: the server dies mid-run. Every operation is a quick local
    // miss / dropped write — no panic, no error surfaced to the caller.
    server.shutdown();
    drop(server);
    assert!(
        client.get(&key, "v1").is_none(),
        "down server reads as a miss"
    );
    client.put(&key, "v1", run_for(&circuit));
    assert!(!client.remove(&key));
    assert_eq!(client.clear(), 0);
    let tier = client.stats().tiers.remove(0);
    assert!(tier.errors >= 1, "degraded ops are counted: {tier:?}");

    // While the breaker is open, lookups short-circuit without touching
    // the network — a dead cache server must not add its connect timeout
    // to every job.
    let started = Instant::now();
    for _ in 0..50 {
        assert!(client.get(&key, "v1").is_none());
    }
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "breaker-open misses must be near-instant, took {:?}",
        started.elapsed()
    );

    // Phase 3: the server comes back on the SAME port over the SAME
    // directory. After the cooldown the client reconnects by itself and
    // the disk-persisted entry hits again.
    let revived = Arc::new(DiskStore::open(tmp.path()).unwrap());
    let server = CacheServer::serve(&addr.to_string(), revived, CacheServerConfig::default())
        .expect("rebind the released port");
    std::thread::sleep(Duration::from_millis(150)); // past the 100ms cooldown
    let hit = client.get(&key, "v1").expect("recovery resumes hits");
    assert_eq!(hit.circuit, circuit);
    drop(server);
}

#[test]
fn remote_store_construction_only_fails_on_unresolvable_addresses() {
    // Unreachable-but-valid is fine: boot order must not matter.
    assert!(RemoteStore::new(RemoteConfig::new("127.0.0.1:1")).is_ok());
    // Unresolvable is a configuration error worth failing loudly on.
    assert!(RemoteStore::new(RemoteConfig::new("not an address")).is_err());
}

// ---------------------------------------------------------------------------
// Acceptance: a two-replica fleet shares one warm cache
// ---------------------------------------------------------------------------

#[test]
fn second_replica_answers_from_the_shared_cache_with_zero_oracle_calls() {
    let tmp = TempDir::new("fleet");
    let server = CacheServer::serve(
        "127.0.0.1:0",
        Arc::new(DiskStore::open(tmp.path()).unwrap()),
        CacheServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    // Two independent "replicas": separate services, separate stores,
    // joined only by the cache server — exactly the
    // `popqc serve --cache-tier tiered --cache-addr` composition.
    let replica = |addr: &str| {
        let store = build_store(StoreTier::Tiered, None, Some(addr), 64, 2).unwrap();
        OptimizationService::with_store(
            OracleRegistry::builtin(),
            ServiceConfig {
                workers: 1,
                threads_per_job: 1,
                ..ServiceConfig::default()
            },
            store,
        )
    };
    let a = replica(&addr);
    let b = replica(&addr);

    let circuit = benchgen::Family::Vqe.generate(8, 7);
    let cfg = PopqcConfig::with_omega(50);

    // Replica A computes and write-through publishes to the server.
    let first = a.submit(circuit.clone(), &cfg).wait();
    assert!(!first.cache_hit, "fresh fleet: A computes");
    assert!(a.stats().oracle_calls_issued > 0);
    assert_eq!(server.store().len(), 1, "A's result reached the server");

    // Replica B — a different process as far as it knows — hits, with
    // zero oracle calls issued anywhere in B.
    let second = b.submit(circuit.clone(), &cfg).wait();
    assert!(second.cache_hit, "B must answer from the shared cache");
    assert_eq!(b.stats().oracle_calls_issued, 0, "zero oracle calls on B");
    assert_eq!(second.circuit, first.circuit, "byte-identical result");

    // B's remote tier shows the shared hit in its stats report.
    let tiers = b.store().stats().tiers;
    let remote = tiers.iter().find(|t| t.tier == "remote").unwrap();
    assert_eq!(remote.hits, 1);
}

// ---------------------------------------------------------------------------
// Connection cap (admission control)
// ---------------------------------------------------------------------------

/// `max_conns` gates *before* `accept`: excess clients wait in the kernel
/// backlog instead of being served or reset, and are admitted the moment
/// a slot frees — accept backpressure, not refusal.
#[test]
fn connection_cap_defers_accepts_until_a_slot_frees() {
    let server = CacheServer::serve(
        "127.0.0.1:0",
        Arc::new(MemoryStore::new(64, 2)),
        CacheServerConfig {
            max_conns: 1,
            ..CacheServerConfig::default()
        },
    )
    .expect("bind capped server");
    let addr = server.local_addr().to_string();

    // Connection A occupies the only slot (proved live by a ping).
    let mut a = TcpStream::connect(&addr).unwrap();
    wire::write_frame(&mut a, &Frame::empty(Op::Ping)).unwrap();
    assert_eq!(wire::read_frame(&mut a).unwrap().op, Op::Pong);

    // Connection B lands in the kernel backlog: the TCP connect succeeds,
    // but the server must not answer while A holds the slot.
    let mut b = TcpStream::connect(&addr).unwrap();
    wire::write_frame(&mut b, &Frame::empty(Op::Ping)).unwrap();
    b.set_read_timeout(Some(Duration::from_millis(300)))
        .unwrap();
    let mut probe = [0u8; 1];
    match b.read(&mut probe) {
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "expected a read timeout while capped, got: {e}"
        ),
        Ok(n) => panic!("capped server must not serve B yet (read {n} bytes)"),
    }

    // A hangs up; its slot frees and the queued B is served.
    drop(a);
    b.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    assert_eq!(wire::read_frame(&mut b).unwrap().op, Op::Pong);
}
