//! Result-store tests: the pluggable-backend seam, disk-tier
//! crash-consistency (truncated / wrong-format / stale-oracle entries
//! must read as misses, never errors or wrong results), tiered
//! write-through + promote-on-hit, and the acceptance property — a
//! service restarted over the same cache directory answers a repeated
//! job from disk with **zero** new oracle calls.

use popqc_core::{PopqcConfig, PopqcStats};
use qcir::{Angle, Circuit, Gate};
use qoracle::{RuleBasedOptimizer, SegmentOracle};
use qsvc::{
    build_store, CachedRun, DiskStore, JobKey, MemoryStore, NullStore, OptimizationService,
    OracleRegistry, ResultStore, ServiceConfig, StoreTier, TieredStore,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// A fresh temp dir, removed on drop (including on panic).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "popqc-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sample_circuit() -> Circuit {
    let mut c = Circuit::new(3);
    c.h(0).h(0).cnot(0, 1).rz(2, Angle::PI_4).rz(2, Angle::PI_4);
    c
}

fn key_for(circuit: &Circuit, oracle_id: &str, omega: usize) -> JobKey {
    JobKey {
        fingerprint: circuit.fingerprint(),
        oracle_id: oracle_id.to_string(),
        config: PopqcConfig::with_omega(omega),
    }
}

fn run_for(circuit: &Circuit) -> Arc<CachedRun> {
    Arc::new(CachedRun {
        circuit: circuit.clone(),
        stats: PopqcStats {
            rounds: 3,
            oracle_calls: 17,
            accepted: 5,
            oracle_nanos: 1000,
            total_nanos: 2000,
            initial_units: 9,
            final_units: circuit.gates.len(),
            seg_cache_hits: 0,
            rounds_detail: Vec::new(),
        },
    })
}

/// The single `.entry` file in `dir` (panics unless exactly one exists).
fn sole_entry_file(dir: &Path) -> PathBuf {
    let entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "entry"))
        .collect();
    assert_eq!(entries.len(), 1, "expected exactly one entry: {entries:?}");
    entries.into_iter().next().unwrap()
}

fn quarantine_count(dir: &Path) -> usize {
    std::fs::read_dir(dir.join("quarantine"))
        .map(|d| d.flatten().count())
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// MemoryStore / NullStore / seam
// ---------------------------------------------------------------------------

#[test]
fn memory_store_round_trips_and_reports_one_tier() {
    let store = MemoryStore::new(8, 2);
    let circuit = sample_circuit();
    let key = key_for(&circuit, "rule_based", 50);
    assert!(store.get(&key, "v1").is_none());
    store.put(&key, "v1", run_for(&circuit));
    let hit = store.get(&key, "v1").expect("second probe hits");
    assert_eq!(hit.circuit, circuit);
    assert_eq!(store.len(), 1);

    let stats = store.stats();
    assert_eq!(stats.backend, "memory");
    assert_eq!(stats.tiers.len(), 1);
    assert_eq!(stats.hits(), 1);
    assert_eq!(stats.misses(), 1);
    assert!(stats.bytes() > 0, "approximate bytes must be non-zero");

    assert!(store.remove(&key));
    assert!(store.get(&key, "v1").is_none());
    store.put(&key, "v1", run_for(&circuit));
    assert_eq!(store.clear(), 1);
    assert!(store.is_empty());
}

#[test]
fn zero_capacity_memory_store_is_a_null_store() {
    let store = MemoryStore::new(0, 0);
    let circuit = sample_circuit();
    let key = key_for(&circuit, "rule_based", 50);
    store.put(&key, "v1", run_for(&circuit));
    assert!(store.get(&key, "v1").is_none());
    assert_eq!(store.len(), 0);
}

#[test]
fn null_store_never_hits() {
    let store = NullStore::new();
    let circuit = sample_circuit();
    let key = key_for(&circuit, "rule_based", 50);
    store.put(&key, "v1", run_for(&circuit));
    assert!(store.get(&key, "v1").is_none());
    assert_eq!(store.stats().misses(), 1);
    assert_eq!(store.clear(), 0);
}

#[test]
fn build_store_rejects_unknown_tier_and_missing_dir() {
    let err = "diskette".parse::<StoreTier>().unwrap_err();
    assert!(err.contains("unknown cache tier"), "got: {err}");
    assert!(
        err.contains("memory, disk, tiered, remote, null"),
        "got: {err}"
    );

    for tier in [StoreTier::Disk, StoreTier::Tiered] {
        let Err(err) = build_store(tier, None, None, 8, 2) else {
            panic!("{tier}: building without a dir must fail");
        };
        assert!(err.contains("requires --cache-dir"), "got: {err}");
    }

    // The remote tier needs a server address...
    let Err(err) = build_store(StoreTier::Remote, None, None, 8, 2) else {
        panic!("remote without an addr must fail");
    };
    assert!(err.contains("requires --cache-addr"), "got: {err}");

    // ...and tiered takes exactly one back tier, not both.
    let tmp = TempDir::new("both-backs");
    let Err(err) = build_store(
        StoreTier::Tiered,
        Some(tmp.path()),
        Some("127.0.0.1:1"),
        8,
        2,
    ) else {
        panic!("tiered over both disk and remote must fail");
    };
    assert!(err.contains("exactly one back tier"), "got: {err}");
}

// ---------------------------------------------------------------------------
// DiskStore
// ---------------------------------------------------------------------------

#[test]
fn disk_store_round_trips_across_instances() {
    let tmp = TempDir::new("roundtrip");
    let circuit = sample_circuit();
    let key = key_for(&circuit, "rule_based", 50);
    {
        let store = DiskStore::open(tmp.path()).unwrap();
        store.put(&key, "v1", run_for(&circuit));
        assert_eq!(store.len(), 1);
    }
    // A *fresh* instance (a new process, as far as the layout knows).
    let store = DiskStore::open(tmp.path()).unwrap();
    let hit = store.get(&key, "v1").expect("persisted entry hits");
    assert_eq!(hit.circuit, circuit);
    assert_eq!(hit.stats.oracle_calls, 17);
    assert_eq!(hit.stats.final_units, circuit.gates.len());

    // A different omega is a different key: plain miss, entry untouched.
    assert!(store
        .get(&key_for(&circuit, "rule_based", 51), "v1")
        .is_none());
    assert_eq!(store.len(), 1);
}

#[test]
fn disk_store_truncated_entry_is_a_quarantined_miss() {
    let tmp = TempDir::new("truncated");
    let circuit = sample_circuit();
    let key = key_for(&circuit, "rule_based", 50);
    let store = DiskStore::open(tmp.path()).unwrap();
    store.put(&key, "v1", run_for(&circuit));

    // Simulate a crash mid-write-by-an-older-layout / torn file: chop the
    // entry body in half.
    let path = sole_entry_file(tmp.path());
    let full = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &full[..full.len() / 2]).unwrap();

    assert!(store.get(&key, "v1").is_none(), "truncated must miss");
    assert!(!path.exists(), "corrupt file must be moved aside");
    assert_eq!(quarantine_count(tmp.path()), 1);
    assert_eq!(store.quarantined(), 1);
    // The miss self-healed: the next put-get cycle works again.
    store.put(&key, "v1", run_for(&circuit));
    assert!(store.get(&key, "v1").is_some());
}

#[test]
fn disk_store_wrong_format_version_is_an_invalidated_miss() {
    let tmp = TempDir::new("format");
    let circuit = sample_circuit();
    let key = key_for(&circuit, "rule_based", 50);
    let store = DiskStore::open(tmp.path()).unwrap();
    store.put(&key, "v1", run_for(&circuit));

    let path = sole_entry_file(tmp.path());
    let body = std::fs::read_to_string(&path).unwrap();
    std::fs::write(
        &path,
        body.replace("\"store_format\":1", "\"store_format\":999"),
    )
    .unwrap();

    assert!(store.get(&key, "v1").is_none(), "foreign format must miss");
    assert!(!path.exists(), "stale entry must be removed");
    assert_eq!(store.invalidated(), 1);
    assert_eq!(
        quarantine_count(tmp.path()),
        0,
        "stale is removed, not quarantined"
    );
}

#[test]
fn disk_store_mismatched_oracle_version_is_an_invalidated_miss() {
    let tmp = TempDir::new("oracleversion");
    let circuit = sample_circuit();
    let key = key_for(&circuit, "rule_based", 50);
    let store = DiskStore::open(tmp.path()).unwrap();
    store.put(&key, "0.2.0+rule", run_for(&circuit));

    // Same key, newer oracle code: the entry must be retired, not trusted.
    assert!(store.get(&key, "0.3.0+rule").is_none());
    assert_eq!(store.invalidated(), 1);
    assert_eq!(store.len(), 0, "stale entry removed from disk");

    // Re-written under the new version, it serves again.
    store.put(&key, "0.3.0+rule", run_for(&circuit));
    assert!(store.get(&key, "0.3.0+rule").is_some());
}

#[test]
fn disk_store_garbage_file_is_a_quarantined_miss() {
    let tmp = TempDir::new("garbage");
    let circuit = sample_circuit();
    let key = key_for(&circuit, "rule_based", 50);
    let store = DiskStore::open(tmp.path()).unwrap();
    store.put(&key, "v1", run_for(&circuit));
    let path = sole_entry_file(tmp.path());

    // Unparseable or version-less bodies are corrupt (quarantined); a
    // parseable v1 body missing its key fields is foreign/stale (removed).
    for garbage in ["not json at all", "{}", "{\"store_format\":1}"] {
        std::fs::write(&path, garbage).unwrap();
        assert!(store.get(&key, "v1").is_none(), "`{garbage}` must miss");
        assert!(!path.exists(), "`{garbage}` must not stay in place");
        // Restore a valid entry for the next iteration.
        store.put(&key, "v1", run_for(&circuit));
    }
    assert_eq!(store.quarantined(), 2);
    assert_eq!(store.invalidated(), 1);
    assert_eq!(quarantine_count(tmp.path()), 2);
}

#[test]
fn disk_store_rejects_unit_count_mismatch() {
    let tmp = TempDir::new("unitcount");
    let circuit = sample_circuit();
    let key = key_for(&circuit, "rule_based", 50);
    let store = DiskStore::open(tmp.path()).unwrap();
    store.put(&key, "v1", run_for(&circuit));

    // A body whose stats disagree with its own circuit is corrupt.
    let path = sole_entry_file(tmp.path());
    let body = std::fs::read_to_string(&path).unwrap();
    let final_units = format!("\"final_units\":{}", circuit.gates.len());
    assert!(body.contains(&final_units), "exemplar body changed shape");
    std::fs::write(&path, body.replace(&final_units, "\"final_units\":1")).unwrap();
    assert!(store.get(&key, "v1").is_none());
    assert_eq!(quarantine_count(tmp.path()), 1);
}

#[test]
fn disk_store_clear_removes_entries_but_not_quarantine() {
    let tmp = TempDir::new("clear");
    let store = DiskStore::open(tmp.path()).unwrap();
    let mut circuits = Vec::new();
    for q in 0..4u32 {
        let mut c = Circuit::new(4);
        c.h(q).x(q);
        circuits.push(c);
    }
    for c in &circuits {
        store.put(&key_for(c, "rule_based", 50), "v1", run_for(c));
    }
    assert_eq!(store.len(), 4);
    assert!(store.stats().bytes() > 0);
    assert_eq!(store.clear(), 4);
    assert_eq!(store.len(), 0);
    for c in &circuits {
        assert!(store.get(&key_for(c, "rule_based", 50), "v1").is_none());
    }
}

/// Regression test: `clear()` used to sweep the directory and then
/// resync the entry/byte gauges from a second scan, without excluding
/// concurrent `put`s — a put landing between the sweep and the resync
/// was double-counted or lost, leaving `len()` permanently out of step
/// with the directory. `clear` now takes the admin gate as a writer for
/// the whole sweep+resync window, so after any interleaving the gauges
/// must match what a fresh scan of the directory reports.
#[test]
fn disk_store_clear_concurrent_with_put_keeps_gauges_consistent() {
    let tmp = TempDir::new("clear-race");
    let store = Arc::new(DiskStore::open(tmp.path()).unwrap());

    let writers: Vec<_> = (0..4)
        .map(|w| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let circuit = sample_circuit();
                for i in 0..50 {
                    // Distinct omega per put → distinct JobKey → distinct file.
                    let key = key_for(&circuit, "rule_based", 1 + w * 50 + i);
                    store.put(&key, "v1", run_for(&circuit));
                }
            })
        })
        .collect();
    let clearer = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            for _ in 0..20 {
                store.clear();
                std::thread::yield_now();
            }
        })
    };
    for t in writers {
        t.join().unwrap();
    }
    clearer.join().unwrap();

    // A fresh instance rescans the directory from scratch: its counts
    // are ground truth for what the raced instance's gauges must say.
    let rescan = DiskStore::open(tmp.path()).unwrap();
    assert_eq!(
        store.len(),
        rescan.len(),
        "entry gauge diverged from the directory after clear raced puts"
    );
    assert_eq!(
        store.stats().bytes(),
        rescan.stats().bytes(),
        "byte gauge diverged from the directory after clear raced puts"
    );
}

// ---------------------------------------------------------------------------
// TieredStore
// ---------------------------------------------------------------------------

#[test]
fn tiered_store_writes_through_and_promotes_on_hit() {
    let tmp = TempDir::new("tiered");
    let front = Arc::new(MemoryStore::new(8, 2));
    let back = Arc::new(DiskStore::open(tmp.path()).unwrap());
    let store = TieredStore::new(Arc::clone(&front) as _, Arc::clone(&back) as _);
    let circuit = sample_circuit();
    let key = key_for(&circuit, "rule_based", 50);

    // Write-through: a put lands in both tiers.
    store.put(&key, "v1", run_for(&circuit));
    assert!(front.get(&key, "v1").is_some(), "front holds the entry");
    assert!(back.get(&key, "v1").is_some(), "back holds the entry");

    // Promote-on-hit: drop the front copy; a tiered get must answer from
    // the back AND refill the front.
    assert!(front.remove(&key));
    assert!(store.get(&key, "v1").is_some());
    assert!(
        front.get(&key, "v1").is_some(),
        "back-tier hit must promote into the front"
    );

    // Per-tier stats: two tiers, front first, under the `tiered` backend.
    let stats = store.stats();
    assert_eq!(stats.backend, "tiered");
    assert_eq!(stats.tiers.len(), 2);
    assert_eq!(stats.tiers[0].tier, "memory");
    assert_eq!(stats.tiers[1].tier, "disk");

    // Clear drops both tiers.
    assert_eq!(store.clear(), 1);
    assert!(store.get(&key, "v1").is_none());
    assert!(front.get(&key, "v1").is_none());
}

// ---------------------------------------------------------------------------
// Service over the seam: the acceptance property
// ---------------------------------------------------------------------------

/// An oracle that counts its calls across service restarts (shared
/// counter) while delegating to the real rule pipeline.
struct CountingOracle {
    inner: RuleBasedOptimizer,
    calls: Arc<AtomicU64>,
}

impl SegmentOracle<Gate> for CountingOracle {
    fn optimize(&self, units: &[Gate], num_qubits: u32) -> Vec<Gate> {
        self.calls.fetch_add(1, Relaxed);
        self.inner.optimize(units, num_qubits)
    }

    fn cost(&self, units: &[Gate]) -> u64 {
        self.inner.cost(units)
    }

    fn name(&self) -> &'static str {
        "counting"
    }

    fn version(&self) -> String {
        "counting-v1".to_string()
    }
}

fn counting_service(calls: &Arc<AtomicU64>, store: Arc<dyn ResultStore>) -> OptimizationService {
    OptimizationService::with_store(
        OracleRegistry::single(CountingOracle {
            inner: RuleBasedOptimizer::oracle(),
            calls: Arc::clone(calls),
        }),
        ServiceConfig {
            workers: 1,
            threads_per_job: 1,
            cache_capacity: 16,
            cache_shards: 2,
            seg_cache_capacity: 0,
        },
        store,
    )
}

#[test]
fn warm_restart_over_disk_store_issues_zero_oracle_calls() {
    let tmp = TempDir::new("restart");
    let calls = Arc::new(AtomicU64::new(0));
    let circuit = sample_circuit();
    let cfg = PopqcConfig::with_omega(16);

    // Process one: cold, computes, persists.
    let first = {
        let store = build_store(StoreTier::Tiered, Some(tmp.path()), None, 16, 2).unwrap();
        let svc = counting_service(&calls, store);
        let r = svc.submit(circuit.clone(), &cfg).wait();
        assert!(!r.cache_hit);
        r
        // svc dropped here = the process "dies"; only the disk survives.
    };
    let calls_cold = calls.load(Relaxed);
    assert!(calls_cold > 0, "cold run must call the oracle");

    // Process two: a fresh service over the same directory. The identical
    // job must be answered from the disk tier — cache_hit, identical
    // circuit, and not one new oracle call.
    for tier in [StoreTier::Tiered, StoreTier::Disk] {
        let store = build_store(tier, Some(tmp.path()), None, 16, 2).unwrap();
        let svc = counting_service(&calls, store);
        let warm = svc.submit(circuit.clone(), &cfg).wait();
        assert!(warm.cache_hit, "{tier}: restart must hit the disk tier");
        assert_eq!(warm.circuit, first.circuit);
        assert_eq!(
            calls.load(Relaxed),
            calls_cold,
            "{tier}: warm restart must issue zero oracle calls"
        );
        assert_eq!(svc.stats().oracle_calls_issued, 0);
        assert_eq!(svc.stats().cache_hits, 1);
    }
}

#[test]
fn oracle_version_bump_invalidates_the_disk_tier() {
    let tmp = TempDir::new("bump");
    let circuit = sample_circuit();
    let cfg = PopqcConfig::with_omega(16);
    let calls = Arc::new(AtomicU64::new(0));

    struct V2(CountingOracle);
    impl SegmentOracle<Gate> for V2 {
        fn optimize(&self, units: &[Gate], num_qubits: u32) -> Vec<Gate> {
            self.0.optimize(units, num_qubits)
        }
        fn cost(&self, units: &[Gate]) -> u64 {
            self.0.cost(units)
        }
        fn name(&self) -> &'static str {
            "counting"
        }
        fn version(&self) -> String {
            "counting-v2".to_string()
        }
    }

    {
        let store = build_store(StoreTier::Disk, Some(tmp.path()), None, 16, 2).unwrap();
        let svc = counting_service(&calls, store);
        assert!(!svc.submit(circuit.clone(), &cfg).wait().cache_hit);
    }
    let calls_v1 = calls.load(Relaxed);

    // Same registry id (`counting`), same key — but the oracle code
    // changed. The persisted entry must be recomputed, not trusted.
    let store = build_store(StoreTier::Disk, Some(tmp.path()), None, 16, 2).unwrap();
    let svc = OptimizationService::with_store(
        OracleRegistry::single(V2(CountingOracle {
            inner: RuleBasedOptimizer::oracle(),
            calls: Arc::clone(&calls),
        })),
        ServiceConfig {
            workers: 1,
            threads_per_job: 1,
            cache_capacity: 16,
            cache_shards: 2,
            seg_cache_capacity: 0,
        },
        store,
    );
    let r = svc.submit(circuit, &cfg).wait();
    assert!(!r.cache_hit, "a version bump must invalidate the entry");
    assert!(calls.load(Relaxed) > calls_v1, "must recompute");
}

#[test]
fn service_stats_carry_the_per_tier_breakdown() {
    let tmp = TempDir::new("stats");
    let calls = Arc::new(AtomicU64::new(0));
    let store = build_store(StoreTier::Tiered, Some(tmp.path()), None, 16, 2).unwrap();
    let svc = counting_service(&calls, store);
    let cfg = PopqcConfig::with_omega(16);
    let circuit = sample_circuit();

    svc.submit(circuit.clone(), &cfg).wait();
    svc.submit(circuit, &cfg).wait();

    let stats = svc.stats();
    assert_eq!(stats.store.backend, "tiered");
    assert_eq!(stats.store.tiers.len(), 2);
    // The aggregate view stays coherent with the legacy cache counters.
    assert_eq!(stats.cache.hits, stats.store.hits());
    assert_eq!(stats.cache.entries as u64, stats.store.entries());
    assert_eq!(stats.cache.hits, 1);

    // clear_cache empties every tier and reports the distinct count.
    assert_eq!(svc.clear_cache(), 1);
    assert_eq!(svc.store().len(), 0);
}
