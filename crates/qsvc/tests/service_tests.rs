//! Service-level tests: batch results must be byte-identical to direct
//! engine calls, cache accounting must be exact, the warm-cache path
//! must issue zero oracle calls, and concurrent duplicate submissions
//! must coalesce onto one computation.

use benchgen::Family;
use popqc_core::{optimize_circuit, PopqcConfig};
use qcir::{Circuit, Gate};
use qoracle::{RuleBasedOptimizer, SegmentOracle};
use qsvc::{OptimizationService, OracleRegistry, ServiceConfig, ServiceError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

fn small_service(workers: usize) -> OptimizationService {
    OptimizationService::single(
        RuleBasedOptimizer::oracle(),
        ServiceConfig {
            workers,
            threads_per_job: 1,
            cache_capacity: 64,
            cache_shards: 4,
            seg_cache_capacity: 0,
        },
    )
}

fn bench_circuits() -> Vec<Circuit> {
    Family::ALL
        .iter()
        .map(|f| f.generate(f.ladder(0)[0], 11))
        .collect()
}

#[test]
fn batch_results_match_direct_engine_calls_exactly() {
    let oracle = RuleBasedOptimizer::oracle();
    let cfg = PopqcConfig::with_omega(64);
    let circuits = bench_circuits();

    let svc = small_service(4);
    let batch = svc.submit_batch(circuits.clone(), &cfg).wait();

    assert_eq!(batch.results.len(), circuits.len());
    for (c, r) in circuits.iter().zip(&batch.results) {
        let (direct, direct_stats) = optimize_circuit(c, &oracle, &cfg);
        assert_eq!(
            r.circuit, direct,
            "service output differs from direct optimize_circuit"
        );
        assert_eq!(r.stats.oracle_calls, direct_stats.oracle_calls);
        assert_eq!(r.stats.final_units, direct_stats.final_units);
        assert!(!r.cache_hit, "first submission must be a miss");
    }
}

#[test]
fn warm_batch_is_all_hits_with_zero_new_oracle_calls() {
    let cfg = PopqcConfig::with_omega(64);
    let circuits = bench_circuits();
    let svc = small_service(4);

    let cold = svc.submit_batch(circuits.clone(), &cfg).wait();
    assert_eq!(cold.cache_hits(), 0);
    assert!(cold.oracle_calls_issued() > 0);
    let calls_after_cold = svc.stats().oracle_calls_issued;

    let warm = svc.submit_batch(circuits.clone(), &cfg).wait();
    assert_eq!(warm.cache_hits(), circuits.len(), "all jobs must hit");
    assert_eq!(warm.oracle_calls_issued(), 0, "warm batch must be free");
    assert_eq!(
        svc.stats().oracle_calls_issued,
        calls_after_cold,
        "service must not have issued any new oracle calls"
    );
    assert_eq!(svc.stats().cache_hits, circuits.len() as u64);

    // Hits return the identical optimized circuit.
    for (c, w) in cold.results.iter().zip(&warm.results) {
        assert_eq!(c.circuit, w.circuit);
        assert_eq!(c.key, w.key);
    }
}

#[test]
fn different_configs_and_oracles_do_not_share_cache_entries() {
    let circuits = bench_circuits();
    let c = circuits[0].clone();

    let svc = small_service(2);
    let a = svc.submit(c.clone(), &PopqcConfig::with_omega(32)).wait();
    let b = svc.submit(c.clone(), &PopqcConfig::with_omega(64)).wait();
    assert!(
        !a.cache_hit && !b.cache_hit,
        "distinct Ω must be distinct keys"
    );
    assert_ne!(a.key, b.key);

    // Same circuit through a differently-named oracle: fresh key space.
    let baseline_svc = OptimizationService::single(
        RuleBasedOptimizer::voqc_baseline(),
        ServiceConfig {
            workers: 1,
            threads_per_job: 1,
            ..ServiceConfig::default()
        },
    );
    let d = baseline_svc
        .submit(c.clone(), &PopqcConfig::with_omega(32))
        .wait();
    assert_ne!(
        a.key.oracle_id, d.key.oracle_id,
        "oracle configurations must carry distinct ids"
    );
}

#[test]
fn eviction_forces_recomputation() {
    let cfg = PopqcConfig::with_omega(32);
    // Capacity 1 (single shard): the second distinct circuit evicts the
    // first.
    let svc = OptimizationService::single(
        RuleBasedOptimizer::oracle(),
        ServiceConfig {
            workers: 1,
            threads_per_job: 1,
            cache_capacity: 1,
            cache_shards: 1,
            seg_cache_capacity: 0,
        },
    );
    let a = Family::Vqe.generate(Family::Vqe.ladder(0)[0], 1);
    let b = Family::Grover.generate(Family::Grover.ladder(0)[0], 1);

    assert!(!svc.submit(a.clone(), &cfg).wait().cache_hit);
    assert!(svc.submit(a.clone(), &cfg).wait().cache_hit);
    assert!(!svc.submit(b.clone(), &cfg).wait().cache_hit); // evicts a
    assert!(
        !svc.submit(a.clone(), &cfg).wait().cache_hit,
        "evicted entry must recompute"
    );
    assert!(svc.stats().cache.evictions >= 1);
}

#[test]
fn results_are_independent_of_worker_and_thread_budget() {
    let cfg = PopqcConfig::with_omega(48);
    let circuits = bench_circuits();

    let narrow = small_service(1);
    let wide = OptimizationService::single(
        RuleBasedOptimizer::oracle(),
        ServiceConfig {
            workers: 4,
            threads_per_job: 3,
            cache_capacity: 64,
            cache_shards: 4,
            seg_cache_capacity: 0,
        },
    );
    let n = narrow.submit_batch(circuits.clone(), &cfg).wait();
    let w = wide.submit_batch(circuits, &cfg).wait();
    for (a, b) in n.results.iter().zip(&w.results) {
        assert_eq!(
            a.circuit, b.circuit,
            "engine determinism must survive the service"
        );
    }
}

#[test]
fn handles_report_progress_and_results_preserve_semantics() {
    let cfg = PopqcConfig::with_omega(32);
    let c = Family::Hhl.generate(Family::Hhl.ladder(0)[0], 3);
    let svc = small_service(2);

    let handle = svc.submit(c.clone(), &cfg);
    let result = handle.wait();
    assert_eq!(handle.rounds_completed(), result.stats.rounds);
    assert!(handle.try_result().is_some());
    assert!(result.circuit.len() < c.len(), "expected some reduction");
    assert!(
        qsim::circuits_equivalent(&c, &result.circuit, 2, 0x5eed),
        "service output changed circuit semantics"
    );
}

/// Wraps the rule-based oracle and blocks every call until released, so a
/// test can pin one computation in flight while duplicates are submitted.
/// Also counts calls, independently of the engine's own accounting.
struct GatedOracle {
    inner: RuleBasedOptimizer,
    released: Arc<(Mutex<bool>, Condvar)>,
    calls: AtomicU64,
    entered: AtomicBool,
}

impl GatedOracle {
    fn new() -> (GatedOracle, Arc<(Mutex<bool>, Condvar)>) {
        let released = Arc::new((Mutex::new(false), Condvar::new()));
        (
            GatedOracle {
                inner: RuleBasedOptimizer::oracle(),
                released: Arc::clone(&released),
                calls: AtomicU64::new(0),
                entered: AtomicBool::new(false),
            },
            released,
        )
    }
}

fn release(gate: &(Mutex<bool>, Condvar)) {
    *gate.0.lock().unwrap() = true;
    gate.1.notify_all();
}

impl SegmentOracle<Gate> for GatedOracle {
    fn optimize(&self, units: &[Gate], num_qubits: u32) -> Vec<Gate> {
        self.entered.store(true, Ordering::SeqCst);
        self.calls.fetch_add(1, Ordering::SeqCst);
        let (lock, cv) = &*self.released;
        let mut ok = lock.lock().unwrap();
        while !*ok {
            ok = cv.wait(ok).unwrap();
        }
        drop(ok);
        self.inner.optimize(units, num_qubits)
    }

    fn cost(&self, units: &[Gate]) -> u64 {
        self.inner.cost(units)
    }

    fn name(&self) -> &'static str {
        "gated-rule"
    }
}

#[test]
fn concurrent_duplicates_coalesce_onto_one_computation() {
    const DUPLICATES: usize = 8;
    let cfg = PopqcConfig::with_omega(32);
    let circuit = Family::Vqe.generate(Family::Vqe.ladder(0)[0], 7);

    let (oracle, gate) = GatedOracle::new();
    // Plenty of workers: without coalescing the duplicates would all run.
    let svc = OptimizationService::single(
        oracle,
        ServiceConfig {
            workers: 4,
            threads_per_job: 1,
            cache_capacity: 64,
            cache_shards: 4,
            seg_cache_capacity: 0,
        },
    );

    // First submission starts computing and blocks inside the oracle;
    // the duplicates are submitted while it is pinned in flight.
    let first = svc.submit(circuit.clone(), &cfg);
    let dups: Vec<_> = (0..DUPLICATES)
        .map(|_| svc.submit(circuit.clone(), &cfg))
        .collect();
    release(&gate);

    let lead = first.wait();
    assert!(!lead.cache_hit && !lead.coalesced);

    let mut coalesced = 0;
    for h in &dups {
        let r = h.wait();
        assert_eq!(r.circuit, lead.circuit, "waiters get the identical result");
        assert_eq!(r.key, lead.key);
        assert!(r.cache_hit, "duplicates must not recompute");
        assert_eq!(r.run_nanos, 0);
        assert_eq!(
            h.rounds_completed(),
            lead.stats.rounds,
            "waiters must end at the lead job's round count"
        );
        if r.coalesced {
            coalesced += 1;
        }
    }
    // Every duplicate submitted while the lead was in flight coalesces
    // (none could be a submit-time cache hit: the cache was empty until
    // the gate was released).
    assert_eq!(coalesced, DUPLICATES);

    let stats = svc.stats();
    assert_eq!(stats.submitted, (DUPLICATES + 1) as u64);
    assert_eq!(stats.completed, (DUPLICATES + 1) as u64);
    assert_eq!(stats.coalesced, DUPLICATES as u64);
    assert_eq!(stats.cache_hits, DUPLICATES as u64);
    assert_eq!(
        stats.oracle_calls_issued, lead.stats.oracle_calls,
        "exactly one computation's worth of oracle calls"
    );
}

/// Blocks like [`GatedOracle`], then panics on the first call after
/// release — simulating a buggy client-provided oracle crashing while
/// waiters are coalesced onto its job.
struct PanicOnceOracle {
    inner: RuleBasedOptimizer,
    released: Arc<(Mutex<bool>, Condvar)>,
    panicked: AtomicBool,
}

impl SegmentOracle<Gate> for PanicOnceOracle {
    fn optimize(&self, units: &[Gate], num_qubits: u32) -> Vec<Gate> {
        let (lock, cv) = &*self.released;
        let mut ok = lock.lock().unwrap();
        while !*ok {
            ok = cv.wait(ok).unwrap();
        }
        drop(ok);
        if !self.panicked.swap(true, Ordering::SeqCst) {
            panic!("injected oracle fault");
        }
        self.inner.optimize(units, num_qubits)
    }

    fn cost(&self, units: &[Gate]) -> u64 {
        self.inner.cost(units)
    }

    fn name(&self) -> &'static str {
        "panic-once"
    }
}

#[test]
fn oracle_panic_does_not_strand_coalesced_waiters() {
    const DUPLICATES: usize = 4;
    let cfg = PopqcConfig::with_omega(32);
    let circuit = Family::Vqe.generate(Family::Vqe.ladder(0)[0], 13);

    let released = Arc::new((Mutex::new(false), Condvar::new()));
    let oracle = PanicOnceOracle {
        inner: RuleBasedOptimizer::oracle(),
        released: Arc::clone(&released),
        panicked: AtomicBool::new(false),
    };
    // ONE worker: the panic is caught, so the same thread must survive to
    // run the re-enqueued waiters — with a dead worker the test would hang.
    let svc = OptimizationService::single(
        oracle,
        ServiceConfig {
            workers: 1,
            threads_per_job: 1,
            cache_capacity: 64,
            cache_shards: 4,
            seg_cache_capacity: 0,
        },
    );

    // Lead job blocks inside the oracle; duplicates park as waiters.
    let lead = svc.submit(circuit.clone(), &cfg);
    let dups: Vec<_> = (0..DUPLICATES)
        .map(|_| svc.submit(circuit.clone(), &cfg))
        .collect();
    release(&released);

    // The lead handle is fulfilled with an error-shaped result: the input
    // circuit unchanged, the panic message, and nothing cached under it.
    let lead = lead.wait();
    let err = lead
        .error
        .as_ref()
        .expect("lead job must report the panic")
        .to_string();
    assert!(err.contains("injected oracle fault"), "error: {err}");
    assert!(!lead.cache_hit && !lead.coalesced);
    assert_eq!(lead.circuit, circuit, "failed job returns its input");

    // The waiters were re-enqueued as independent retries and succeed
    // (the oracle only panics once).
    let first = dups[0].wait();
    assert!(first.error.is_none());
    for h in &dups[1..] {
        assert_eq!(h.wait().circuit, first.circuit);
    }

    // The in-flight table is clean: a fresh submission of the same
    // circuit is a plain cache hit, not a stranded waiter.
    let again = svc.submit(circuit, &cfg).wait();
    assert!(again.cache_hit);

    let stats = svc.stats();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, (DUPLICATES + 2) as u64);
}

#[test]
fn coalesced_batch_of_identical_circuits_computes_once() {
    // The end-to-end shape from the ROADMAP item: one batch holding N
    // copies of the same circuit computes once, regardless of timing
    // (each copy is either a waiter or, if the first finished early, a
    // plain cache hit — never a second computation).
    const COPIES: usize = 6;
    let cfg = PopqcConfig::with_omega(48);
    let circuit = Family::Grover.generate(Family::Grover.ladder(0)[0], 3);
    let svc = small_service(4);

    let batch = svc
        .submit_batch(std::iter::repeat_n(circuit, COPIES), &cfg)
        .wait();
    assert_eq!(batch.results.len(), COPIES);
    assert_eq!(batch.cache_hits(), COPIES - 1);
    let misses: Vec<_> = batch.results.iter().filter(|r| !r.cache_hit).collect();
    assert_eq!(misses.len(), 1, "exactly one job computes");
    assert_eq!(batch.oracle_calls_issued(), misses[0].stats.oracle_calls);
    for r in &batch.results {
        assert_eq!(r.circuit, misses[0].circuit);
    }
}

#[test]
fn batch_report_builds_the_versioned_dto() {
    let cfg = PopqcConfig::with_omega(32);
    let circuits = vec![
        Family::Vqe.generate(Family::Vqe.ladder(0)[0], 5),
        Family::Sqrt.generate(Family::Sqrt.ladder(0)[0], 5),
    ];
    let labels: Vec<String> = vec!["vqe".into(), "sqrt".into()];
    let svc = small_service(2);
    let batch = svc.submit_batch(circuits, &cfg).wait();

    let pass = qsvc::report::batch_report(&labels, &batch, 1, false);
    assert_eq!(pass.job_count, 2);
    assert_eq!(pass.cache_hits, 0);
    assert_eq!(pass.jobs[0].label.as_deref(), Some("vqe"));
    assert!(!pass.jobs[0].cache_hit);
    assert_eq!(pass.jobs[0].fingerprint.len(), 32);
    assert!(pass.jobs[0].qasm.is_none(), "CLI form omits qasm");

    let stats = svc.stats();
    let full =
        qsvc::report::service_report(vec![pass], &stats, svc.workers(), svc.threads_per_job());
    // The document must survive a serialize/parse round trip through the
    // versioned DTO layer.
    let text = serde_json::to_string_pretty(&full.to_json()).unwrap();
    let back = qapi::ServiceReport::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
    assert_eq!(back, full);
    assert_eq!(back.service.cache_hits, 0);
}

#[test]
fn one_service_keeps_mixed_oracle_traffic_in_distinct_cache_entries() {
    let cfg = PopqcConfig::with_omega(32);
    let circuit = Family::Vqe.generate(Family::Vqe.ladder(0)[0], 5);
    let svc = OptimizationService::new(
        OracleRegistry::builtin(),
        ServiceConfig {
            workers: 2,
            threads_per_job: 1,
            cache_capacity: 64,
            cache_shards: 4,
            seg_cache_capacity: 0,
        },
    );

    // Same circuit per-request through two registered oracles: two
    // computations, two cache entries, and the keys differ only in the
    // oracle id.
    let rule = svc.submit(circuit.clone(), &cfg).wait();
    let single = svc
        .submit_as("rule_single_pass", circuit.clone(), &cfg)
        .expect("registered oracle")
        .wait();
    assert!(!rule.cache_hit && !single.cache_hit);
    assert_eq!(rule.key.oracle_id, "rule_based");
    assert_eq!(single.key.oracle_id, "rule_single_pass");
    assert_eq!(rule.key.fingerprint, single.key.fingerprint);
    assert_ne!(rule.key, single.key);

    // The key-probing API predicts exactly the keys the jobs ran under,
    // and resolves through the registry like submission does.
    assert_eq!(svc.key_for(&circuit, &cfg), rule.key);
    assert_eq!(
        svc.key_for_oracle("rule_single_pass", &circuit, &cfg)
            .expect("registered oracle"),
        single.key
    );
    assert!(matches!(
        svc.key_for_oracle("nope", &circuit, &cfg),
        Err(ServiceError::UnknownOracle { .. })
    ));

    // Each oracle's resubmission hits its own entry.
    assert!(svc.submit(circuit.clone(), &cfg).wait().cache_hit);
    assert!(
        svc.submit_as("rule_single_pass", circuit.clone(), &cfg)
            .unwrap()
            .wait()
            .cache_hit
    );

    // A mixed typed batch goes through the same shared cache.
    let batch = svc
        .submit_batch_requests(vec![
            qsvc::JobRequest::with_oracle(circuit.clone(), "rule_based", cfg.clone()),
            qsvc::JobRequest::with_oracle(circuit.clone(), "rule_single_pass", cfg.clone()),
        ])
        .expect("both oracles registered")
        .wait();
    assert_eq!(batch.cache_hits(), 2);
    assert_eq!(batch.oracle_calls_issued(), 0);
}

#[test]
fn unknown_and_duplicate_oracles_are_structured_errors() {
    let cfg = PopqcConfig::with_omega(32);
    let circuit = Family::Vqe.generate(Family::Vqe.ladder(0)[0], 5);
    let svc = OptimizationService::new(
        OracleRegistry::builtin(),
        ServiceConfig {
            workers: 1,
            threads_per_job: 1,
            ..ServiceConfig::default()
        },
    );

    // submit_as with an unregistered id refuses without enqueueing.
    let Err(err) = svc.submit_as("nope", circuit.clone(), &cfg) else {
        panic!("unknown oracle must refuse");
    };
    match &err {
        ServiceError::UnknownOracle {
            requested,
            available,
        } => {
            assert_eq!(requested, "nope");
            assert_eq!(
                available,
                &["rule_based", "rule_single_pass", "search", "structural"]
            );
        }
        other => panic!("expected UnknownOracle, got {other:?}"),
    }
    // The canonical wire mapping: unknown_oracle -> 404.
    assert_eq!(err.to_api_error().http_status(), 404);
    assert_eq!(svc.stats().submitted, 0, "nothing was enqueued");

    // A mixed batch with one bad id refuses the WHOLE batch atomically.
    let Err(err) = svc.submit_batch_requests(vec![
        qsvc::JobRequest::new(circuit.clone(), cfg.clone()),
        qsvc::JobRequest::with_oracle(circuit, "missing", cfg.clone()),
    ]) else {
        panic!("batch with unknown oracle must refuse");
    };
    assert!(matches!(err, ServiceError::UnknownOracle { .. }));
    assert_eq!(svc.stats().submitted, 0, "atomic refusal");

    // Duplicate registration is a structured error too.
    let mut registry = OracleRegistry::builtin();
    let err = registry
        .register(
            "rule_based",
            "imposter",
            std::sync::Arc::new(RuleBasedOptimizer::oracle()),
        )
        .expect_err("duplicate id must refuse");
    assert!(matches!(err, ServiceError::DuplicateOracle(_)));
    assert_eq!(err.to_api_error().http_status(), 400);
}
