//! Frontend concurrency comparison: request latency through a live
//! connection while N *other* keep-alive connections sit idle on the
//! same server — the workload shape that separates the two frontends.
//!
//! The threaded acceptor pins one thread per open connection, so serving
//! N idle connections plus one active one requires N + spare threads:
//! its thread count is scaled with N here (otherwise the active
//! connection would starve forever, which is the point of the evented
//! rewrite). The evented frontend holds every idle-count on the same
//! 4 loop threads.
//!
//! Setting `POPQC_NET_REPORT=<path>` additionally writes a JSON artifact
//! with per-idle-count median round-trip latencies for both frontends
//! and the thread budget each needed (`cargo bench --bench
//! http_concurrency -- --test` for the CI smoke run).

use criterion::{criterion_group, BenchmarkId, Criterion};
use qhttp::api::AppState;
use qhttp::evented::{EventedConfig, EventedServer};
use qhttp::server::{HttpServer, ServerConfig};
use qsvc::{OptimizationService, OracleRegistry, ServiceConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Loop threads the evented frontend uses at EVERY idle count.
const EVENTED_LOOP_THREADS: usize = 4;

/// Idle keep-alive connection counts to sweep.
const IDLE_COUNTS: [usize; 3] = [0, 64, 256];

fn state() -> Arc<AppState> {
    let svc = OptimizationService::new(
        OracleRegistry::builtin(),
        ServiceConfig {
            workers: 2,
            threads_per_job: 1,
            cache_capacity: 64,
            cache_shards: 4,
            seg_cache_capacity: 0,
        },
    );
    Arc::new(AppState::new(svc, 80))
}

enum Server {
    Threads(HttpServer),
    Evented(EventedServer),
}

impl Server {
    fn addr(&self) -> SocketAddr {
        match self {
            Server::Threads(s) => s.local_addr(),
            Server::Evented(s) => s.local_addr(),
        }
    }
}

/// Threads each frontend needs to keep N idle connections open AND
/// still answer on an active one.
fn thread_budget(frontend: &str, idle: usize) -> usize {
    match frontend {
        // One thread per open connection, plus headroom for the
        // active connection and churn.
        "threads" => idle + 4,
        _ => EVENTED_LOOP_THREADS,
    }
}

fn serve(frontend: &str, idle: usize) -> Server {
    match frontend {
        "threads" => Server::Threads(
            HttpServer::serve(
                "127.0.0.1:0",
                state(),
                ServerConfig {
                    conn_threads: thread_budget("threads", idle),
                    read_timeout: Duration::from_secs(60),
                },
            )
            .expect("bind threaded"),
        ),
        _ => Server::Evented(
            EventedServer::serve(
                "127.0.0.1:0",
                state(),
                EventedConfig {
                    loop_threads: EVENTED_LOOP_THREADS,
                    dispatch_threads: 4,
                    max_conns: 1024,
                    read_deadline: Duration::from_secs(60),
                    ..EventedConfig::default()
                },
            )
            .expect("bind evented"),
        ),
    }
}

/// One keep-alive round-trip on an open connection.
fn roundtrip(stream: &mut TcpStream) {
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send");
    // The healthz response is small and Content-Length framed; one
    // header read plus the declared body is always complete.
    let mut raw = Vec::new();
    let mut buf = [0u8; 2048];
    let (headers_end, content_length) = loop {
        let n = stream.read(&mut buf).expect("read");
        assert!(n > 0, "server closed the benchmark connection");
        raw.extend_from_slice(&buf[..n]);
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&raw[..pos]).expect("headers");
            let cl = head
                .lines()
                .find_map(|l| {
                    l.split_once(':')
                        .filter(|(k, _)| k.eq_ignore_ascii_case("content-length"))
                })
                .map(|(_, v)| v.trim().parse::<usize>().expect("length"))
                .unwrap_or(0);
            break (pos + 4, cl);
        }
    };
    while raw.len() < headers_end + content_length {
        let n = stream.read(&mut buf).expect("read body");
        assert!(n > 0, "server closed mid-body");
        raw.extend_from_slice(&buf[..n]);
    }
    assert!(raw.starts_with(b"HTTP/1.1 200"), "healthz must answer 200");
}

/// Opens N idle keep-alive connections, proving each live with one
/// round-trip so the server has fully adopted it.
fn open_idle(addr: SocketAddr, n: usize) -> Vec<TcpStream> {
    let mut conns: Vec<TcpStream> = (0..n)
        .map(|_| TcpStream::connect(addr).expect("idle connect"))
        .collect();
    for c in conns.iter_mut() {
        roundtrip(c);
    }
    conns
}

fn bench_latency_under_idle_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("http/latency_under_idle_conns");
    g.sample_size(10);
    for &idle in &IDLE_COUNTS {
        for frontend in ["threads", "evented"] {
            let server = serve(frontend, idle);
            let addr = server.addr();
            let _idle_conns = open_idle(addr, idle);
            let mut active = TcpStream::connect(addr).expect("active connect");
            roundtrip(&mut active);
            g.bench_with_input(BenchmarkId::new(frontend, idle), &idle, |b, _| {
                b.iter(|| roundtrip(&mut active))
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_latency_under_idle_load
}

/// Median-of-N round-trip seconds on one connection.
fn median_roundtrip_secs(stream: &mut TcpStream, n: usize) -> f64 {
    let mut times: Vec<f64> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            roundtrip(stream);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Unsampled-tracing overhead on the evented frontend: median keep-alive
/// round-trip with the tracer disabled (capacity 0) vs the serve default
/// (256-trace ring, 1 s slow threshold, 1-in-16 tail sampling). Healthz
/// requests are fast and unforced, so almost every trace is recorded and
/// then discarded at finish — the exact cost the <5% budget bounds. The
/// budget gets a 25 µs absolute floor: at single-digit-µs loopback
/// latencies the relative bound alone sits below timer noise.
fn trace_overhead() -> serde_json::Value {
    let mut medians = [0.0f64; 2];
    for (slot, capacity) in [0usize, 256].into_iter().enumerate() {
        qobs::trace::configure(capacity, Duration::from_secs(1), 16);
        let server = serve("evented", 0);
        let addr = server.addr();
        let mut active = TcpStream::connect(addr).expect("active connect");
        roundtrip(&mut active);
        medians[slot] = median_roundtrip_secs(&mut active, 201);
    }
    // Restore the library default so later report passes in this process
    // measure the shipped configuration.
    qobs::trace::configure(256, Duration::from_secs(1), 16);
    let [disabled, enabled] = medians;
    let overhead = enabled - disabled;
    let budget = (disabled * 0.05).max(25e-6);
    serde_json::json!({
        "request": "GET /healthz (keep-alive, evented, 0 idle)",
        "disabled_median_seconds": disabled,
        "enabled_median_seconds": enabled,
        "overhead_seconds": overhead,
        "budget_seconds": budget,
        "within_budget": overhead <= budget,
    })
}

/// The CI artifact: per-idle-count medians for both frontends plus the
/// thread budget each needed to serve that shape at all.
fn write_net_report(path: &str) {
    let mut rows = Vec::new();
    for &idle in &IDLE_COUNTS {
        let mut medians = [0.0f64; 2];
        for (slot, frontend) in ["threads", "evented"].into_iter().enumerate() {
            let server = serve(frontend, idle);
            let addr = server.addr();
            let _idle_conns = open_idle(addr, idle);
            let mut active = TcpStream::connect(addr).expect("active connect");
            roundtrip(&mut active);
            medians[slot] = median_roundtrip_secs(&mut active, 51);
        }
        rows.push(serde_json::json!({
            "idle_connections": idle,
            "threads_median_seconds": medians[0],
            "threads_threads_needed": thread_budget("threads", idle),
            "evented_median_seconds": medians[1],
            "evented_threads_needed": thread_budget("evented", idle),
        }));
    }
    let max_idle = *IDLE_COUNTS.last().expect("non-empty sweep");
    let doc = serde_json::json!({
        "api_version": qapi::API_VERSION,
        "request": "GET /healthz (keep-alive)",
        "idle_counts": IDLE_COUNTS.to_vec(),
        "evented_loop_threads": EVENTED_LOOP_THREADS,
        "sweep": rows,
        "evented_serves_max_idle_on_fixed_threads": true,
        "max_idle_connections": max_idle,
        "trace_overhead": trace_overhead(),
    });
    let text = serde_json::to_string_pretty(&doc).expect("serialize net report");
    std::fs::write(path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("http concurrency report written to {path}");
}

fn main() {
    benches();
    if let Ok(path) = std::env::var("POPQC_NET_REPORT") {
        write_net_report(&path);
    }
}
